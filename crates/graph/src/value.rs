//! The value set `V` of the paper (Section 4.1), defined inductively:
//! identifiers, base types (integers and strings — we also include IEEE
//! floats as every real implementation does), `true`, `false`, `null`,
//! lists, maps, and paths; extended with the Cypher 10 temporal types.
//!
//! Three distinct notions of "sameness" coexist in Cypher and are kept
//! carefully separate here:
//!
//! * **equality** ([`Value::equals`]) — the `=` operator, three-valued:
//!   `null` propagates, `NaN ≠ NaN`, cross-type comparisons are `false`;
//! * **equivalence** ([`Value::equivalent`]) — used by `DISTINCT`, grouping
//!   and `UNION`: `null ≡ null` and `NaN ≡ NaN`;
//! * **orderability** ([`Value::cmp_order`]) — the total order used by
//!   `ORDER BY`: values of different types order by a fixed type rank and
//!   `null` sorts last.

use crate::graph::{NodeId, RelId};
use crate::path::Path;
use crate::temporal::Temporal;
use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// SQL-style three-valued logic truth values (paper Section 4.3, "Logic":
/// "Just like SQL, Cypher uses 3-value logic for dealing with nulls").
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Tri {
    /// Definitely true.
    True,
    /// Definitely false.
    False,
    /// Unknown (the truth value of `null`).
    Null,
}

impl Tri {
    /// Kleene conjunction.
    pub fn and(self, other: Tri) -> Tri {
        use Tri::*;
        match (self, other) {
            (False, _) | (_, False) => False,
            (True, True) => True,
            _ => Null,
        }
    }

    /// Kleene disjunction.
    pub fn or(self, other: Tri) -> Tri {
        use Tri::*;
        match (self, other) {
            (True, _) | (_, True) => True,
            (False, False) => False,
            _ => Null,
        }
    }

    /// Kleene negation.
    #[allow(clippy::should_implement_trait)] // deliberate: Kleene ¬, not ops::Not
    pub fn not(self) -> Tri {
        match self {
            Tri::True => Tri::False,
            Tri::False => Tri::True,
            Tri::Null => Tri::Null,
        }
    }

    /// Exclusive or: null-propagating.
    pub fn xor(self, other: Tri) -> Tri {
        use Tri::*;
        match (self, other) {
            (Null, _) | (_, Null) => Null,
            (a, b) => {
                if a != b {
                    True
                } else {
                    False
                }
            }
        }
    }

    /// True iff this is `Tri::True` — the filter condition of `WHERE`
    /// (Figure 7 keeps a row only when the predicate is exactly `true`).
    pub fn is_true(self) -> bool {
        self == Tri::True
    }

    /// Converts a Rust bool.
    pub fn from_bool(b: bool) -> Tri {
        if b {
            Tri::True
        } else {
            Tri::False
        }
    }

    /// Converts to a [`Value`]: `True`/`False` become booleans, `Null`
    /// becomes `Value::Null`.
    pub fn into_value(self) -> Value {
        match self {
            Tri::True => Value::Bool(true),
            Tri::False => Value::Bool(false),
            Tri::Null => Value::Null,
        }
    }
}

/// A Cypher runtime value.
#[derive(Clone, Debug)]
pub enum Value {
    /// The unknown value.
    Null,
    /// A boolean.
    Bool(bool),
    /// A 64-bit integer (the base type `Z` of the paper).
    Integer(i64),
    /// An IEEE-754 double.
    Float(f64),
    /// A string (the base type `Σ*` of the paper).
    String(Arc<str>),
    /// `list(v₁, …, vₘ)`.
    List(Vec<Value>),
    /// `map((k₁,v₁), …, (kₘ,vₘ))` with distinct keys; kept sorted by key.
    Map(BTreeMap<Arc<str>, Value>),
    /// A node identifier (an element of `N`).
    Node(NodeId),
    /// A relationship identifier (an element of `R`).
    Rel(RelId),
    /// `path(n₁, r₁, …, nₘ)`.
    Path(Path),
    /// A Cypher 10 temporal value.
    Temporal(Temporal),
}

impl Value {
    /// Builds a string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::String(Arc::from(s.as_ref()))
    }

    /// Builds an integer value.
    pub fn int(i: i64) -> Value {
        Value::Integer(i)
    }

    /// Builds a float value.
    pub fn float(f: f64) -> Value {
        Value::Float(f)
    }

    /// Builds a list value.
    pub fn list(items: impl IntoIterator<Item = Value>) -> Value {
        Value::List(items.into_iter().collect())
    }

    /// Builds a map value from `(key, value)` pairs.
    pub fn map(items: impl IntoIterator<Item = (String, Value)>) -> Value {
        Value::Map(
            items
                .into_iter()
                .map(|(k, v)| (Arc::from(k.as_str()), v))
                .collect(),
        )
    }

    /// True iff this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The Cypher type name, as returned by diagnostics.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "NULL",
            Value::Bool(_) => "BOOLEAN",
            Value::Integer(_) => "INTEGER",
            Value::Float(_) => "FLOAT",
            Value::String(_) => "STRING",
            Value::List(_) => "LIST",
            Value::Map(_) => "MAP",
            Value::Node(_) => "NODE",
            Value::Rel(_) => "RELATIONSHIP",
            Value::Path(_) => "PATH",
            Value::Temporal(t) => match t {
                Temporal::Date(_) => "DATE",
                Temporal::LocalTime(_) => "LOCALTIME",
                Temporal::LocalDateTime(_) => "LOCALDATETIME",
                Temporal::DateTime(_) => "DATETIME",
                Temporal::Duration(_) => "DURATION",
            },
        }
    }

    /// Numeric view: integers and floats as `f64`, else `None`.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Value::Integer(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Integer(i) => Some(*i),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean truthiness as a three-valued result: `null → Null`,
    /// non-boolean values are an error in Cypher but we map them to `Null`
    /// to keep predicates total (mirroring lenient openCypher runtimes).
    pub fn truth(&self) -> Tri {
        match self {
            Value::Bool(true) => Tri::True,
            Value::Bool(false) => Tri::False,
            _ => Tri::Null,
        }
    }

    // -- equality ----------------------------------------------------------

    /// Cypher `=`: three-valued equality.
    pub fn equals(&self, other: &Value) -> Tri {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => Tri::Null,
            (Bool(a), Bool(b)) => Tri::from_bool(a == b),
            (Integer(a), Integer(b)) => Tri::from_bool(a == b),
            (Float(a), Float(b)) => Tri::from_bool(a == b), // NaN ≠ NaN
            (Integer(a), Float(b)) | (Float(b), Integer(a)) => Tri::from_bool(*a as f64 == *b),
            (String(a), String(b)) => Tri::from_bool(a == b),
            (Node(a), Node(b)) => Tri::from_bool(a == b),
            (Rel(a), Rel(b)) => Tri::from_bool(a == b),
            (Path(a), Path(b)) => Tri::from_bool(a == b),
            (Temporal(a), Temporal(b)) => {
                if a.rank() == b.rank() {
                    Tri::from_bool(a.cmp_order(b) == Ordering::Equal)
                } else {
                    Tri::False
                }
            }
            (List(a), List(b)) => {
                if a.len() != b.len() {
                    return Tri::False;
                }
                let mut acc = Tri::True;
                for (x, y) in a.iter().zip(b) {
                    acc = acc.and(x.equals(y));
                    if acc == Tri::False {
                        return Tri::False;
                    }
                }
                acc
            }
            (Map(a), Map(b)) => {
                if a.len() != b.len() || !a.keys().eq(b.keys()) {
                    return Tri::False;
                }
                let mut acc = Tri::True;
                for (x, y) in a.values().zip(b.values()) {
                    acc = acc.and(x.equals(y));
                    if acc == Tri::False {
                        return Tri::False;
                    }
                }
                acc
            }
            _ => Tri::False, // cross-type
        }
    }

    // -- comparability (<, <=, >, >=) ---------------------------------------

    /// Cypher comparison for the inequality operators. Returns `None`
    /// (meaning `null`) when either side is `null` or the values are
    /// incomparable (different, non-numeric types).
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Integer(a), Integer(b)) => Some(a.cmp(b)),
            (Float(a), Float(b)) => a.partial_cmp(b),
            (Integer(a), Float(b)) => (*a as f64).partial_cmp(b),
            (Float(a), Integer(b)) => a.partial_cmp(&(*b as f64)),
            (String(a), String(b)) => Some(a.cmp(b)),
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (Temporal(a), Temporal(b)) if a.rank() == b.rank() => Some(a.cmp_order(b)),
            (List(a), List(b)) => {
                // Lexicographic; any incomparable element pair makes the
                // whole comparison undefined.
                for (x, y) in a.iter().zip(b) {
                    match x.compare(y)? {
                        Ordering::Equal => continue,
                        ord => return Some(ord),
                    }
                }
                Some(a.len().cmp(&b.len()))
            }
            _ => None,
        }
    }

    // -- orderability & equivalence ------------------------------------------

    /// Type rank for the global orderability order. `null` ranks last so it
    /// sorts after every other value in ascending `ORDER BY`.
    fn order_rank(&self) -> u8 {
        match self {
            Value::Map(_) => 0,
            Value::Node(_) => 1,
            Value::Rel(_) => 2,
            Value::List(_) => 3,
            Value::Path(_) => 4,
            Value::Temporal(_) => 5,
            Value::String(_) => 6,
            Value::Bool(_) => 7,
            Value::Integer(_) | Value::Float(_) => 8,
            Value::Null => 9,
        }
    }

    /// The total "orderability" order used by `ORDER BY`, `DISTINCT` and
    /// grouping. All values are mutually comparable; `NaN` sorts after all
    /// other numbers; `null` sorts after everything.
    pub fn cmp_order(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Integer(a), Integer(b)) => a.cmp(b),
            (Float(a), Float(b)) => cmp_f64(*a, *b),
            (Integer(a), Float(b)) => cmp_f64(*a as f64, *b),
            (Float(a), Integer(b)) => cmp_f64(*a, *b as f64),
            (String(a), String(b)) => a.cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            (Node(a), Node(b)) => a.cmp(b),
            (Rel(a), Rel(b)) => a.cmp(b),
            (Temporal(a), Temporal(b)) => a.cmp_order(b),
            (Path(a), Path(b)) => a.cmp(b),
            (List(a), List(b)) => {
                for (x, y) in a.iter().zip(b) {
                    match x.cmp_order(y) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                a.len().cmp(&b.len())
            }
            (Map(a), Map(b)) => {
                for ((ka, va), (kb, vb)) in a.iter().zip(b.iter()) {
                    match ka.cmp(kb) {
                        Ordering::Equal => {}
                        ord => return ord,
                    }
                    match va.cmp_order(vb) {
                        Ordering::Equal => {}
                        ord => return ord,
                    }
                }
                a.len().cmp(&b.len())
            }
            _ => self.order_rank().cmp(&other.order_rank()),
        }
    }

    /// Equivalence: reflexive sameness used by `DISTINCT`, grouping keys and
    /// set-`UNION` duplicate elimination. Unlike [`Value::equals`], here
    /// `null ≡ null` and `NaN ≡ NaN`.
    pub fn equivalent(&self, other: &Value) -> bool {
        self.cmp_order(other) == Ordering::Equal
    }

    /// Hashes consistently with [`Value::equivalent`] (so `1` and `1.0` hash
    /// alike, as do all `NaN`s).
    pub fn hash_equivalent<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => state.write_u8(0),
            Value::Bool(b) => {
                state.write_u8(1);
                b.hash(state);
            }
            Value::Integer(i) => {
                state.write_u8(2);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                state.write_u8(2);
                let canon = if f.is_nan() { f64::NAN } else { *f };
                // Normalize -0.0 to 0.0 so it hashes like the integer 0.
                let canon = if canon == 0.0 { 0.0 } else { canon };
                canon.to_bits().hash(state);
            }
            Value::String(s) => {
                state.write_u8(3);
                s.hash(state);
            }
            Value::List(items) => {
                state.write_u8(4);
                state.write_usize(items.len());
                for v in items {
                    v.hash_equivalent(state);
                }
            }
            Value::Map(m) => {
                state.write_u8(5);
                state.write_usize(m.len());
                for (k, v) in m {
                    k.hash(state);
                    v.hash_equivalent(state);
                }
            }
            Value::Node(n) => {
                state.write_u8(6);
                n.hash(state);
            }
            Value::Rel(r) => {
                state.write_u8(7);
                r.hash(state);
            }
            Value::Path(p) => {
                state.write_u8(8);
                p.hash(state);
            }
            Value::Temporal(t) => {
                state.write_u8(9);
                state.write_u8(t.rank());
                t.hash(state);
            }
        }
    }
}

/// Rust `==` on values is defined as Cypher *equivalence* (the reflexive
/// relation used by `DISTINCT`), **not** the three-valued `=` operator —
/// use [`Value::equals`] for the latter.
impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.equivalent(other)
    }
}

impl Eq for Value {}

#[inline]
fn cmp_f64(a: f64, b: f64) -> Ordering {
    // NaN sorts after every other number (openCypher orderability).
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        (false, false) => a.partial_cmp(&b).unwrap(),
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Integer(i)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::str(s)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Integer(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.is_finite() && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Value::String(s) => write!(f, "'{s}'"),
            Value::List(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Map(m) => {
                write!(f, "{{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k}: {v}")?;
                }
                write!(f, "}}")
            }
            Value::Node(n) => write!(f, "{n}"),
            Value::Rel(r) => write!(f, "{r}"),
            Value::Path(p) => write!(f, "{p}"),
            Value::Temporal(t) => write!(f, "{t}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tri_logic_truth_tables() {
        use Tri::*;
        // SQL / Kleene truth tables, as stated in §4.3 of the paper.
        assert_eq!(True.and(Null), Null);
        assert_eq!(False.and(Null), False);
        assert_eq!(True.or(Null), True);
        assert_eq!(False.or(Null), Null);
        assert_eq!(Null.not(), Null);
        assert_eq!(True.xor(Null), Null);
        assert_eq!(True.xor(False), True);
        assert_eq!(True.xor(True), False);
    }

    #[test]
    fn equality_null_propagates() {
        assert_eq!(Value::Null.equals(&Value::int(1)), Tri::Null);
        assert_eq!(Value::int(1).equals(&Value::Null), Tri::Null);
        assert_eq!(Value::Null.equals(&Value::Null), Tri::Null);
    }

    #[test]
    fn equality_numeric_cross_type() {
        assert_eq!(Value::int(1).equals(&Value::float(1.0)), Tri::True);
        assert_eq!(Value::int(1).equals(&Value::float(1.5)), Tri::False);
    }

    #[test]
    fn equality_nan() {
        let nan = Value::float(f64::NAN);
        assert_eq!(nan.equals(&nan), Tri::False);
        assert!(nan.equivalent(&nan));
    }

    #[test]
    fn equality_cross_type_is_false() {
        assert_eq!(Value::int(1).equals(&Value::str("1")), Tri::False);
        assert_eq!(Value::Bool(true).equals(&Value::int(1)), Tri::False);
    }

    #[test]
    fn list_equality_three_valued() {
        let a = Value::list([Value::int(1), Value::Null]);
        let b = Value::list([Value::int(1), Value::int(2)]);
        assert_eq!(a.equals(&b), Tri::Null);
        let c = Value::list([Value::int(9), Value::Null]);
        assert_eq!(c.equals(&b), Tri::False); // first element already false
        let short = Value::list([Value::int(1)]);
        assert_eq!(short.equals(&b), Tri::False); // length mismatch is false
    }

    #[test]
    fn compare_incomparable_is_none() {
        assert_eq!(Value::int(1).compare(&Value::str("a")), None);
        assert_eq!(Value::Null.compare(&Value::int(1)), None);
        assert_eq!(Value::int(1).compare(&Value::int(2)), Some(Ordering::Less));
        assert_eq!(
            Value::str("a").compare(&Value::str("b")),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn orderability_is_total_and_null_last() {
        let vals = vec![
            Value::Null,
            Value::int(3),
            Value::float(2.5),
            Value::str("z"),
            Value::Bool(false),
            Value::list([Value::int(1)]),
            Value::map([("a".to_string(), Value::int(1))]),
        ];
        let mut sorted = vals.clone();
        sorted.sort_by(|a, b| a.cmp_order(b));
        assert!(sorted.last().unwrap().is_null());
        // Totality / antisymmetry spot-check.
        for a in &vals {
            for b in &vals {
                assert_eq!(a.cmp_order(b), b.cmp_order(a).reverse());
            }
        }
    }

    #[test]
    fn equivalence_and_hash_agree() {
        use std::collections::hash_map::DefaultHasher;
        let pairs = [
            (Value::int(1), Value::float(1.0)),
            (Value::Null, Value::Null),
            (Value::float(f64::NAN), Value::float(f64::NAN)),
            (Value::float(0.0), Value::float(-0.0)),
        ];
        for (a, b) in pairs {
            assert!(a.equivalent(&b), "{a:?} ≡ {b:?}");
            let mut ha = DefaultHasher::new();
            let mut hb = DefaultHasher::new();
            a.hash_equivalent(&mut ha);
            b.hash_equivalent(&mut hb);
            assert_eq!(ha.finish(), hb.finish(), "{a:?} / {b:?} hash");
        }
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::int(42).to_string(), "42");
        assert_eq!(Value::float(1.0).to_string(), "1.0");
        assert_eq!(Value::str("hi").to_string(), "'hi'");
        assert_eq!(
            Value::list([Value::int(1), Value::Null]).to_string(),
            "[1, null]"
        );
        assert_eq!(
            Value::map([("k".into(), Value::int(1))]).to_string(),
            "{k: 1}"
        );
    }

    #[test]
    fn truthiness() {
        assert_eq!(Value::Bool(true).truth(), Tri::True);
        assert_eq!(Value::Bool(false).truth(), Tri::False);
        assert_eq!(Value::Null.truth(), Tri::Null);
        assert_eq!(Value::int(1).truth(), Tri::Null);
    }
}
