//! Secondary indexes over nodes, with the cardinality statistics the
//! cost-based planner consumes.
//!
//! Three index families are maintained **incrementally** by every mutation
//! path of [`crate::graph::PropertyGraph`] (`CREATE`, `DELETE`, `SET`,
//! `REMOVE`, `MERGE` all bottom out in the store's mutators, so the
//! indexes can never drift from the base data — the concern the
//! incremental-view-maintenance literature calls *update correctness*):
//!
//! * the **label index** `ℓ → { n | ℓ ∈ λ(n) }`,
//! * the **property index** `k → (h(v) → { n | ι(n, k) ≡ v })`, and
//! * the **composite label/property index**
//!   `(ℓ, k) → (h(v) → { n | ℓ ∈ λ(n) ∧ ι(n, k) ≡ v })`,
//!
//! where `h` is the equivalence-respecting hash of [`Value`]
//! ([`Value::hash_equivalent`]). Buckets are hash classes, not exact value
//! classes: readers re-check candidates with [`Value::equivalent`], so a
//! hash collision costs time, never correctness.
//!
//! Every bucket map also carries running totals, from which
//! [`IndexCardinality`] derives the planner's selectivity estimate for an
//! equality seek: `entries / distinct` ≈ expected matches per looked-up
//! value, the classic uniform-values assumption (cf. the output-size
//! bounds of Abo Khamis et al., *Computing Join Queries with Functional
//! Dependencies*, which this per-key statistic crudely approximates).

use crate::fxhash::FxHashMap;
use crate::graph::NodeId;
use crate::interner::Symbol;
use crate::value::Value;

/// Hashes a value into its index bucket, respecting Cypher equivalence
/// (so `9` and `9.0` land in the same bucket).
pub fn value_bucket(v: &Value) -> u64 {
    use std::hash::Hasher;
    let mut h = crate::fxhash::FxHasher::default();
    v.hash_equivalent(&mut h);
    h.finish()
}

/// Cardinality statistics for one indexed key (or one `(label, key)`
/// pair): how many index entries exist and how many distinct values they
/// spread over.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexCardinality {
    /// Total `(node, value)` entries indexed under the key.
    pub entries: usize,
    /// Number of distinct indexed values (hash classes).
    pub distinct: usize,
}

impl IndexCardinality {
    /// Expected number of nodes returned by an equality seek, under the
    /// uniform-values assumption. Zero when nothing is indexed.
    pub fn seek_estimate(&self) -> f64 {
        if self.distinct == 0 {
            0.0
        } else {
            self.entries as f64 / self.distinct as f64
        }
    }
}

/// One value-bucketed posting-list map plus its running totals.
#[derive(Debug, Clone, Default)]
struct ValueBuckets {
    buckets: FxHashMap<u64, Vec<NodeId>>,
    entries: usize,
}

impl ValueBuckets {
    fn insert(&mut self, bucket: u64, n: NodeId) {
        self.buckets.entry(bucket).or_default().push(n);
        self.entries += 1;
    }

    fn remove(&mut self, bucket: u64, n: NodeId) {
        if let Some(list) = self.buckets.get_mut(&bucket) {
            if let Some(pos) = list.iter().position(|&x| x == n) {
                list.swap_remove(pos);
                self.entries -= 1;
                if list.is_empty() {
                    self.buckets.remove(&bucket);
                }
            }
        }
    }

    fn candidates(&self, bucket: u64) -> &[NodeId] {
        self.buckets
            .get(&bucket)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    fn cardinality(&self) -> IndexCardinality {
        IndexCardinality {
            entries: self.entries,
            distinct: self.buckets.len(),
        }
    }
}

/// The full set of node indexes of one [`crate::graph::PropertyGraph`].
///
/// The store owns exactly one `IndexSet` and routes every node mutation
/// through the `on_*` hooks below; each hook is O(labels × properties
/// touched) — the incremental cost of staying consistent.
#[derive(Debug, Clone, Default)]
pub struct IndexSet {
    /// `ℓ → nodes`, insertion-ordered (scan order is deterministic).
    labels: FxHashMap<Symbol, Vec<NodeId>>,
    /// `k → value → nodes`.
    props: FxHashMap<Symbol, ValueBuckets>,
    /// `(ℓ, k) → value → nodes` — the composite index backing
    /// `PropertyIndexSeek`.
    label_props: FxHashMap<(Symbol, Symbol), ValueBuckets>,
}

impl IndexSet {
    /// Creates an empty index set.
    pub fn new() -> Self {
        Self::default()
    }

    // -- mutation hooks ------------------------------------------------------

    /// A node was created with the given labels and properties. `labels`
    /// must already be deduplicated.
    pub fn on_node_added(&mut self, n: NodeId, labels: &[Symbol], props: &[(Symbol, u64)]) {
        for &l in labels {
            self.labels.entry(l).or_default().push(n);
        }
        for &(k, bucket) in props {
            self.props.entry(k).or_default().insert(bucket, n);
            for &l in labels {
                self.label_props
                    .entry((l, k))
                    .or_default()
                    .insert(bucket, n);
            }
        }
    }

    /// A node is being removed; `labels`/`props` describe its state at
    /// removal time.
    pub fn on_node_removed(&mut self, n: NodeId, labels: &[Symbol], props: &[(Symbol, u64)]) {
        for &l in labels {
            if let Some(list) = self.labels.get_mut(&l) {
                list.retain(|&x| x != n);
            }
        }
        for &(k, bucket) in props {
            if let Some(b) = self.props.get_mut(&k) {
                b.remove(bucket, n);
            }
            for &l in labels {
                if let Some(b) = self.label_props.get_mut(&(l, k)) {
                    b.remove(bucket, n);
                }
            }
        }
    }

    /// A label was added to a live node with the given current properties.
    pub fn on_label_added(&mut self, n: NodeId, l: Symbol, props: &[(Symbol, u64)]) {
        self.labels.entry(l).or_default().push(n);
        for &(k, bucket) in props {
            self.label_props
                .entry((l, k))
                .or_default()
                .insert(bucket, n);
        }
    }

    /// A label was removed from a live node with the given current
    /// properties.
    pub fn on_label_removed(&mut self, n: NodeId, l: Symbol, props: &[(Symbol, u64)]) {
        if let Some(list) = self.labels.get_mut(&l) {
            list.retain(|&x| x != n);
        }
        for &(k, bucket) in props {
            if let Some(b) = self.label_props.get_mut(&(l, k)) {
                b.remove(bucket, n);
            }
        }
    }

    /// A property value was set on a node carrying `labels`.
    pub fn on_prop_set(&mut self, n: NodeId, labels: &[Symbol], k: Symbol, bucket: u64) {
        self.props.entry(k).or_default().insert(bucket, n);
        for &l in labels {
            self.label_props
                .entry((l, k))
                .or_default()
                .insert(bucket, n);
        }
    }

    /// A property value was removed from a node carrying `labels`.
    pub fn on_prop_removed(&mut self, n: NodeId, labels: &[Symbol], k: Symbol, bucket: u64) {
        if let Some(b) = self.props.get_mut(&k) {
            b.remove(bucket, n);
        }
        for &l in labels {
            if let Some(b) = self.label_props.get_mut(&(l, k)) {
                b.remove(bucket, n);
            }
        }
    }

    // -- lookups -------------------------------------------------------------

    /// Live nodes with the given label, in insertion order.
    pub fn nodes_with_label(&self, l: Symbol) -> &[NodeId] {
        self.labels.get(&l).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Candidate nodes whose property `k` hashes like `v`. Callers must
    /// re-check equivalence (hash classes may collide).
    pub fn prop_candidates(&self, k: Symbol, bucket: u64) -> &[NodeId] {
        self.props
            .get(&k)
            .map(|b| b.candidates(bucket))
            .unwrap_or(&[])
    }

    /// Candidate nodes with label `l` whose property `k` hashes like `v`.
    pub fn label_prop_candidates(&self, l: Symbol, k: Symbol, bucket: u64) -> &[NodeId] {
        self.label_props
            .get(&(l, k))
            .map(|b| b.candidates(bucket))
            .unwrap_or(&[])
    }

    // -- statistics ----------------------------------------------------------

    /// Number of nodes carrying the label.
    pub fn label_cardinality(&self, l: Symbol) -> usize {
        self.nodes_with_label(l).len()
    }

    /// Cardinality statistics of the property index for `k`.
    pub fn prop_cardinality(&self, k: Symbol) -> IndexCardinality {
        self.props
            .get(&k)
            .map(|b| b.cardinality())
            .unwrap_or_default()
    }

    /// Cardinality statistics of the composite index for `(l, k)`.
    pub fn label_prop_cardinality(&self, l: Symbol, k: Symbol) -> IndexCardinality {
        self.label_props
            .get(&(l, k))
            .map(|b| b.cardinality())
            .unwrap_or_default()
    }

    /// Iterates over `(label, node count)` pairs for every indexed label.
    pub fn label_cardinalities(&self) -> impl Iterator<Item = (Symbol, usize)> + '_ {
        self.labels.iter().map(|(&l, v)| (l, v.len()))
    }

    /// Iterates over `(key, cardinality)` pairs for every indexed
    /// property key.
    pub fn prop_cardinalities(&self) -> impl Iterator<Item = (Symbol, IndexCardinality)> + '_ {
        self.props.iter().map(|(&k, b)| (k, b.cardinality()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(i: u32) -> Symbol {
        // Symbols are plain newtyped indices; fabricate them directly.
        Symbol(i)
    }

    #[test]
    fn composite_index_tracks_label_and_prop_churn() {
        let mut idx = IndexSet::new();
        let (person, name) = (sym(0), sym(1));
        let n = NodeId(0);
        let bucket = value_bucket(&Value::str("Ada"));

        idx.on_node_added(n, &[person], &[(name, bucket)]);
        assert_eq!(idx.label_prop_candidates(person, name, bucket), &[n]);
        assert_eq!(idx.label_prop_cardinality(person, name).entries, 1);

        // Removing the label drops the composite entry but keeps the
        // key-only one.
        idx.on_label_removed(n, person, &[(name, bucket)]);
        assert!(idx.label_prop_candidates(person, name, bucket).is_empty());
        assert_eq!(idx.prop_candidates(name, bucket), &[n]);

        // Re-adding the label restores it.
        idx.on_label_added(n, person, &[(name, bucket)]);
        assert_eq!(idx.label_prop_candidates(person, name, bucket), &[n]);

        idx.on_node_removed(n, &[person], &[(name, bucket)]);
        assert!(idx.label_prop_candidates(person, name, bucket).is_empty());
        assert!(idx.prop_candidates(name, bucket).is_empty());
        assert_eq!(idx.label_cardinality(person), 0);
    }

    #[test]
    fn seek_estimate_is_entries_over_distinct() {
        let mut idx = IndexSet::new();
        let k = sym(0);
        for i in 0..10u64 {
            // Five distinct values, two nodes each.
            idx.on_prop_set(NodeId(i), &[], k, i % 5);
        }
        let c = idx.prop_cardinality(k);
        assert_eq!(c.entries, 10);
        assert_eq!(c.distinct, 5);
        assert!((c.seek_estimate() - 2.0).abs() < f64::EPSILON);
        assert_eq!(IndexCardinality::default().seek_estimate(), 0.0);
    }
}
