//! Secondary indexes over nodes, with the cardinality statistics the
//! cost-based planner consumes.
//!
//! Three index families are maintained **incrementally** by every mutation
//! path of [`crate::graph::PropertyGraph`] (`CREATE`, `DELETE`, `SET`,
//! `REMOVE`, `MERGE` all bottom out in the store's mutators, so the
//! indexes can never drift from the base data — the concern the
//! incremental-view-maintenance literature calls *update correctness*):
//!
//! * the **label index** `ℓ → { n | ℓ ∈ λ(n) }`,
//! * the **property index** `k → (h(v) → { n | ι(n, k) ≡ v })`, and
//! * the **composite label/property index**
//!   `(ℓ, k) → (h(v) → { n | ℓ ∈ λ(n) ∧ ι(n, k) ≡ v })`,
//!
//! where `h` is the equivalence-respecting hash of [`Value`]
//! ([`Value::hash_equivalent`]). Buckets are hash classes, not exact value
//! classes: readers re-check candidates with [`Value::equivalent`], so a
//! hash collision costs time, never correctness.
//!
//! Every bucket map also carries running totals, from which
//! [`IndexCardinality`] derives the planner's selectivity estimate for an
//! equality seek: `entries / distinct` ≈ expected matches per looked-up
//! value, the classic uniform-values assumption (cf. the output-size
//! bounds of Abo Khamis et al., *Computing Join Queries with Functional
//! Dependencies*, which this per-key statistic crudely approximates).

use crate::fxhash::FxHashMap;
use crate::graph::NodeId;
use crate::interner::Symbol;
use crate::value::Value;
use std::sync::Arc;

/// Hashes a value into its index bucket, respecting Cypher equivalence
/// (so `9` and `9.0` land in the same bucket).
pub fn value_bucket(v: &Value) -> u64 {
    use std::hash::Hasher;
    let mut h = crate::fxhash::FxHasher::default();
    v.hash_equivalent(&mut h);
    h.finish()
}

/// Cardinality statistics for one indexed key (or one `(label, key)`
/// pair): how many index entries exist and how many distinct values they
/// spread over.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexCardinality {
    /// Total `(node, value)` entries indexed under the key.
    pub entries: usize,
    /// Number of distinct indexed values (hash classes).
    pub distinct: usize,
}

impl IndexCardinality {
    /// Expected number of nodes returned by an equality seek, under the
    /// uniform-values assumption. Zero when nothing is indexed.
    pub fn seek_estimate(&self) -> f64 {
        if self.distinct == 0 {
            0.0
        } else {
            self.entries as f64 / self.distinct as f64
        }
    }
}

/// Inserts into a posting list, keeping it sorted by node id. Posting
/// lists are **canonically ordered**: the common case (a freshly created
/// node, whose id exceeds every existing one) is an O(1) append, while
/// late label/property additions to old nodes pay a binary-search insert.
/// Canonical order is what lets crash recovery rebuild every index
/// bit-identical to the incrementally-maintained one — index state is a
/// pure function of graph content, never of mutation history.
fn insert_sorted(list: &mut Vec<NodeId>, n: NodeId) {
    match list.last() {
        Some(&last) if last >= n => {
            if let Err(pos) = list.binary_search(&n) {
                list.insert(pos, n);
            }
        }
        _ => list.push(n),
    }
}

/// Shards per value-bucket map. The copy-on-write bill of the first
/// mutation touching a key after a snapshot clone is one shard's map
/// copy — 1/32 of the key's distinct values — instead of the whole map
/// (a point `SET` on a 100k-distinct-values key drops from ~ms to ~µs).
const BUCKET_SHARDS: usize = 32;

/// One value-bucketed posting-list map plus its running totals,
/// **sharded** by bucket hash for copy-on-write friendliness. Every
/// level is `Arc`-shared: cloning copies shard *pointers*, mutating
/// copies the one touched shard map and the one touched posting list,
/// each once per clone generation via [`Arc::make_mut`].
#[derive(Debug, Clone)]
struct ValueBuckets {
    shards: Vec<Arc<FxHashMap<u64, Arc<Vec<NodeId>>>>>,
    entries: usize,
}

impl Default for ValueBuckets {
    fn default() -> Self {
        ValueBuckets {
            shards: (0..BUCKET_SHARDS).map(|_| Arc::default()).collect(),
            entries: 0,
        }
    }
}

/// Which shard a bucket hash lives in. Low bits: `value_bucket` hashes
/// are finalized (well-mixed), so any bit window spreads evenly.
fn shard_of(bucket: u64) -> usize {
    (bucket as usize) & (BUCKET_SHARDS - 1)
}

impl ValueBuckets {
    fn insert(&mut self, bucket: u64, n: NodeId) {
        let shard = Arc::make_mut(&mut self.shards[shard_of(bucket)]);
        insert_sorted(Arc::make_mut(shard.entry(bucket).or_default()), n);
        self.entries += 1;
    }

    fn remove(&mut self, bucket: u64, n: NodeId) {
        let shard = Arc::make_mut(&mut self.shards[shard_of(bucket)]);
        if let Some(list) = shard.get_mut(&bucket) {
            if let Ok(pos) = list.binary_search(&n) {
                Arc::make_mut(list).remove(pos);
                self.entries -= 1;
                if list.is_empty() {
                    shard.remove(&bucket);
                }
            }
        }
    }

    fn candidates(&self, bucket: u64) -> &[NodeId] {
        self.shards[shard_of(bucket)]
            .get(&bucket)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    fn cardinality(&self) -> IndexCardinality {
        IndexCardinality {
            entries: self.entries,
            distinct: self.shards.iter().map(|s| s.len()).sum(),
        }
    }

    /// Canonical rendering: buckets sorted by hash, lists verbatim.
    /// Shard layout is invisible here — the dump is a pure function of
    /// the indexed content, exactly as before sharding.
    fn dump(&self) -> String {
        use std::fmt::Write;
        let mut buckets: Vec<(u64, &Vec<NodeId>)> = self
            .shards
            .iter()
            .flat_map(|s| s.iter().map(|(&h, v)| (h, &**v)))
            .collect();
        buckets.sort_by_key(|&(h, _)| h);
        let mut s = String::new();
        for (h, nodes) in buckets {
            write!(s, "{h:016x}={nodes:?} ").unwrap();
        }
        s
    }
}

/// The full set of node indexes of one [`crate::graph::PropertyGraph`].
///
/// The store owns exactly one `IndexSet` and routes every node mutation
/// through the `on_*` hooks below; each hook is O(labels × properties
/// touched) — the incremental cost of staying consistent.
/// Every posting structure is `Arc`-shared copy-on-write: cloning an
/// `IndexSet` is O(indexed labels + keys + (label, key) pairs) pointer
/// bumps, and a mutation after a clone copies only the structures it
/// touches (see [`crate::version`] for the multi-version protocol this
/// serves).
#[derive(Debug, Clone, Default)]
pub struct IndexSet {
    /// `ℓ → nodes`, sorted by node id (scan order is deterministic *and*
    /// canonical — see [`insert_sorted`]).
    labels: FxHashMap<Symbol, Arc<Vec<NodeId>>>,
    /// `k → value → nodes`.
    props: FxHashMap<Symbol, Arc<ValueBuckets>>,
    /// `(ℓ, k) → value → nodes` — the composite index backing
    /// `PropertyIndexSeek`.
    label_props: FxHashMap<(Symbol, Symbol), Arc<ValueBuckets>>,
}

impl IndexSet {
    /// Creates an empty index set.
    pub fn new() -> Self {
        Self::default()
    }

    // -- mutation hooks ------------------------------------------------------

    /// A node was created with the given labels and properties. `labels`
    /// must already be deduplicated.
    pub fn on_node_added(&mut self, n: NodeId, labels: &[Symbol], props: &[(Symbol, u64)]) {
        for &l in labels {
            insert_sorted(Arc::make_mut(self.labels.entry(l).or_default()), n);
        }
        for &(k, bucket) in props {
            Arc::make_mut(self.props.entry(k).or_default()).insert(bucket, n);
            for &l in labels {
                Arc::make_mut(self.label_props.entry((l, k)).or_default()).insert(bucket, n);
            }
        }
    }

    /// A node is being removed; `labels`/`props` describe its state at
    /// removal time.
    pub fn on_node_removed(&mut self, n: NodeId, labels: &[Symbol], props: &[(Symbol, u64)]) {
        for &l in labels {
            if let Some(list) = self.labels.get_mut(&l) {
                Arc::make_mut(list).retain(|&x| x != n);
            }
        }
        for &(k, bucket) in props {
            if let Some(b) = self.props.get_mut(&k) {
                Arc::make_mut(b).remove(bucket, n);
            }
            for &l in labels {
                if let Some(b) = self.label_props.get_mut(&(l, k)) {
                    Arc::make_mut(b).remove(bucket, n);
                }
            }
        }
    }

    /// A label was added to a live node with the given current properties.
    pub fn on_label_added(&mut self, n: NodeId, l: Symbol, props: &[(Symbol, u64)]) {
        insert_sorted(Arc::make_mut(self.labels.entry(l).or_default()), n);
        for &(k, bucket) in props {
            Arc::make_mut(self.label_props.entry((l, k)).or_default()).insert(bucket, n);
        }
    }

    /// A label was removed from a live node with the given current
    /// properties.
    pub fn on_label_removed(&mut self, n: NodeId, l: Symbol, props: &[(Symbol, u64)]) {
        if let Some(list) = self.labels.get_mut(&l) {
            Arc::make_mut(list).retain(|&x| x != n);
        }
        for &(k, bucket) in props {
            if let Some(b) = self.label_props.get_mut(&(l, k)) {
                Arc::make_mut(b).remove(bucket, n);
            }
        }
    }

    /// A property value was set on a node carrying `labels`.
    pub fn on_prop_set(&mut self, n: NodeId, labels: &[Symbol], k: Symbol, bucket: u64) {
        Arc::make_mut(self.props.entry(k).or_default()).insert(bucket, n);
        for &l in labels {
            Arc::make_mut(self.label_props.entry((l, k)).or_default()).insert(bucket, n);
        }
    }

    /// A property value was removed from a node carrying `labels`.
    pub fn on_prop_removed(&mut self, n: NodeId, labels: &[Symbol], k: Symbol, bucket: u64) {
        if let Some(b) = self.props.get_mut(&k) {
            Arc::make_mut(b).remove(bucket, n);
        }
        for &l in labels {
            if let Some(b) = self.label_props.get_mut(&(l, k)) {
                Arc::make_mut(b).remove(bucket, n);
            }
        }
    }

    // -- lookups -------------------------------------------------------------

    /// Live nodes with the given label, in insertion order.
    pub fn nodes_with_label(&self, l: Symbol) -> &[NodeId] {
        self.labels.get(&l).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Candidate nodes whose property `k` hashes like `v`. Callers must
    /// re-check equivalence (hash classes may collide).
    pub fn prop_candidates(&self, k: Symbol, bucket: u64) -> &[NodeId] {
        self.props
            .get(&k)
            .map(|b| b.candidates(bucket))
            .unwrap_or(&[])
    }

    /// Candidate nodes with label `l` whose property `k` hashes like `v`.
    pub fn label_prop_candidates(&self, l: Symbol, k: Symbol, bucket: u64) -> &[NodeId] {
        self.label_props
            .get(&(l, k))
            .map(|b| b.candidates(bucket))
            .unwrap_or(&[])
    }

    // -- statistics ----------------------------------------------------------

    /// Number of nodes carrying the label.
    pub fn label_cardinality(&self, l: Symbol) -> usize {
        self.nodes_with_label(l).len()
    }

    /// Cardinality statistics of the property index for `k`.
    pub fn prop_cardinality(&self, k: Symbol) -> IndexCardinality {
        self.props
            .get(&k)
            .map(|b| b.cardinality())
            .unwrap_or_default()
    }

    /// Cardinality statistics of the composite index for `(l, k)`.
    pub fn label_prop_cardinality(&self, l: Symbol, k: Symbol) -> IndexCardinality {
        self.label_props
            .get(&(l, k))
            .map(|b| b.cardinality())
            .unwrap_or_default()
    }

    /// Iterates over `(label, node count)` pairs for every indexed label.
    pub fn label_cardinalities(&self) -> impl Iterator<Item = (Symbol, usize)> + '_ {
        self.labels.iter().map(|(&l, v)| (l, v.len()))
    }

    /// Iterates over `(key, cardinality)` pairs for every indexed
    /// property key.
    pub fn prop_cardinalities(&self) -> impl Iterator<Item = (Symbol, IndexCardinality)> + '_ {
        self.props.iter().map(|(&k, b)| (k, b.cardinality()))
    }

    // -- canonical dump ------------------------------------------------------

    /// Renders the complete index contents in a canonical, hash-map-order-
    /// independent form: labels/keys are resolved to strings through
    /// `resolve` and sorted, value buckets are sorted by bucket hash, and
    /// posting lists appear verbatim (they are sorted by construction).
    ///
    /// Two `IndexSet`s with equal dumps answer every lookup identically —
    /// this is the "bit-identical indexes" witness of the crash-recovery
    /// differential suite.
    pub fn canonical_dump(&self, resolve: &dyn Fn(Symbol) -> String, out: &mut String) {
        use std::fmt::Write;
        let mut labels: Vec<(String, &Vec<NodeId>)> = self
            .labels
            .iter()
            .filter(|(_, v)| !v.is_empty())
            .map(|(&l, v)| (resolve(l), &**v))
            .collect();
        labels.sort();
        for (l, nodes) in labels {
            writeln!(out, "label-index {l}: {nodes:?}").unwrap();
        }
        let mut props: Vec<(String, &ValueBuckets)> = self
            .props
            .iter()
            .filter(|(_, b)| b.entries > 0)
            .map(|(&k, b)| (resolve(k), &**b))
            .collect();
        props.sort_by(|a, b| a.0.cmp(&b.0));
        for (k, b) in props {
            writeln!(out, "prop-index {k}: {}", b.dump()).unwrap();
        }
        let mut composite: Vec<(String, String, &ValueBuckets)> = self
            .label_props
            .iter()
            .filter(|(_, b)| b.entries > 0)
            .map(|(&(l, k), b)| (resolve(l), resolve(k), &**b))
            .collect();
        composite.sort_by(|a, b| (&a.0, &a.1).cmp(&(&b.0, &b.1)));
        for (l, k, b) in composite {
            writeln!(out, "composite-index {l}/{k}: {}", b.dump()).unwrap();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(i: u32) -> Symbol {
        // Symbols are plain newtyped indices; fabricate them directly.
        Symbol(i)
    }

    #[test]
    fn composite_index_tracks_label_and_prop_churn() {
        let mut idx = IndexSet::new();
        let (person, name) = (sym(0), sym(1));
        let n = NodeId(0);
        let bucket = value_bucket(&Value::str("Ada"));

        idx.on_node_added(n, &[person], &[(name, bucket)]);
        assert_eq!(idx.label_prop_candidates(person, name, bucket), &[n]);
        assert_eq!(idx.label_prop_cardinality(person, name).entries, 1);

        // Removing the label drops the composite entry but keeps the
        // key-only one.
        idx.on_label_removed(n, person, &[(name, bucket)]);
        assert!(idx.label_prop_candidates(person, name, bucket).is_empty());
        assert_eq!(idx.prop_candidates(name, bucket), &[n]);

        // Re-adding the label restores it.
        idx.on_label_added(n, person, &[(name, bucket)]);
        assert_eq!(idx.label_prop_candidates(person, name, bucket), &[n]);

        idx.on_node_removed(n, &[person], &[(name, bucket)]);
        assert!(idx.label_prop_candidates(person, name, bucket).is_empty());
        assert!(idx.prop_candidates(name, bucket).is_empty());
        assert_eq!(idx.label_cardinality(person), 0);
    }

    #[test]
    fn seek_estimate_is_entries_over_distinct() {
        let mut idx = IndexSet::new();
        let k = sym(0);
        for i in 0..10u64 {
            // Five distinct values, two nodes each.
            idx.on_prop_set(NodeId(i), &[], k, i % 5);
        }
        let c = idx.prop_cardinality(k);
        assert_eq!(c.entries, 10);
        assert_eq!(c.distinct, 5);
        assert!((c.seek_estimate() - 2.0).abs() < f64::EPSILON);
        assert_eq!(IndexCardinality::default().seek_estimate(), 0.0);
    }
}
