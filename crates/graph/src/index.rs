//! Secondary indexes over nodes, with the cardinality statistics the
//! cost-based planner consumes.
//!
//! Three index families are maintained **incrementally** by every mutation
//! path of [`crate::graph::PropertyGraph`] (`CREATE`, `DELETE`, `SET`,
//! `REMOVE`, `MERGE` all bottom out in the store's mutators, so the
//! indexes can never drift from the base data — the concern the
//! incremental-view-maintenance literature calls *update correctness*):
//!
//! * the **label index** `ℓ → { n | ℓ ∈ λ(n) }`,
//! * the **property index** `k → (h(v) → { n | ι(n, k) ≡ v })`, and
//! * the **composite label/property index**
//!   `(ℓ, k) → (h(v) → { n | ℓ ∈ λ(n) ∧ ι(n, k) ≡ v })`,
//!
//! where `h` is the equivalence-respecting hash of [`Value`]
//! ([`Value::hash_equivalent`]). Buckets are hash classes, not exact value
//! classes: readers re-check candidates with [`Value::equivalent`], so a
//! hash collision costs time, never correctness.
//!
//! Every bucket map also carries running totals, from which
//! [`IndexCardinality`] derives the planner's selectivity estimate for an
//! equality seek: `entries / distinct` ≈ expected matches per looked-up
//! value, the classic uniform-values assumption (cf. the output-size
//! bounds of Abo Khamis et al., *Computing Join Queries with Functional
//! Dependencies*, which this per-key statistic crudely approximates).

use crate::fxhash::FxHashMap;
use crate::graph::NodeId;
use crate::interner::Symbol;
use crate::value::Value;
use std::sync::Arc;

/// Hashes a value into its index bucket, respecting Cypher equivalence
/// (so `9` and `9.0` land in the same bucket).
pub fn value_bucket(v: &Value) -> u64 {
    use std::hash::Hasher;
    let mut h = crate::fxhash::FxHasher::default();
    v.hash_equivalent(&mut h);
    h.finish()
}

/// Cardinality statistics for one indexed key (or one `(label, key)`
/// pair): how many index entries exist and how many distinct values they
/// spread over.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexCardinality {
    /// Total `(node, value)` entries indexed under the key.
    pub entries: usize,
    /// Number of distinct indexed values (hash classes).
    pub distinct: usize,
}

impl IndexCardinality {
    /// Expected number of nodes returned by an equality seek, under the
    /// uniform-values assumption. Zero when nothing is indexed.
    pub fn seek_estimate(&self) -> f64 {
        if self.distinct == 0 {
            0.0
        } else {
            self.entries as f64 / self.distinct as f64
        }
    }
}

/// Inserts into a posting list, keeping it sorted by node id. Posting
/// lists are **canonically ordered**: the common case (a freshly created
/// node, whose id exceeds every existing one) is an O(1) append, while
/// late label/property additions to old nodes pay a binary-search insert.
/// Canonical order is what lets crash recovery rebuild every index
/// bit-identical to the incrementally-maintained one — index state is a
/// pure function of graph content, never of mutation history.
fn insert_sorted(list: &mut Vec<NodeId>, n: NodeId) {
    match list.last() {
        Some(&last) if last >= n => {
            if let Err(pos) = list.binary_search(&n) {
                list.insert(pos, n);
            }
        }
        _ => list.push(n),
    }
}

/// Shards per value-bucket map. The copy-on-write bill of the first
/// mutation touching a key after a snapshot clone is one shard's map
/// copy — 1/32 of the key's distinct values — instead of the whole map
/// (a point `SET` on a 100k-distinct-values key drops from ~ms to ~µs).
const BUCKET_SHARDS: usize = 32;

/// One value-bucketed posting-list map plus its running totals,
/// **sharded** by bucket hash for copy-on-write friendliness. Every
/// level is `Arc`-shared: cloning copies shard *pointers*, mutating
/// copies the one touched shard map and the one touched posting list,
/// each once per clone generation via [`Arc::make_mut`].
#[derive(Debug, Clone)]
struct ValueBuckets {
    shards: Vec<Arc<FxHashMap<u64, Arc<Vec<NodeId>>>>>,
    entries: usize,
}

impl Default for ValueBuckets {
    fn default() -> Self {
        ValueBuckets {
            shards: (0..BUCKET_SHARDS).map(|_| Arc::default()).collect(),
            entries: 0,
        }
    }
}

/// Which shard a bucket hash lives in. Low bits: `value_bucket` hashes
/// are finalized (well-mixed), so any bit window spreads evenly.
fn shard_of(bucket: u64) -> usize {
    (bucket as usize) & (BUCKET_SHARDS - 1)
}

impl ValueBuckets {
    fn insert(&mut self, bucket: u64, n: NodeId) {
        let shard = Arc::make_mut(&mut self.shards[shard_of(bucket)]);
        insert_sorted(Arc::make_mut(shard.entry(bucket).or_default()), n);
        self.entries += 1;
    }

    fn remove(&mut self, bucket: u64, n: NodeId) {
        let shard = Arc::make_mut(&mut self.shards[shard_of(bucket)]);
        if let Some(list) = shard.get_mut(&bucket) {
            if let Ok(pos) = list.binary_search(&n) {
                Arc::make_mut(list).remove(pos);
                self.entries -= 1;
                if list.is_empty() {
                    shard.remove(&bucket);
                }
            }
        }
    }

    fn candidates(&self, bucket: u64) -> &[NodeId] {
        self.shards[shard_of(bucket)]
            .get(&bucket)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    fn cardinality(&self) -> IndexCardinality {
        IndexCardinality {
            entries: self.entries,
            distinct: self.shards.iter().map(|s| s.len()).sum(),
        }
    }

    /// Canonical rendering: buckets sorted by hash, lists verbatim.
    /// Shard layout is invisible here — the dump is a pure function of
    /// the indexed content, exactly as before sharding.
    fn dump(&self) -> String {
        use std::fmt::Write;
        let mut buckets: Vec<(u64, &Vec<NodeId>)> = self
            .shards
            .iter()
            .flat_map(|s| s.iter().map(|(&h, v)| (h, &**v)))
            .collect();
        buckets.sort_by_key(|&(h, _)| h);
        let mut s = String::new();
        for (h, nodes) in buckets {
            write!(s, "{h:016x}={nodes:?} ").unwrap();
        }
        s
    }
}

/// One primitive, fully-resolved index mutation. Bulk (deferred) mode
/// buffers these instead of touching posting structures, then applies
/// them grouped by **disjoint target unit** — a label's posting list, or
/// one `(key, shard)` of a bucket map — preserving per-unit emission
/// order, which makes the final state identical to incremental
/// maintenance while letting units apply on different threads.
#[derive(Debug, Clone, Copy)]
enum IndexOp {
    Label {
        insert: bool,
        l: Symbol,
        n: NodeId,
    },
    Prop {
        insert: bool,
        k: Symbol,
        bucket: u64,
        n: NodeId,
    },
    Composite {
        insert: bool,
        l: Symbol,
        k: Symbol,
        bucket: u64,
        n: NodeId,
    },
}

/// Below this many buffered ops the fan-out overhead outweighs the work.
const PARALLEL_APPLY_MIN_OPS: usize = 2048;

/// The full set of node indexes of one [`crate::graph::PropertyGraph`].
///
/// The store owns exactly one `IndexSet` and routes every node mutation
/// through the `on_*` hooks below; each hook is O(labels × properties
/// touched) — the incremental cost of staying consistent.
/// Every posting structure is `Arc`-shared copy-on-write: cloning an
/// `IndexSet` is O(indexed labels + keys + (label, key) pairs) pointer
/// bumps, and a mutation after a clone copies only the structures it
/// touches (see [`crate::version`] for the multi-version protocol this
/// serves).
#[derive(Debug, Clone, Default)]
pub struct IndexSet {
    /// `ℓ → nodes`, sorted by node id (scan order is deterministic *and*
    /// canonical — see [`insert_sorted`]).
    labels: FxHashMap<Symbol, Arc<Vec<NodeId>>>,
    /// `k → value → nodes`.
    props: FxHashMap<Symbol, Arc<ValueBuckets>>,
    /// `(ℓ, k) → value → nodes` — the composite index backing
    /// `PropertyIndexSeek`.
    label_props: FxHashMap<(Symbol, Symbol), Arc<ValueBuckets>>,
    /// `Some` while in bulk mode: hooks buffer [`IndexOp`]s here instead
    /// of applying them (see [`IndexSet::begin_deferred`]).
    deferred: Option<Vec<IndexOp>>,
}

impl IndexSet {
    /// Creates an empty index set.
    pub fn new() -> Self {
        Self::default()
    }

    // -- mutation hooks ------------------------------------------------------

    /// A node was created with the given labels and properties. `labels`
    /// must already be deduplicated.
    pub fn on_node_added(&mut self, n: NodeId, labels: &[Symbol], props: &[(Symbol, u64)]) {
        if let Some(buf) = &mut self.deferred {
            for &l in labels {
                buf.push(IndexOp::Label { insert: true, l, n });
            }
            for &(k, bucket) in props {
                buf.push(IndexOp::Prop {
                    insert: true,
                    k,
                    bucket,
                    n,
                });
                for &l in labels {
                    buf.push(IndexOp::Composite {
                        insert: true,
                        l,
                        k,
                        bucket,
                        n,
                    });
                }
            }
            return;
        }
        for &l in labels {
            insert_sorted(Arc::make_mut(self.labels.entry(l).or_default()), n);
        }
        for &(k, bucket) in props {
            Arc::make_mut(self.props.entry(k).or_default()).insert(bucket, n);
            for &l in labels {
                Arc::make_mut(self.label_props.entry((l, k)).or_default()).insert(bucket, n);
            }
        }
    }

    /// A node is being removed; `labels`/`props` describe its state at
    /// removal time.
    pub fn on_node_removed(&mut self, n: NodeId, labels: &[Symbol], props: &[(Symbol, u64)]) {
        if let Some(buf) = &mut self.deferred {
            for &l in labels {
                buf.push(IndexOp::Label {
                    insert: false,
                    l,
                    n,
                });
            }
            for &(k, bucket) in props {
                buf.push(IndexOp::Prop {
                    insert: false,
                    k,
                    bucket,
                    n,
                });
                for &l in labels {
                    buf.push(IndexOp::Composite {
                        insert: false,
                        l,
                        k,
                        bucket,
                        n,
                    });
                }
            }
            return;
        }
        for &l in labels {
            if let Some(list) = self.labels.get_mut(&l) {
                Arc::make_mut(list).retain(|&x| x != n);
            }
        }
        for &(k, bucket) in props {
            if let Some(b) = self.props.get_mut(&k) {
                Arc::make_mut(b).remove(bucket, n);
            }
            for &l in labels {
                if let Some(b) = self.label_props.get_mut(&(l, k)) {
                    Arc::make_mut(b).remove(bucket, n);
                }
            }
        }
    }

    /// A label was added to a live node with the given current properties.
    pub fn on_label_added(&mut self, n: NodeId, l: Symbol, props: &[(Symbol, u64)]) {
        if let Some(buf) = &mut self.deferred {
            buf.push(IndexOp::Label { insert: true, l, n });
            for &(k, bucket) in props {
                buf.push(IndexOp::Composite {
                    insert: true,
                    l,
                    k,
                    bucket,
                    n,
                });
            }
            return;
        }
        insert_sorted(Arc::make_mut(self.labels.entry(l).or_default()), n);
        for &(k, bucket) in props {
            Arc::make_mut(self.label_props.entry((l, k)).or_default()).insert(bucket, n);
        }
    }

    /// A label was removed from a live node with the given current
    /// properties.
    pub fn on_label_removed(&mut self, n: NodeId, l: Symbol, props: &[(Symbol, u64)]) {
        if let Some(buf) = &mut self.deferred {
            buf.push(IndexOp::Label {
                insert: false,
                l,
                n,
            });
            for &(k, bucket) in props {
                buf.push(IndexOp::Composite {
                    insert: false,
                    l,
                    k,
                    bucket,
                    n,
                });
            }
            return;
        }
        if let Some(list) = self.labels.get_mut(&l) {
            Arc::make_mut(list).retain(|&x| x != n);
        }
        for &(k, bucket) in props {
            if let Some(b) = self.label_props.get_mut(&(l, k)) {
                Arc::make_mut(b).remove(bucket, n);
            }
        }
    }

    /// A property value was set on a node carrying `labels`.
    pub fn on_prop_set(&mut self, n: NodeId, labels: &[Symbol], k: Symbol, bucket: u64) {
        if let Some(buf) = &mut self.deferred {
            buf.push(IndexOp::Prop {
                insert: true,
                k,
                bucket,
                n,
            });
            for &l in labels {
                buf.push(IndexOp::Composite {
                    insert: true,
                    l,
                    k,
                    bucket,
                    n,
                });
            }
            return;
        }
        Arc::make_mut(self.props.entry(k).or_default()).insert(bucket, n);
        for &l in labels {
            Arc::make_mut(self.label_props.entry((l, k)).or_default()).insert(bucket, n);
        }
    }

    /// A property value was removed from a node carrying `labels`.
    pub fn on_prop_removed(&mut self, n: NodeId, labels: &[Symbol], k: Symbol, bucket: u64) {
        if let Some(buf) = &mut self.deferred {
            buf.push(IndexOp::Prop {
                insert: false,
                k,
                bucket,
                n,
            });
            for &l in labels {
                buf.push(IndexOp::Composite {
                    insert: false,
                    l,
                    k,
                    bucket,
                    n,
                });
            }
            return;
        }
        if let Some(b) = self.props.get_mut(&k) {
            Arc::make_mut(b).remove(bucket, n);
        }
        for &l in labels {
            if let Some(b) = self.label_props.get_mut(&(l, k)) {
                Arc::make_mut(b).remove(bucket, n);
            }
        }
    }

    // -- bulk (deferred) maintenance -----------------------------------------

    /// Enters bulk mode: subsequent hooks buffer primitive ops instead of
    /// touching posting structures. Lookups and statistics are stale until
    /// [`IndexSet::finish_deferred`] — bulk mode is for mutation-only
    /// phases (WAL replay, snapshot restore), never for live queries.
    pub(crate) fn begin_deferred(&mut self) {
        if self.deferred.is_none() {
            self.deferred = Some(Vec::new());
        }
    }

    /// Leaves bulk mode, applying every buffered op. With `threads > 1`
    /// and enough ops, application fans out across disjoint posting
    /// units — per-label lists and per-`(key, shard)` bucket maps — on
    /// scoped threads; per-unit op order is emission order, so the final
    /// index state is identical to incremental maintenance.
    pub(crate) fn finish_deferred(&mut self, threads: usize) {
        let Some(ops) = self.deferred.take() else {
            return;
        };
        if threads <= 1 || ops.len() < PARALLEL_APPLY_MIN_OPS {
            for op in ops {
                self.apply_op(op);
            }
            return;
        }
        self.apply_deferred_parallel(ops, threads);
    }

    /// Applies one buffered op exactly as the incremental hook would.
    fn apply_op(&mut self, op: IndexOp) {
        match op {
            IndexOp::Label { insert: true, l, n } => {
                insert_sorted(Arc::make_mut(self.labels.entry(l).or_default()), n);
            }
            IndexOp::Label {
                insert: false,
                l,
                n,
            } => {
                if let Some(list) = self.labels.get_mut(&l) {
                    Arc::make_mut(list).retain(|&x| x != n);
                }
            }
            IndexOp::Prop {
                insert,
                k,
                bucket,
                n,
            } => {
                if insert {
                    Arc::make_mut(self.props.entry(k).or_default()).insert(bucket, n);
                } else if let Some(b) = self.props.get_mut(&k) {
                    Arc::make_mut(b).remove(bucket, n);
                }
            }
            IndexOp::Composite {
                insert,
                l,
                k,
                bucket,
                n,
            } => {
                if insert {
                    Arc::make_mut(self.label_props.entry((l, k)).or_default()).insert(bucket, n);
                } else if let Some(b) = self.label_props.get_mut(&(l, k)) {
                    Arc::make_mut(b).remove(bucket, n);
                }
            }
        }
    }

    /// The shard-parallel bulk apply. Ops are grouped by disjoint target
    /// unit; each unit's postings are lifted out of the maps, mutated on
    /// a worker thread in emission order, and written back serially. A
    /// unit mirrors the incremental hook exactly, including when entries
    /// are created (inserts create, removes never do) and removed (a
    /// bucket emptied by removal disappears), so the result is
    /// bit-identical to serial application — the recovery differential's
    /// canonical dumps witness this.
    fn apply_deferred_parallel(&mut self, ops: Vec<IndexOp>, threads: usize) {
        type BucketMap = Arc<FxHashMap<u64, Arc<Vec<NodeId>>>>;
        enum Unit {
            Label {
                l: Symbol,
                list: Arc<Vec<NodeId>>,
                ops: Vec<(bool, NodeId)>,
            },
            Buckets {
                /// Identifies the writeback target: props key or
                /// label_props pair, plus the shard slot.
                target: BucketTarget,
                shard: usize,
                map: BucketMap,
                ops: Vec<(bool, u64, NodeId)>,
                delta: isize,
            },
        }
        enum BucketTarget {
            Prop(Symbol),
            Composite(Symbol, Symbol),
        }

        // Group ops by unit, preserving emission order within each.
        let mut label_ops: FxHashMap<Symbol, Vec<(bool, NodeId)>> = FxHashMap::default();
        let mut prop_ops: FxHashMap<(Symbol, usize), Vec<(bool, u64, NodeId)>> =
            FxHashMap::default();
        let mut comp_ops: FxHashMap<(Symbol, Symbol, usize), Vec<(bool, u64, NodeId)>> =
            FxHashMap::default();
        for op in ops {
            match op {
                IndexOp::Label { insert, l, n } => {
                    label_ops.entry(l).or_default().push((insert, n));
                }
                IndexOp::Prop {
                    insert,
                    k,
                    bucket,
                    n,
                } => {
                    prop_ops
                        .entry((k, shard_of(bucket)))
                        .or_default()
                        .push((insert, bucket, n));
                }
                IndexOp::Composite {
                    insert,
                    l,
                    k,
                    bucket,
                    n,
                } => {
                    comp_ops
                        .entry((l, k, shard_of(bucket)))
                        .or_default()
                        .push((insert, bucket, n));
                }
            }
        }

        // Lift each unit's target structure out of the maps. Remove-only
        // units against absent entries stay absent (the incremental hooks
        // never create an entry on removal).
        let mut units: Vec<std::sync::Mutex<Unit>> = Vec::new();
        for (l, ops) in label_ops {
            if !self.labels.contains_key(&l) && !ops.iter().any(|&(ins, _)| ins) {
                continue;
            }
            let list = self.labels.remove(&l).unwrap_or_default();
            units.push(std::sync::Mutex::new(Unit::Label { l, list, ops }));
        }
        for ((k, si), ops) in prop_ops {
            if !self.props.contains_key(&k) && !ops.iter().any(|&(ins, _, _)| ins) {
                continue;
            }
            let vb = Arc::make_mut(self.props.entry(k).or_default());
            let map = std::mem::take(&mut vb.shards[si]);
            units.push(std::sync::Mutex::new(Unit::Buckets {
                target: BucketTarget::Prop(k),
                shard: si,
                map,
                ops,
                delta: 0,
            }));
        }
        for ((l, k, si), ops) in comp_ops {
            if !self.label_props.contains_key(&(l, k)) && !ops.iter().any(|&(ins, _, _)| ins) {
                continue;
            }
            let vb = Arc::make_mut(self.label_props.entry((l, k)).or_default());
            let map = std::mem::take(&mut vb.shards[si]);
            units.push(std::sync::Mutex::new(Unit::Buckets {
                target: BucketTarget::Composite(l, k),
                shard: si,
                map,
                ops,
                delta: 0,
            }));
        }

        // Units are disjoint, so workers claim them off a shared cursor
        // and mutate independently; each per-unit mutex is uncontended.
        fn run_unit(u: &mut Unit) {
            match u {
                Unit::Label { list, ops, .. } => {
                    let list = Arc::make_mut(list);
                    for &(insert, n) in ops.iter() {
                        if insert {
                            insert_sorted(list, n);
                        } else {
                            list.retain(|&x| x != n);
                        }
                    }
                }
                Unit::Buckets {
                    map, ops, delta, ..
                } => {
                    let m = Arc::make_mut(map);
                    for &(insert, bucket, n) in ops.iter() {
                        if insert {
                            insert_sorted(Arc::make_mut(m.entry(bucket).or_default()), n);
                            *delta += 1;
                        } else if let Some(list) = m.get_mut(&bucket) {
                            if let Ok(pos) = list.binary_search(&n) {
                                Arc::make_mut(list).remove(pos);
                                *delta -= 1;
                                if list.is_empty() {
                                    m.remove(&bucket);
                                }
                            }
                        }
                    }
                }
            }
        }
        let workers = threads.min(units.len()).max(1);
        if workers <= 1 {
            for u in &units {
                run_unit(&mut u.lock().unwrap());
            }
        } else {
            let cursor = std::sync::atomic::AtomicUsize::new(0);
            std::thread::scope(|s| {
                for _ in 0..workers {
                    s.spawn(|| loop {
                        let i = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        let Some(u) = units.get(i) else { break };
                        run_unit(&mut u.lock().unwrap());
                    });
                }
            });
        }

        // Serial writeback: lists and shard maps slot back in; entry
        // counters absorb each unit's delta.
        for u in units {
            match u.into_inner().unwrap() {
                // Surviving units had a prior entry or an insert op, and
                // incremental inserts create entries that removals never
                // delete — so the entry always exists afterwards, even
                // when its list netted out empty.
                Unit::Label { l, list, .. } => {
                    self.labels.insert(l, list);
                }
                Unit::Buckets {
                    target,
                    shard,
                    map,
                    delta,
                    ..
                } => {
                    let vb = match target {
                        BucketTarget::Prop(k) => {
                            Arc::make_mut(self.props.get_mut(&k).expect("unit target exists"))
                        }
                        BucketTarget::Composite(l, k) => Arc::make_mut(
                            self.label_props
                                .get_mut(&(l, k))
                                .expect("unit target exists"),
                        ),
                    };
                    vb.shards[shard] = map;
                    vb.entries = (vb.entries as isize + delta) as usize;
                }
            }
        }
    }

    // -- lookups -------------------------------------------------------------

    /// Live nodes with the given label, in insertion order.
    pub fn nodes_with_label(&self, l: Symbol) -> &[NodeId] {
        self.labels.get(&l).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Candidate nodes whose property `k` hashes like `v`. Callers must
    /// re-check equivalence (hash classes may collide).
    pub fn prop_candidates(&self, k: Symbol, bucket: u64) -> &[NodeId] {
        self.props
            .get(&k)
            .map(|b| b.candidates(bucket))
            .unwrap_or(&[])
    }

    /// Candidate nodes with label `l` whose property `k` hashes like `v`.
    pub fn label_prop_candidates(&self, l: Symbol, k: Symbol, bucket: u64) -> &[NodeId] {
        self.label_props
            .get(&(l, k))
            .map(|b| b.candidates(bucket))
            .unwrap_or(&[])
    }

    // -- statistics ----------------------------------------------------------

    /// Number of nodes carrying the label.
    pub fn label_cardinality(&self, l: Symbol) -> usize {
        self.nodes_with_label(l).len()
    }

    /// Cardinality statistics of the property index for `k`.
    pub fn prop_cardinality(&self, k: Symbol) -> IndexCardinality {
        self.props
            .get(&k)
            .map(|b| b.cardinality())
            .unwrap_or_default()
    }

    /// Cardinality statistics of the composite index for `(l, k)`.
    pub fn label_prop_cardinality(&self, l: Symbol, k: Symbol) -> IndexCardinality {
        self.label_props
            .get(&(l, k))
            .map(|b| b.cardinality())
            .unwrap_or_default()
    }

    /// Iterates over `(label, node count)` pairs for every indexed label.
    pub fn label_cardinalities(&self) -> impl Iterator<Item = (Symbol, usize)> + '_ {
        self.labels.iter().map(|(&l, v)| (l, v.len()))
    }

    /// Iterates over `(key, cardinality)` pairs for every indexed
    /// property key.
    pub fn prop_cardinalities(&self) -> impl Iterator<Item = (Symbol, IndexCardinality)> + '_ {
        self.props.iter().map(|(&k, b)| (k, b.cardinality()))
    }

    // -- canonical dump ------------------------------------------------------

    /// Renders the complete index contents in a canonical, hash-map-order-
    /// independent form: labels/keys are resolved to strings through
    /// `resolve` and sorted, value buckets are sorted by bucket hash, and
    /// posting lists appear verbatim (they are sorted by construction).
    ///
    /// Two `IndexSet`s with equal dumps answer every lookup identically —
    /// this is the "bit-identical indexes" witness of the crash-recovery
    /// differential suite.
    pub fn canonical_dump(&self, resolve: &dyn Fn(Symbol) -> String, out: &mut String) {
        use std::fmt::Write;
        let mut labels: Vec<(String, &Vec<NodeId>)> = self
            .labels
            .iter()
            .filter(|(_, v)| !v.is_empty())
            .map(|(&l, v)| (resolve(l), &**v))
            .collect();
        labels.sort();
        for (l, nodes) in labels {
            writeln!(out, "label-index {l}: {nodes:?}").unwrap();
        }
        let mut props: Vec<(String, &ValueBuckets)> = self
            .props
            .iter()
            .filter(|(_, b)| b.entries > 0)
            .map(|(&k, b)| (resolve(k), &**b))
            .collect();
        props.sort_by(|a, b| a.0.cmp(&b.0));
        for (k, b) in props {
            writeln!(out, "prop-index {k}: {}", b.dump()).unwrap();
        }
        let mut composite: Vec<(String, String, &ValueBuckets)> = self
            .label_props
            .iter()
            .filter(|(_, b)| b.entries > 0)
            .map(|(&(l, k), b)| (resolve(l), resolve(k), &**b))
            .collect();
        composite.sort_by(|a, b| (&a.0, &a.1).cmp(&(&b.0, &b.1)));
        for (l, k, b) in composite {
            writeln!(out, "composite-index {l}/{k}: {}", b.dump()).unwrap();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(i: u32) -> Symbol {
        // Symbols are plain newtyped indices; fabricate them directly.
        Symbol(i)
    }

    #[test]
    fn composite_index_tracks_label_and_prop_churn() {
        let mut idx = IndexSet::new();
        let (person, name) = (sym(0), sym(1));
        let n = NodeId(0);
        let bucket = value_bucket(&Value::str("Ada"));

        idx.on_node_added(n, &[person], &[(name, bucket)]);
        assert_eq!(idx.label_prop_candidates(person, name, bucket), &[n]);
        assert_eq!(idx.label_prop_cardinality(person, name).entries, 1);

        // Removing the label drops the composite entry but keeps the
        // key-only one.
        idx.on_label_removed(n, person, &[(name, bucket)]);
        assert!(idx.label_prop_candidates(person, name, bucket).is_empty());
        assert_eq!(idx.prop_candidates(name, bucket), &[n]);

        // Re-adding the label restores it.
        idx.on_label_added(n, person, &[(name, bucket)]);
        assert_eq!(idx.label_prop_candidates(person, name, bucket), &[n]);

        idx.on_node_removed(n, &[person], &[(name, bucket)]);
        assert!(idx.label_prop_candidates(person, name, bucket).is_empty());
        assert!(idx.prop_candidates(name, bucket).is_empty());
        assert_eq!(idx.label_cardinality(person), 0);
    }

    #[test]
    fn deferred_bulk_apply_is_bit_identical_to_incremental() {
        // Drive the same pseudorandom hook stream through an incremental
        // IndexSet and a deferred one applied on 4 threads; the canonical
        // dumps (posting lists verbatim) and statistics must coincide.
        let mut lcg = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            lcg >> 33
        };
        let resolve = |s: Symbol| format!("s{}", s.0);
        let mut serial = IndexSet::new();
        let mut bulk = IndexSet::new();
        bulk.begin_deferred();
        for i in 0..4000u64 {
            let n = NodeId(next() % 64);
            let labels = [sym((next() % 4) as u32)];
            let props = [(sym(4 + (next() % 3) as u32), next() % 8)];
            for idx in [&mut serial, &mut bulk] {
                match i % 5 {
                    0 => idx.on_node_added(n, &labels, &props),
                    1 => idx.on_prop_set(n, &labels, props[0].0, props[0].1),
                    2 => idx.on_label_added(n, labels[0], &props),
                    3 => idx.on_prop_removed(n, &labels, props[0].0, props[0].1),
                    _ => idx.on_node_removed(n, &labels, &props),
                }
            }
        }
        bulk.finish_deferred(4);
        let (mut a, mut b) = (String::new(), String::new());
        serial.canonical_dump(&resolve, &mut a);
        bulk.canonical_dump(&resolve, &mut b);
        assert_eq!(a, b, "bulk apply diverged from incremental maintenance");
        for l in 0..4 {
            assert_eq!(
                serial.label_cardinality(sym(l)),
                bulk.label_cardinality(sym(l))
            );
        }
        for k in 4..7 {
            assert_eq!(
                serial.prop_cardinality(sym(k)),
                bulk.prop_cardinality(sym(k))
            );
            for l in 0..4 {
                assert_eq!(
                    serial.label_prop_cardinality(sym(l), sym(k)),
                    bulk.label_prop_cardinality(sym(l), sym(k))
                );
            }
        }
    }

    #[test]
    fn seek_estimate_is_entries_over_distinct() {
        let mut idx = IndexSet::new();
        let k = sym(0);
        for i in 0..10u64 {
            // Five distinct values, two nodes each.
            idx.on_prop_set(NodeId(i), &[], k, i % 5);
        }
        let c = idx.prop_cardinality(k);
        assert_eq!(c.entries, 10);
        assert_eq!(c.distinct, 5);
        assert!((c.seek_estimate() - 2.0).abs() < f64::EPSILON);
        assert_eq!(IndexCardinality::default().seek_estimate(), 0.0);
    }
}
