//! Physical plan representation for `MATCH` pipelines.
//!
//! The paper (Section 2, "Neo4j implementation") describes execution plans
//! that "contain largely the same operators as in relational database
//! engines and an additional operator called Expand … semantically very
//! similar to a relational join", which exploits the native adjacency of
//! the store. The plan language here mirrors that: scans produce node
//! bindings, `Expand` follows adjacency, filters check labels, properties
//! and general predicates, and `PathBind` materializes named paths.

use cypher_ast::expr::Expr;
use cypher_ast::pattern::Dir;
use std::fmt;

/// Where a step's output column comes from / goes to. Columns whose name
/// starts with a space are *hidden*: they carry anonymous pattern elements
/// and bookkeeping, and are projected away when the clause finishes.
pub type Col = String;

/// One step of a `MATCH` pipeline. Steps are applied in order, each
/// transforming the stream of row batches (morsel-driven, a
/// [`crate::ops::RowBatch`] at a time).
#[derive(Clone, Debug, PartialEq)]
pub enum PlanStep {
    /// Bind `var` to every node of the graph.
    AllNodesScan {
        /// Output column.
        var: Col,
    },
    /// Bind `var` to every node with the given label, via the label
    /// secondary index.
    NodeIndexScan {
        /// Output column.
        var: Col,
        /// The label narrowing the scan.
        label: String,
    },
    /// Bind `var` to the nodes whose property `key` equals the constant
    /// `value`, seeking the exact-match property index (paper Section 5:
    /// "search optimizations through indexing of node data"). With a
    /// `label` the composite `(label, key, value)` index answers the seek
    /// directly; without one the key-only index is used.
    PropertyIndexSeek {
        /// Output column.
        var: Col,
        /// The label of the composite index used, if any.
        label: Option<String>,
        /// The indexed property key.
        key: String,
        /// The constant value expression (literal or parameter).
        value: Expr,
    },
    /// Bind `var` to every relationship of the graph (used only by the
    /// cartesian baseline plans of experiment E17).
    RelScan {
        /// Output column.
        var: Col,
    },
    /// The start node is already bound by the driving table; no-op marker
    /// kept for EXPLAIN readability.
    Argument {
        /// The pre-bound column.
        var: Col,
    },
    /// Follow adjacency from `from`, binding `rel` and `to`.
    ///
    /// * single-hop (`lo == hi == 1`, `single == true`): `rel` is bound to
    ///   the relationship itself;
    /// * variable-length: `rel` is bound to the list of traversed
    ///   relationships, with `lo..=hi` hops (`hi == u64::MAX` for `∞`).
    ///
    /// If `to` (or `rel`) is already bound in the incoming schema the step
    /// degenerates to an expand-into (join filter). `exclude` lists the
    /// relationship columns already bound within this `MATCH`, enforcing
    /// relationship isomorphism positionally.
    Expand {
        /// Source node column (must be bound).
        from: Col,
        /// Relationship (or relationship-list) output column.
        rel: Col,
        /// Target node output column.
        to: Col,
        /// Pattern direction, as seen from `from`.
        dir: Dir,
        /// Admissible relationship types (empty = any).
        types: Vec<String>,
        /// Minimum hop count.
        lo: u64,
        /// Maximum hop count (`u64::MAX` = unbounded).
        hi: u64,
        /// True for the `I = nil` single-relationship form.
        single: bool,
        /// True when the planner walks this step right-to-left (the anchor
        /// sits at or beyond the pattern's right end). `dir` is already
        /// flipped accordingly; variable-length steps must additionally
        /// reverse the traversed relationship list so `rel` binds it in
        /// *pattern* order (left to right, as the formal semantics and
        /// `ProjectPath` both require).
        reversed: bool,
        /// Relationship columns that this step's matches must not reuse.
        exclude: Vec<Col>,
        /// Per-hop relationship property conditions (variable-length
        /// patterns check these on every traversed relationship;
        /// single-hop conditions are emitted as a separate `FilterProps`).
        props: Vec<(String, Expr)>,
    },
    /// Worst-case-optimal closing step for cyclic patterns: bind `to` to
    /// every node adjacent to **all** of the guards' already-bound `from`
    /// nodes, by a leapfrog intersection of their sorted adjacency lists
    /// (see `cypher_graph::adjacency`). One output row is emitted per
    /// combination of admissible relationships across the guards, so the
    /// step is a bag-semantics join, not a set intersection.
    MultiwayIntersect {
        /// Target node output column (unbound in the incoming schema).
        to: Col,
        /// The pattern edges being closed, one per already-bound
        /// neighbour. At least two (a single guard is an `Expand`).
        guards: Vec<IntersectGuard>,
        /// Labels `to` must carry, checked inline during intersection.
        labels: Vec<String>,
        /// Relationship columns bound earlier in this `MATCH` that the
        /// guards' matches must not reuse (relationship isomorphism).
        exclude: Vec<Col>,
    },
    /// Keep rows where the node in `var` has all the labels.
    FilterLabels {
        /// Node column.
        var: Col,
        /// Required labels.
        labels: Vec<String>,
    },
    /// Keep rows where the entity in `var` has each property equal to the
    /// expression's value (pattern property maps).
    FilterProps {
        /// Node or relationship column.
        var: Col,
        /// `key = expr` requirements.
        props: Vec<(String, Expr)>,
    },
    /// Keep rows where both endpoint columns agree with the relationship
    /// column (cartesian baseline only).
    FilterEndpoints {
        /// Relationship column.
        rel: Col,
        /// Source-side node column.
        from: Col,
        /// Target-side node column.
        to: Col,
        /// Direction.
        dir: Dir,
        /// Admissible types (empty = any).
        types: Vec<String>,
        /// Relationship columns that must differ from `rel`.
        exclude: Vec<Col>,
    },
    /// Keep rows where a general predicate is `true` (the `WHERE` of the
    /// clause).
    FilterExpr {
        /// The predicate.
        pred: Expr,
    },
    /// Materialize a named path (`π/a`) from its bound elements.
    PathBind {
        /// Output column for the path value.
        var: Col,
        /// The alternating element columns.
        elements: Vec<PathElem>,
    },
}

/// One edge closed by a [`PlanStep::MultiwayIntersect`]: the bound node
/// it connects, the relationship column it binds, and the admissibility
/// conditions of the pattern edge.
#[derive(Clone, Debug, PartialEq)]
pub struct IntersectGuard {
    /// Already-bound node column (the pattern neighbour).
    pub from: Col,
    /// Relationship output column this guard binds.
    pub rel: Col,
    /// Direction as seen from `from` (towards the intersected node).
    pub dir: Dir,
    /// Admissible relationship types (empty = any).
    pub types: Vec<String>,
    /// Relationship property conditions (`key = expr`), checked inline.
    pub props: Vec<(String, Expr)>,
}

impl PlanStep {
    /// True for the *source* steps — the scans and seeks that multiply the
    /// driving table by a materialized item list (`AllNodesScan`,
    /// `NodeIndexScan`, `PropertyIndexSeek`, `RelScan`). Sources are where
    /// the morsel-driven executor injects parallelism: their item list is
    /// partitioned into morsels and dispatched across the worker pool (see
    /// [`crate::ops::run_plan`]).
    pub fn is_source(&self) -> bool {
        matches!(
            self,
            PlanStep::AllNodesScan { .. }
                | PlanStep::NodeIndexScan { .. }
                | PlanStep::PropertyIndexSeek { .. }
                | PlanStep::RelScan { .. }
        )
    }
}

/// One element of a named path, referencing columns bound earlier in the
/// pipeline.
#[derive(Clone, Debug, PartialEq)]
pub enum PathElem {
    /// A node column.
    Node(Col),
    /// A single-relationship column.
    Rel(Col),
    /// A relationship-list column (variable-length step).
    RelList(Col),
}

/// The compiled plan for one `MATCH` clause.
#[derive(Clone, Debug, Default)]
pub struct MatchPlan {
    /// The pipeline steps, in execution order.
    pub steps: Vec<PlanStep>,
    /// Estimated output cardinality (cost-model output, for EXPLAIN).
    pub estimated_rows: f64,
    /// The cost model's running estimate *after* each step — one entry
    /// per step, printed on the step's EXPLAIN line and compared against
    /// actual counts by PROFILE. Empty for hand-built plans; `Display`
    /// then omits the per-line annotation.
    pub step_estimates: Vec<f64>,
}

impl fmt::Display for PlanStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanStep::AllNodesScan { var } => write!(f, "AllNodesScan({var})"),
            PlanStep::NodeIndexScan { var, label } => {
                write!(f, "NodeIndexScan({var}:{label})")
            }
            PlanStep::PropertyIndexSeek {
                var,
                label,
                key,
                value,
            } => match label {
                Some(l) => write!(f, "PropertyIndexSeek({var}:{l}.{key} = {value})"),
                None => write!(f, "PropertyIndexSeek({var}.{key} = {value})"),
            },
            PlanStep::RelScan { var } => write!(f, "RelScan({var})"),
            PlanStep::Argument { var } => write!(f, "Argument({var})"),
            PlanStep::Expand {
                from,
                rel,
                to,
                dir,
                types,
                lo,
                hi,
                single,
                ..
            } => {
                let arrow = match dir {
                    Dir::Out => "->",
                    Dir::In => "<-",
                    Dir::Both => "--",
                };
                let t = if types.is_empty() {
                    String::new()
                } else {
                    format!(":{}", types.join("|"))
                };
                let range = if *single {
                    String::new()
                } else if *hi == u64::MAX {
                    format!("*{lo}..")
                } else {
                    format!("*{lo}..{hi}")
                };
                write!(f, "Expand({from}){arrow}[{rel}{t}{range}]({to})")
            }
            PlanStep::MultiwayIntersect {
                to, guards, labels, ..
            } => {
                let target = if labels.is_empty() {
                    to.clone()
                } else {
                    format!("{to}:{}", labels.join(":"))
                };
                let gs: Vec<String> = guards
                    .iter()
                    .map(|g| {
                        let t = if g.types.is_empty() {
                            String::new()
                        } else {
                            format!(":{}", g.types.join("|"))
                        };
                        match g.dir {
                            Dir::Out => format!("({})-[{}{t}]->", g.from, g.rel),
                            Dir::In => format!("({})<-[{}{t}]-", g.from, g.rel),
                            Dir::Both => format!("({})-[{}{t}]-", g.from, g.rel),
                        }
                    })
                    .collect();
                write!(f, "MultiwayIntersect({} ({target}))", gs.join(" & "))
            }
            PlanStep::FilterLabels { var, labels } => {
                write!(f, "Filter({var}:{})", labels.join(":"))
            }
            PlanStep::FilterProps { var, props } => {
                let ks: Vec<&str> = props.iter().map(|(k, _)| k.as_str()).collect();
                write!(f, "Filter({var}.{{{}}})", ks.join(", "))
            }
            PlanStep::FilterEndpoints { rel, from, to, .. } => {
                write!(f, "FilterEndpoints({from})-[{rel}]-({to})")
            }
            PlanStep::FilterExpr { pred } => write!(f, "Filter({pred})"),
            PlanStep::PathBind { var, .. } => write!(f, "ProjectPath({var})"),
        }
    }
}

impl fmt::Display for MatchPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, s) in self.steps.iter().enumerate() {
            match self.step_estimates.get(i) {
                Some(e) => writeln!(f, "{:indent$}{s}  (est rows: {e:.1})", "", indent = i)?,
                None => writeln!(f, "{:indent$}{s}", "", indent = i)?,
            }
        }
        write!(f, "(estimated rows: {:.1})", self.estimated_rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let s = PlanStep::Expand {
            from: "a".into(),
            rel: "r".into(),
            to: "b".into(),
            dir: Dir::Out,
            types: vec!["KNOWS".into()],
            lo: 1,
            hi: 1,
            single: true,
            reversed: false,
            exclude: vec![],
            props: vec![],
        };
        assert_eq!(s.to_string(), "Expand(a)->[r:KNOWS](b)");
        let v = PlanStep::Expand {
            from: "a".into(),
            rel: " anon0".into(),
            to: "b".into(),
            dir: Dir::In,
            types: vec![],
            lo: 1,
            hi: u64::MAX,
            single: false,
            reversed: true,
            exclude: vec![],
            props: vec![],
        };
        assert_eq!(v.to_string(), "Expand(a)<-[ anon0*1..](b)");
        assert_eq!(
            PlanStep::NodeIndexScan {
                var: "r".into(),
                label: "Researcher".into()
            }
            .to_string(),
            "NodeIndexScan(r:Researcher)"
        );
        assert_eq!(
            PlanStep::PropertyIndexSeek {
                var: "n".into(),
                label: Some("Person".into()),
                key: "name".into(),
                value: Expr::var("x".to_string()),
            }
            .to_string(),
            "PropertyIndexSeek(n:Person.name = x)"
        );
        let m = PlanStep::MultiwayIntersect {
            to: "c".into(),
            guards: vec![
                IntersectGuard {
                    from: "a".into(),
                    rel: "r1".into(),
                    dir: Dir::Out,
                    types: vec!["T".into()],
                    props: vec![],
                },
                IntersectGuard {
                    from: "b".into(),
                    rel: "r2".into(),
                    dir: Dir::Both,
                    types: vec![],
                    props: vec![],
                },
            ],
            labels: vec!["L".into()],
            exclude: vec![],
        };
        assert_eq!(
            m.to_string(),
            "MultiwayIntersect((a)-[r1:T]-> & (b)-[r2]- (c:L))"
        );
        assert!(!m.is_source());
    }
}
