//! The clause-by-clause executor.
//!
//! Reading clauses (`MATCH`, `OPTIONAL MATCH`) are compiled by the planner
//! and run through the batch (morsel-driven) pipeline of [`crate::ops`],
//! parallelized across a worker pool when [`EngineConfig::num_threads`]
//! allows. Mid-query `WITH` and `UNWIND` reuse the reference semantics of
//! [`cypher_core`] directly (they are pipeline *breakers*: the per-morsel
//! partial results are merged — in morsel order — into one table at these
//! boundaries). The **final** `MATCH … RETURN` of an aggregating,
//! `DISTINCT` or `ORDER BY … LIMIT` query is instead *fused* through
//! `pushdown`: workers fold partial aggregate / top-k states and
//! no merged table ever materializes. Updating clauses are dispatched to
//! [`crate::update`].

use crate::cache::{plan_match_memo, MemoSite, PlanMemo};
use crate::ops::{run_plan, run_plan_profiled, ExecOptions, DEFAULT_MORSEL_SIZE};
use crate::plan::PlanStep;
use crate::planner::{plan_match, PlannedMatch, PlannerMode, PlannerOptions, WcoJoinMode};
use crate::pushdown::{ret_pushdown, try_fused_match_projection, FusedOutcome, PushdownKind};
use crate::update;
use cypher_ast::expr::Expr;
use cypher_ast::pattern::PathPattern;
use cypher_ast::query::{Clause, Query, Return, SingleQuery};
use cypher_core::clauses::{apply_projection, apply_unwind, apply_where};
use cypher_core::error::{err, EvalError};
use cypher_core::morphism::Morphism;
use cypher_core::project::ProjectionPlan;
use cypher_core::table::{Record, Schema, Table};
use cypher_core::{EvalContext, MatchConfig, Params};
use cypher_graph::{PropertyGraph, Value, ViewRef};

/// Engine configuration: pattern-matching semantics, the plan strategy,
/// which secondary indexes the planner may exploit, the batch/thread
/// knobs of the morsel-driven runtime, and the durability knobs the
/// `Database` facade consumes.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Morphism mode and variable-length safeguards (shared with the
    /// reference evaluator).
    pub match_config: MatchConfig,
    /// Expand-based plans vs the cartesian baseline.
    pub planner_mode: PlannerMode,
    /// Allow `NodeIndexScan` over the label index (on by default).
    /// Turning an index off changes plans, never results.
    pub use_label_index: bool,
    /// Allow `PropertyIndexSeek` over the exact-match property indexes
    /// (on by default).
    pub use_property_index: bool,
    /// Worst-case-optimal join policy for cyclic `MATCH` patterns.
    /// Defaults to [`WcoJoinMode::Auto`] (cost-based); override with
    /// `CYPHER_WCO_JOIN` (`off` / `auto` / `force`). Never changes
    /// results — only whether cycle-closing variables are bound by a
    /// `MultiwayIntersect` or an `Expand` chain.
    pub wco_join: WcoJoinMode,
    /// Rows per batch (morsel) flowing between operators, and the
    /// granularity at which parallel workers claim scan work. Defaults to
    /// 1024 (override with the `CYPHER_MORSEL_SIZE` environment variable;
    /// clamped to ≥ 1 at execution time).
    pub morsel_size: usize,
    /// Worker threads for morsel-parallel `MATCH` pipelines. `1` (the
    /// default; override with `CYPHER_NUM_THREADS`) runs the classic
    /// single-threaded executor with zero dispatch overhead and
    /// reproduces its output bit-for-bit. Any higher count produces the
    /// *same row sequence* — morsels are merged in claim-index order, so
    /// results never depend on thread scheduling.
    pub num_threads: usize,
    /// Data directory for the durable storage engine. `None` (the default
    /// when the `CYPHER_DATA_DIR` environment variable is unset) keeps the
    /// graph purely in memory. The engine's executors ignore this knob —
    /// the `cypher::Database` facade consumes it to open a write-ahead
    /// log + snapshot store and commit each query's mutations as one
    /// atomic batch.
    pub persistence: Option<std::path::PathBuf>,
    /// Snapshot-compaction trigger: when the WAL grows beyond this many
    /// bytes, the `Database` facade checkpoints (snapshot + WAL truncate).
    /// Defaults to 4 MiB; override with `CYPHER_WAL_COMPACT_BYTES`.
    pub wal_compact_bytes: u64,
    /// Whether the final aggregating/`DISTINCT`/`ORDER BY … LIMIT`
    /// projection is pushed down into the morsel pipeline (partial
    /// aggregation / top-k). Defaults to [`PartialAggMode::Auto`];
    /// override with `CYPHER_PARTIAL_AGG` (`off` / `auto` / `force`).
    /// Never changes results — only where the folding happens.
    pub partial_agg: PartialAggMode,
    /// Capacity of the `cypher::Database` parse+plan LRU cache (entries);
    /// `0` disables caching. Defaults to 128; override with
    /// `CYPHER_PLAN_CACHE_SIZE`. The stateless `run`/`run_read` helpers
    /// ignore this knob — only the `Database` facade holds a cache.
    pub plan_cache_size: usize,
    /// Whether the `Database` write path coalesces concurrently-arriving
    /// transactions into one WAL seal + one published version (group
    /// commit). On by default; override with `CYPHER_GROUP_COMMIT`
    /// (`on` / `off`). Off, every transaction seals its own group of
    /// one — same protocol, no coalescing. Never changes per-transaction
    /// semantics, only how many fsyncs a burst of writers pays.
    pub group_commit: bool,
    /// When the durable write path forces sealed groups to stable
    /// storage. Defaults to [`FsyncMode::Os`]; override with
    /// `CYPHER_FSYNC_MODE` (`os` / `sync` / `pipelined`).
    pub fsync_mode: FsyncMode,
    /// Slow-query threshold in milliseconds: the `cypher::Database`
    /// facade emits one structured log entry for every query whose wall
    /// time meets or exceeds it (`0` logs everything). `None` (the
    /// default when `CYPHER_SLOW_QUERY_MS` is unset) disables the log.
    pub slow_query_ms: Option<u64>,
    /// Whether the engine and the `Database` facade record metrics at
    /// all. On by default; override with `CYPHER_METRICS` (`on` / `off`).
    /// Off, every counter site is skipped — the hot path carries no
    /// atomic traffic.
    pub metrics_enabled: bool,
    /// Executor counters ([`crate::ops::ExecMetrics`]) shared by the
    /// owning `Database`, recorded once per pipeline run. `None` (the
    /// default) records nothing; the field never enters the plan-cache
    /// fingerprint.
    pub exec_metrics: Option<std::sync::Arc<crate::ops::ExecMetrics>>,
}

/// Default WAL size (bytes) beyond which a snapshot is taken.
pub const DEFAULT_WAL_COMPACT_BYTES: u64 = 4 * 1024 * 1024;

/// Default capacity of the `Database` parse+plan cache.
pub const DEFAULT_PLAN_CACHE_SIZE: usize = 128;

/// When the executor pushes the final projection into the morsel workers.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum PartialAggMode {
    /// Never push down: always materialize the match output and project
    /// it sequentially (the pre-pushdown behaviour; differential
    /// baseline).
    Off,
    /// Push down whenever the final clause qualifies; dispatch to the
    /// worker pool under the same work-size gate as the scan pipeline.
    #[default]
    Auto,
    /// Like `Auto`, but parallel dispatch engages regardless of the
    /// work-size gate — every qualifying query exercises the partial
    /// merge path even on tiny inputs (CI's worst-case-interleaving
    /// matrix cell).
    Force,
}

/// When (and where) the durable write path fsyncs a sealed commit group.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum FsyncMode {
    /// Never fsync per group: sealed bytes sit in the kernel page cache
    /// (process-crash durable, not power-loss durable) until a
    /// checkpoint or close forces them down. The fastest mode and the
    /// pre-group-commit behaviour.
    #[default]
    Os,
    /// fsync every group before its version is published and its
    /// transactions are acknowledged — power-loss durability, paid for
    /// inline by the sealing leader.
    Sync,
    /// Like `Sync`, but the fsync runs on a background scheduler thread
    /// through a duplicate file handle: the leader seals group N+1 while
    /// group N flushes, overlapping WAL append with fsync latency.
    /// Publish/acknowledge still happen only after the fsync succeeds.
    Pipelined,
}

/// One malformed environment override, reported instead of being
/// silently replaced by the built-in default. Collected once at first
/// config construction — inspect via [`env_config_issues`]; each issue
/// is also printed to stderr once.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvConfigIssue {
    /// The environment variable (e.g. `CYPHER_MORSEL_SIZE`).
    pub var: &'static str,
    /// The rejected value, verbatim.
    pub value: String,
    /// Why it was rejected and what was used instead.
    pub message: String,
}

impl std::fmt::Display for EnvConfigIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}={:?}: {}", self.var, self.value, self.message)
    }
}

/// Reads the execution defaults from the environment, once. The CI matrix
/// uses these hooks to run the whole suite under degenerate morsels and a
/// multi-threaded pool without touching any test.
struct EnvDefaults {
    morsel_size: usize,
    num_threads: usize,
    persistence: Option<std::path::PathBuf>,
    wal_compact_bytes: u64,
    partial_agg: PartialAggMode,
    wco_join: WcoJoinMode,
    plan_cache_size: usize,
    group_commit: bool,
    fsync_mode: FsyncMode,
    slow_query_ms: Option<u64>,
    metrics_enabled: bool,
    issues: Vec<EnvConfigIssue>,
}

/// Parses the `CYPHER_*` execution overrides from `get` (an environment
/// lookup, injectable for tests; `get_path` serves `CYPHER_DATA_DIR`,
/// which is a filesystem path and must not require UTF-8). An **unset
/// or empty** variable silently keeps the default; anything else must
/// parse, and a value that does not is reported as an
/// [`EnvConfigIssue`] alongside the default that was used in its place
/// — malformed configuration is never swallowed.
fn parse_env_defaults(
    get: &dyn Fn(&str) -> Option<String>,
    get_path: &dyn Fn(&str) -> Option<std::ffi::OsString>,
) -> EnvDefaults {
    let mut issues: Vec<EnvConfigIssue> = Vec::new();
    let mut parse_int = |var: &'static str, min: u64, fallback: u64| -> u64 {
        match get(var).filter(|s| !s.is_empty()) {
            None => fallback,
            Some(raw) => match raw.trim().parse::<u64>() {
                Ok(v) if v >= min => v,
                Ok(v) => {
                    issues.push(EnvConfigIssue {
                        var,
                        value: raw,
                        message: format!(
                            "must be at least {min}, got {v}; using default {fallback}"
                        ),
                    });
                    fallback
                }
                Err(_) => {
                    issues.push(EnvConfigIssue {
                        var,
                        value: raw,
                        message: format!("not a valid integer; using default {fallback}"),
                    });
                    fallback
                }
            },
        }
    };
    let morsel_size = parse_int("CYPHER_MORSEL_SIZE", 1, DEFAULT_MORSEL_SIZE as u64) as usize;
    let num_threads = parse_int("CYPHER_NUM_THREADS", 1, 1) as usize;
    let wal_compact_bytes = parse_int("CYPHER_WAL_COMPACT_BYTES", 1, DEFAULT_WAL_COMPACT_BYTES);
    // 0 is meaningful here: it disables the plan cache.
    let plan_cache_size =
        parse_int("CYPHER_PLAN_CACHE_SIZE", 0, DEFAULT_PLAN_CACHE_SIZE as u64) as usize;
    let partial_agg = match get("CYPHER_PARTIAL_AGG").filter(|s| !s.is_empty()) {
        None => PartialAggMode::default(),
        Some(raw) => match raw.trim().to_ascii_lowercase().as_str() {
            "off" | "0" | "false" | "no" => PartialAggMode::Off,
            "force" => PartialAggMode::Force,
            "auto" | "on" | "1" | "true" | "yes" => PartialAggMode::Auto,
            _ => {
                issues.push(EnvConfigIssue {
                    var: "CYPHER_PARTIAL_AGG",
                    value: raw,
                    message: "expected off/auto/force; using default auto".to_string(),
                });
                PartialAggMode::Auto
            }
        },
    };
    let wco_join = match get("CYPHER_WCO_JOIN").filter(|s| !s.is_empty()) {
        None => WcoJoinMode::default(),
        Some(raw) => match raw.trim().to_ascii_lowercase().as_str() {
            "off" | "0" | "false" | "no" => WcoJoinMode::Off,
            "force" => WcoJoinMode::Force,
            "auto" | "on" | "1" | "true" | "yes" => WcoJoinMode::Auto,
            _ => {
                issues.push(EnvConfigIssue {
                    var: "CYPHER_WCO_JOIN",
                    value: raw,
                    message: "expected off/auto/force; using default auto".to_string(),
                });
                WcoJoinMode::Auto
            }
        },
    };
    let group_commit = match get("CYPHER_GROUP_COMMIT").filter(|s| !s.is_empty()) {
        None => true,
        Some(raw) => match raw.trim().to_ascii_lowercase().as_str() {
            "off" | "0" | "false" | "no" => false,
            "on" | "1" | "true" | "yes" => true,
            _ => {
                issues.push(EnvConfigIssue {
                    var: "CYPHER_GROUP_COMMIT",
                    value: raw,
                    message: "expected on/off; using default on".to_string(),
                });
                true
            }
        },
    };
    let fsync_mode = match get("CYPHER_FSYNC_MODE").filter(|s| !s.is_empty()) {
        None => FsyncMode::default(),
        Some(raw) => match raw.trim().to_ascii_lowercase().as_str() {
            "os" => FsyncMode::Os,
            "sync" => FsyncMode::Sync,
            "pipelined" | "pipeline" => FsyncMode::Pipelined,
            _ => {
                issues.push(EnvConfigIssue {
                    var: "CYPHER_FSYNC_MODE",
                    value: raw,
                    message: "expected os/sync/pipelined; using default os".to_string(),
                });
                FsyncMode::Os
            }
        },
    };
    let slow_query_ms = match get("CYPHER_SLOW_QUERY_MS").filter(|s| !s.is_empty()) {
        None => None,
        Some(raw) => match raw.trim().parse::<u64>() {
            Ok(ms) => Some(ms),
            Err(_) => {
                issues.push(EnvConfigIssue {
                    var: "CYPHER_SLOW_QUERY_MS",
                    value: raw,
                    message: "not a valid integer; slow-query log stays disabled".to_string(),
                });
                None
            }
        },
    };
    let metrics_enabled = match get("CYPHER_METRICS").filter(|s| !s.is_empty()) {
        None => true,
        Some(raw) => match raw.trim().to_ascii_lowercase().as_str() {
            "off" | "0" | "false" | "no" => false,
            "on" | "1" | "true" | "yes" => true,
            _ => {
                issues.push(EnvConfigIssue {
                    var: "CYPHER_METRICS",
                    value: raw,
                    message: "expected on/off; using default on".to_string(),
                });
                true
            }
        },
    };
    let persistence = get_path("CYPHER_DATA_DIR")
        .filter(|s| !s.is_empty())
        .map(std::path::PathBuf::from);
    EnvDefaults {
        morsel_size,
        num_threads,
        persistence,
        wal_compact_bytes,
        partial_agg,
        wco_join,
        plan_cache_size,
        group_commit,
        fsync_mode,
        slow_query_ms,
        metrics_enabled,
        issues,
    }
}

fn env_exec_defaults() -> &'static EnvDefaults {
    static CACHE: std::sync::OnceLock<EnvDefaults> = std::sync::OnceLock::new();
    CACHE.get_or_init(|| {
        let defaults = parse_env_defaults(
            &|name| match std::env::var(name) {
                Ok(s) => Some(s),
                Err(std::env::VarError::NotPresent) => None,
                // A non-UTF-8 value cannot be a valid integer/mode
                // token; surface it through the normal malformed-value
                // path instead of silently treating it as unset.
                Err(std::env::VarError::NotUnicode(_)) => Some("<non-unicode>".to_string()),
            },
            // Paths are OS strings, not UTF-8: read them losslessly.
            &|name| std::env::var_os(name),
        );
        for issue in &defaults.issues {
            eprintln!("warning: ignoring environment override {issue}");
        }
        defaults
    })
}

/// The malformed `CYPHER_*` environment overrides found when the
/// execution defaults were first read (empty when every override was
/// well-formed). Each was replaced by its built-in default and printed
/// to stderr once; this accessor lets embedders surface them their own
/// way (or fail hard on them).
pub fn env_config_issues() -> &'static [EnvConfigIssue] {
    &env_exec_defaults().issues
}

impl Default for EngineConfig {
    fn default() -> Self {
        let env = env_exec_defaults();
        EngineConfig {
            match_config: MatchConfig::default(),
            planner_mode: PlannerMode::default(),
            use_label_index: true,
            use_property_index: true,
            wco_join: env.wco_join,
            morsel_size: env.morsel_size,
            num_threads: env.num_threads,
            persistence: env.persistence.clone(),
            wal_compact_bytes: env.wal_compact_bytes,
            partial_agg: env.partial_agg,
            plan_cache_size: env.plan_cache_size,
            group_commit: env.group_commit,
            fsync_mode: env.fsync_mode,
            slow_query_ms: env.slow_query_ms,
            metrics_enabled: env.metrics_enabled,
            exec_metrics: None,
        }
    }
}

impl EngineConfig {
    /// The planner-facing slice of this configuration.
    pub fn planner_options(&self) -> PlannerOptions {
        PlannerOptions {
            mode: self.planner_mode,
            use_label_index: self.use_label_index,
            use_property_index: self.use_property_index,
            wco_join: self.wco_join,
        }
    }

    /// The runtime-facing slice of this configuration.
    pub fn exec_options(&self) -> ExecOptions {
        ExecOptions {
            morsel_size: self.morsel_size.max(1),
            num_threads: self.num_threads.max(1),
        }
    }

    /// This configuration with both index families disabled — every
    /// `MATCH` anchor becomes a scan plus filters. Useful as a planner
    /// baseline and in differential tests.
    pub fn without_indexes(self) -> Self {
        EngineConfig {
            use_label_index: false,
            use_property_index: false,
            ..self
        }
    }

    /// This configuration with the given worker-thread count.
    pub fn with_threads(self, num_threads: usize) -> Self {
        EngineConfig {
            num_threads,
            ..self
        }
    }

    /// This configuration with the given morsel size.
    pub fn with_morsel_size(self, morsel_size: usize) -> Self {
        EngineConfig {
            morsel_size,
            ..self
        }
    }

    /// This configuration with the given partial-aggregation mode.
    pub fn with_partial_agg(self, partial_agg: PartialAggMode) -> Self {
        EngineConfig {
            partial_agg,
            ..self
        }
    }

    /// This configuration with the given worst-case-optimal join mode.
    pub fn with_wco_join(self, wco_join: WcoJoinMode) -> Self {
        EngineConfig { wco_join, ..self }
    }

    /// This configuration with the given plan-cache capacity (0 disables).
    pub fn with_plan_cache_size(self, plan_cache_size: usize) -> Self {
        EngineConfig {
            plan_cache_size,
            ..self
        }
    }

    /// This configuration with group commit forced on or off.
    pub fn with_group_commit(self, group_commit: bool) -> Self {
        EngineConfig {
            group_commit,
            ..self
        }
    }

    /// This configuration with the given fsync scheduling mode.
    pub fn with_fsync_mode(self, fsync_mode: FsyncMode) -> Self {
        EngineConfig { fsync_mode, ..self }
    }

    /// This configuration with the given slow-query threshold
    /// (`None` disables the slow-query log).
    pub fn with_slow_query_ms(self, slow_query_ms: Option<u64>) -> Self {
        EngineConfig {
            slow_query_ms,
            ..self
        }
    }

    /// This configuration with metrics recording forced on or off.
    pub fn with_metrics(self, metrics_enabled: bool) -> Self {
        EngineConfig {
            metrics_enabled,
            ..self
        }
    }
}

/// One operator line of a [`QueryProfile`]: the planned step, what the
/// cost model predicted for it, and what actually happened.
#[derive(Clone, Debug)]
pub struct OpProfile {
    /// The rendered plan step (same text as EXPLAIN).
    pub operator: String,
    /// The cost model's estimated output cardinality for this step.
    pub estimated_rows: f64,
    /// Rows the operator actually produced, summed across all morsels.
    pub rows: u64,
    /// Batches the operator emitted, summed across all morsels.
    pub batches: u64,
    /// Wall time spent *in* this operator (exclusive of the operators
    /// beneath it), summed across all workers, in microseconds.
    pub time_us: u64,
    /// Galloping probes the operator's intersection kernel performed
    /// (`MultiwayIntersect` only; 0 elsewhere).
    pub probes: u64,
    /// Summed intersection lengths — candidate nodes adjacent to every
    /// guard (`MultiwayIntersect` only; 0 elsewhere).
    pub isect: u64,
}

/// The measured execution of one `MATCH` clause.
#[derive(Clone, Debug)]
pub struct ClauseProfile {
    /// `"MATCH"` or `"OPTIONAL MATCH"`.
    pub label: String,
    /// Per-operator measurements, in pipeline order. Empty when the
    /// clause was delegated to the reference matcher (node-isomorphism
    /// mode), which has no operator pipeline to instrument.
    pub operators: Vec<OpProfile>,
    /// Morsels executed (1 for a sequential run).
    pub morsels: u64,
    /// Whether the clause was dispatched across the worker pool.
    pub parallel: bool,
}

/// The result of `PROFILE`-ing a query: per-clause, per-operator actuals
/// next to the planner's estimates. Produced by [`profile_read`];
/// rendered with [`QueryProfile::render`].
#[derive(Clone, Debug, Default)]
pub struct QueryProfile {
    /// One entry per executed `MATCH` clause, in execution order
    /// (including clauses on both sides of a `UNION`).
    pub clauses: Vec<ClauseProfile>,
    /// Rows of the final result.
    pub rows: u64,
    /// End-to-end wall time, in microseconds.
    pub elapsed_us: u64,
}

impl QueryProfile {
    /// Renders the annotated plan tree: the EXPLAIN layout with
    /// `(est rows / rows / batches / time)` appended to every operator.
    pub fn render(&self) -> String {
        let mut s = String::from("PROFILE\n");
        for c in &self.clauses {
            if c.parallel {
                s.push_str(&format!(
                    "{} plan ({} morsels, parallel):\n",
                    c.label, c.morsels
                ));
            } else {
                s.push_str(&format!("{} plan:\n", c.label));
            }
            if c.operators.is_empty() {
                s.push_str("(reference matcher: no operator pipeline)\n");
            }
            for (i, op) in c.operators.iter().enumerate() {
                // Intersection kernel counters only where they exist, so
                // every other operator line keeps its exact shape.
                let kernel = if op.probes != 0 || op.isect != 0 {
                    format!(", probes: {}, isect: {}", op.probes, op.isect)
                } else {
                    String::new()
                };
                s.push_str(&format!(
                    "{:indent$}{}  (est rows: {:.1}, rows: {}, batches: {}, time: {}us{})\n",
                    "",
                    op.operator,
                    op.estimated_rows,
                    op.rows,
                    op.batches,
                    op.time_us,
                    kernel,
                    indent = i
                ));
            }
        }
        s.push_str(&format!(
            "(returned {} rows in {}us)",
            self.rows, self.elapsed_us
        ));
        s
    }
}

/// Executes a read-only query with per-operator instrumentation and
/// returns the result table alongside its [`QueryProfile`].
///
/// The result rows are **bit-identical** to [`execute_read`] under the
/// same configuration: profiling reuses the planner and the pipeline
/// executor verbatim (it only wraps operators in measuring shims) and
/// bypasses the fused-projection fast path, whose own contract is
/// result-equality with the classic path.
pub fn profile_read<'a>(
    view: impl Into<ViewRef<'a>>,
    q: &Query,
    params: &Params,
    cfg: &EngineConfig,
) -> Result<(Table, QueryProfile), EvalError> {
    let view = view.into();
    let t0 = std::time::Instant::now();
    let mut clauses: Vec<ClauseProfile> = Vec::new();
    let mut branch = 0usize;
    let t = exec_query_read(view, q, params, cfg, None, &mut branch, Some(&mut clauses))?;
    let rows = t.len() as u64;
    Ok((
        t,
        QueryProfile {
            clauses,
            rows,
            elapsed_us: t0.elapsed().as_micros() as u64,
        },
    ))
}

/// Executes a read-only query against a frozen snapshot. Updating
/// clauses are rejected; use [`execute`] for those.
///
/// The whole read path takes a [`ViewRef`]: a pinned
/// [`cypher_graph::GraphView`] from a versioned session, or a plain
/// `&PropertyGraph` borrow for single-owner callers — both convert.
pub fn execute_read<'a>(
    view: impl Into<ViewRef<'a>>,
    q: &Query,
    params: &Params,
    cfg: &EngineConfig,
) -> Result<Table, EvalError> {
    execute_read_cached(view, q, params, cfg, None)
}

/// [`execute_read`] with an optional [`PlanMemo`]: `MATCH` clauses reuse
/// plans the memo already holds and record the plans they compile.
pub fn execute_read_cached<'a>(
    view: impl Into<ViewRef<'a>>,
    q: &Query,
    params: &Params,
    cfg: &EngineConfig,
    memo: Option<&PlanMemo>,
) -> Result<Table, EvalError> {
    let mut branch = 0usize;
    exec_query_read(view.into(), q, params, cfg, memo, &mut branch, None)
}

#[allow(clippy::too_many_arguments)]
fn exec_query_read(
    view: ViewRef<'_>,
    q: &Query,
    params: &Params,
    cfg: &EngineConfig,
    memo: Option<&PlanMemo>,
    branch: &mut usize,
    mut profile: Option<&mut Vec<ClauseProfile>>,
) -> Result<Table, EvalError> {
    match q {
        Query::Single(sq) => {
            let b = *branch;
            *branch += 1;
            exec_single_read(view, sq, params, cfg, Table::unit(), memo, b, profile)
        }
        Query::Union { all, left, right } => {
            let l = exec_query_read(
                view,
                left,
                params,
                cfg,
                memo,
                branch,
                profile.as_deref_mut(),
            )?;
            let r = exec_query_read(view, right, params, cfg, memo, branch, profile)?;
            union_tables(l, r, *all)
        }
    }
}

/// Executes any query, including updating clauses, against a mutable
/// graph. Returns the final table (empty, with no fields, for update-only
/// queries).
pub fn execute(
    graph: &mut PropertyGraph,
    q: &Query,
    params: &Params,
    cfg: &EngineConfig,
) -> Result<Table, EvalError> {
    execute_cached(graph, q, params, cfg, None)
}

/// [`execute`] with an optional [`PlanMemo`] (see
/// [`execute_read_cached`]).
pub fn execute_cached(
    graph: &mut PropertyGraph,
    q: &Query,
    params: &Params,
    cfg: &EngineConfig,
    memo: Option<&PlanMemo>,
) -> Result<Table, EvalError> {
    let mut branch = 0usize;
    exec_query(graph, q, params, cfg, memo, &mut branch)
}

fn exec_query(
    graph: &mut PropertyGraph,
    q: &Query,
    params: &Params,
    cfg: &EngineConfig,
    memo: Option<&PlanMemo>,
    branch: &mut usize,
) -> Result<Table, EvalError> {
    match q {
        Query::Single(sq) => {
            let b = *branch;
            *branch += 1;
            exec_single(graph, sq, params, cfg, Table::unit(), memo, b)
        }
        Query::Union { all, left, right } => {
            let l = exec_query(graph, left, params, cfg, memo, branch)?;
            let r = exec_query(graph, right, params, cfg, memo, branch)?;
            union_tables(l, r, *all)
        }
    }
}

fn union_tables(l: Table, r: Table, all: bool) -> Result<Table, EvalError> {
    if !l.schema().same_fields(r.schema()) {
        return err(format!(
            "UNION requires identical field sets: {:?} vs {:?}",
            l.schema().names(),
            r.schema().names()
        ));
    }
    let u = l.bag_union(r);
    Ok(if all { u } else { u.dedup() })
}

/// True when the final-`MATCH`-plus-`RETURN` of a query may take the
/// fused (pushed-down) path at all: pushdown enabled, the pipeline
/// executor in charge (node isomorphism delegates matching to the
/// reference matcher), no `RETURN GRAPH`, and a qualifying projection.
fn fused_applicable(cfg: &EngineConfig, sq: &SingleQuery, ret: &Return) -> bool {
    cfg.partial_agg != PartialAggMode::Off
        && cfg.match_config.morphism != Morphism::NodeIsomorphism
        && sq.ret_graph.is_none()
        && ret_pushdown(ret).is_some()
}

/// Runs the final `MATCH` clause fused with the query's `RETURN`. On
/// `Done` the returned table is the query's final output.
fn exec_fused_final(
    view: ViewRef<'_>,
    params: &Params,
    cfg: &EngineConfig,
    memo: Option<(&PlanMemo, MemoSite)>,
    patterns: &[PathPattern],
    where_: Option<&Expr>,
    ret: &Return,
    t: Table,
) -> FusedOutcome {
    let planned = plan_match_memo(memo, view, table_names(&t), patterns, cfg.planner_options());
    let ctx = EvalContext::new(view.graph(), params).with_config(cfg.match_config);
    try_fused_match_projection(&ctx, cfg, &planned, where_, ret, t)
}

fn table_names(t: &Table) -> &[String] {
    t.schema().names()
}

#[allow(clippy::too_many_arguments)]
fn exec_single_read(
    view: ViewRef<'_>,
    sq: &SingleQuery,
    params: &Params,
    cfg: &EngineConfig,
    mut t: Table,
    memo: Option<&PlanMemo>,
    branch: usize,
    mut profile: Option<&mut Vec<ClauseProfile>>,
) -> Result<Table, EvalError> {
    for (i, clause) in sq.clauses.iter().enumerate() {
        let site = memo.map(|m| (m, (branch, i)));
        // The final MATCH of an aggregating / DISTINCT / top-k query is
        // fused with the RETURN: workers fold partial states instead of
        // materializing the match output. Profiling instruments the
        // classic pipeline, so it skips the fusion (the fused path's own
        // contract is result-equality with the classic one).
        if i + 1 == sq.clauses.len() && profile.is_none() {
            if let (
                Clause::Match {
                    optional: false,
                    patterns,
                    where_,
                },
                Some(ret),
            ) = (clause, &sq.ret)
            {
                if fused_applicable(cfg, sq, ret) {
                    match exec_fused_final(
                        view,
                        params,
                        cfg,
                        site,
                        patterns,
                        where_.as_ref(),
                        ret,
                        t,
                    ) {
                        FusedOutcome::Done(out) => return Ok(out),
                        FusedOutcome::Skipped(orig) => t = orig,
                    }
                }
            }
        }
        t = match clause {
            Clause::Match {
                optional,
                patterns,
                where_,
            } => exec_match_memo(
                view,
                params,
                cfg,
                patterns,
                where_.as_ref(),
                *optional,
                t,
                site,
                profile.as_deref_mut(),
            )?,
            Clause::With { ret, where_ } => {
                let ctx = EvalContext::new(view.graph(), params).with_config(cfg.match_config);
                let projected = apply_projection(&ctx, ret, t)?;
                match where_ {
                    Some(p) => apply_where(&ctx, p, projected)?,
                    None => projected,
                }
            }
            Clause::Unwind { expr, alias } => {
                let ctx = EvalContext::new(view.graph(), params).with_config(cfg.match_config);
                apply_unwind(&ctx, expr, alias, t)?
            }
            Clause::FromGraph { .. } => {
                return err("FROM GRAPH requires a catalog; use the multigraph executor")
            }
            _ => return err("updating clause in a read-only execution"),
        };
    }
    finish_single(view, sq, params, cfg, t)
}

fn exec_single(
    graph: &mut PropertyGraph,
    sq: &SingleQuery,
    params: &Params,
    cfg: &EngineConfig,
    mut t: Table,
    memo: Option<&PlanMemo>,
    branch: usize,
) -> Result<Table, EvalError> {
    for (i, clause) in sq.clauses.iter().enumerate() {
        let site = memo.map(|m| (m, (branch, i)));
        if i + 1 == sq.clauses.len() {
            if let (
                Clause::Match {
                    optional: false,
                    patterns,
                    where_,
                },
                Some(ret),
            ) = (clause, &sq.ret)
            {
                if fused_applicable(cfg, sq, ret) {
                    match exec_fused_final(
                        ViewRef::from(&*graph),
                        params,
                        cfg,
                        site,
                        patterns,
                        where_.as_ref(),
                        ret,
                        t,
                    ) {
                        FusedOutcome::Done(out) => return Ok(out),
                        FusedOutcome::Skipped(orig) => t = orig,
                    }
                }
            }
        }
        t = match clause {
            Clause::Match {
                optional,
                patterns,
                where_,
            } => exec_match_memo(
                ViewRef::from(&*graph),
                params,
                cfg,
                patterns,
                where_.as_ref(),
                *optional,
                t,
                site,
                None,
            )?,
            Clause::With { ret, where_ } => {
                let ctx = EvalContext::new(graph, params).with_config(cfg.match_config);
                let projected = apply_projection(&ctx, ret, t)?;
                match where_ {
                    Some(p) => apply_where(&ctx, p, projected)?,
                    None => projected,
                }
            }
            Clause::Unwind { expr, alias } => {
                let ctx = EvalContext::new(graph, params).with_config(cfg.match_config);
                apply_unwind(&ctx, expr, alias, t)?
            }
            Clause::Create { patterns } => update::exec_create(graph, params, cfg, patterns, t)?,
            Clause::Merge {
                pattern,
                on_create,
                on_match,
            } => update::exec_merge(graph, params, cfg, pattern, on_create, on_match, t)?,
            Clause::Delete { detach, exprs } => {
                update::exec_delete(graph, params, cfg, *detach, exprs, t)?
            }
            Clause::Set { items } => update::exec_set(graph, params, cfg, items, t)?,
            Clause::Remove { items } => update::exec_remove(graph, params, cfg, items, t)?,
            Clause::FromGraph { .. } => {
                return err("FROM GRAPH requires a catalog; use the multigraph executor")
            }
        };
    }
    finish_single(ViewRef::from(&*graph), sq, params, cfg, t)
}

fn finish_single(
    view: ViewRef<'_>,
    sq: &SingleQuery,
    params: &Params,
    cfg: &EngineConfig,
    t: Table,
) -> Result<Table, EvalError> {
    if sq.ret_graph.is_some() {
        return err("RETURN GRAPH requires a catalog; use the multigraph executor");
    }
    match &sq.ret {
        Some(ret) => {
            if ret.star && ret.items.is_empty() && t.schema().is_empty() {
                return err("RETURN * requires at least one field");
            }
            let ctx = EvalContext::new(view.graph(), params).with_config(cfg.match_config);
            apply_projection(&ctx, ret, t)
        }
        // Update-only query: no rows, no fields.
        None => Ok(Table::empty(Schema::empty())),
    }
}

/// Executes one `[OPTIONAL] MATCH … [WHERE …]` clause through the planned
/// pipeline, against a frozen snapshot.
pub fn exec_match<'a>(
    view: impl Into<ViewRef<'a>>,
    params: &Params,
    cfg: &EngineConfig,
    patterns: &[PathPattern],
    where_: Option<&Expr>,
    optional: bool,
    table: Table,
) -> Result<Table, EvalError> {
    exec_match_memo(
        view.into(),
        params,
        cfg,
        patterns,
        where_,
        optional,
        table,
        None,
        None,
    )
}

/// Builds the profiled view of one executed `MATCH` pipeline: plan-step
/// text + cost-model estimate + the measured actuals. Operator timings
/// from the shims are *inclusive* (each wraps everything beneath it);
/// the exclusive time reported here subtracts the operator immediately
/// below — except the pipeline's own source, whose measurement is
/// direct (the parallel path times morsel-table construction itself, and
/// the step above it wraps only the unmeasured table re-scan).
fn clause_profile(
    label: &str,
    steps: &[PlanStep],
    plan: &crate::plan::MatchPlan,
    prof: crate::ops::PlanProfile,
) -> ClauseProfile {
    let mut operators = Vec::with_capacity(prof.steps.len());
    for (i, st) in prof.steps.iter().enumerate() {
        let nested = if i == 0 || (prof.parallel && i == 1) {
            0
        } else {
            prof.steps[i - 1].nanos
        };
        // The appended WHERE filter has no planner entry; its estimate
        // is the plan's final cardinality.
        let est = plan
            .step_estimates
            .get(i)
            .copied()
            .unwrap_or(plan.estimated_rows);
        operators.push(OpProfile {
            operator: steps[i].to_string(),
            estimated_rows: est,
            rows: st.rows,
            batches: st.batches,
            time_us: st.nanos.saturating_sub(nested) / 1_000,
            probes: st.probes,
            isect: st.isect,
        });
    }
    ClauseProfile {
        label: label.to_string(),
        operators,
        morsels: prof.morsels,
        parallel: prof.parallel,
    }
}

/// [`exec_match`] with an optional plan-memo site and an optional
/// profile sink (per-operator instrumentation).
#[allow(clippy::too_many_arguments)]
fn exec_match_memo(
    view: ViewRef<'_>,
    params: &Params,
    cfg: &EngineConfig,
    patterns: &[PathPattern],
    where_: Option<&Expr>,
    optional: bool,
    table: Table,
    memo: Option<(&PlanMemo, MemoSite)>,
    profile: Option<&mut Vec<ClauseProfile>>,
) -> Result<Table, EvalError> {
    let graph = view.graph();
    let label = if optional { "OPTIONAL MATCH" } else { "MATCH" };
    // Node isomorphism needs global node tracking that the pipeline does
    // not model; delegate to the reference matcher (documented fallback).
    if cfg.match_config.morphism == Morphism::NodeIsomorphism {
        if let Some(prof_out) = profile {
            // No operator pipeline to instrument; record the clause so
            // the profile still mirrors the query's shape.
            prof_out.push(ClauseProfile {
                label: label.to_string(),
                operators: Vec::new(),
                morsels: 0,
                parallel: false,
            });
        }
        let ctx = EvalContext::new(graph, params).with_config(cfg.match_config);
        return if optional {
            cypher_core::clauses::apply_optional_match(&ctx, patterns, where_, table)
        } else {
            let m = cypher_core::clauses::apply_match(&ctx, patterns, table)?;
            match where_ {
                Some(p) => apply_where(&ctx, p, m),
                None => Ok(m),
            }
        };
    }

    let ctx = EvalContext::new(graph, params).with_config(cfg.match_config);
    if !optional {
        let planned = plan_match_memo(
            memo,
            view,
            table.schema().names(),
            patterns,
            cfg.planner_options(),
        );
        let mut steps = planned.plan.steps.clone();
        if let Some(p) = where_ {
            steps.push(PlanStep::FilterExpr { pred: p.clone() });
        }
        let driving: Vec<String> = table.schema().names().to_vec();
        let raw = match profile {
            Some(prof_out) => {
                let (raw, pp) = run_plan_profiled(&ctx, &steps, table, cfg.exec_options())?;
                prof_out.push(clause_profile(label, &steps, &planned.plan, pp));
                raw
            }
            None => run_plan(
                &ctx,
                &steps,
                table,
                cfg.exec_options(),
                cfg.exec_metrics.as_deref(),
            )?,
        };
        return Ok(project_visible(raw, &driving, &planned.new_vars));
    }

    // OPTIONAL MATCH: tag each driving row with a hidden index, run the
    // pipeline (including the WHERE, per Figure 7), then null-pad inputs
    // that produced nothing.
    let idx_col = " opt_idx".to_string();
    let mut tagged_schema = table.schema().clone();
    tagged_schema = tagged_schema.with_field(idx_col.clone());
    let mut tagged = Table::empty(tagged_schema.clone());
    for (i, r) in table.rows().iter().enumerate() {
        let mut row = r.clone();
        row.push(Value::int(i as i64));
        tagged.push(row);
    }
    let planned = plan_match_memo(
        memo,
        view,
        tagged_schema.names(),
        patterns,
        cfg.planner_options(),
    );
    let mut steps = planned.plan.steps.clone();
    if let Some(p) = where_ {
        steps.push(PlanStep::FilterExpr { pred: p.clone() });
    }
    let raw = match profile {
        Some(prof_out) => {
            let (raw, pp) = run_plan_profiled(&ctx, &steps, tagged, cfg.exec_options())?;
            prof_out.push(clause_profile(label, &steps, &planned.plan, pp));
            raw
        }
        None => run_plan(
            &ctx,
            &steps,
            tagged,
            cfg.exec_options(),
            cfg.exec_metrics.as_deref(),
        )?,
    };

    // Group pipeline outputs by input index.
    let idx_pos = raw.schema().index_of(&idx_col).expect("hidden idx kept");
    let mut by_input: Vec<Vec<&Record>> = vec![Vec::new(); table.len()];
    for r in raw.rows() {
        let Value::Integer(i) = r.get(idx_pos) else {
            unreachable!("index column holds integers")
        };
        by_input[*i as usize].push(r);
    }

    let mut out_schema = table.schema().clone();
    for v in &planned.new_vars {
        out_schema = out_schema.with_field(v.clone());
    }
    let mut out = Table::empty(out_schema);
    let var_pos: Vec<usize> = planned
        .new_vars
        .iter()
        .map(|v| raw.schema().index_of(v).expect("pipeline binds new vars"))
        .collect();
    for (i, input_row) in table.rows().iter().enumerate() {
        if by_input[i].is_empty() {
            let mut row = input_row.clone();
            for _ in &planned.new_vars {
                row.push(Value::Null);
            }
            out.push(row);
        } else {
            for m in &by_input[i] {
                let mut row = input_row.clone();
                for &p in &var_pos {
                    row.push(m.get(p).clone());
                }
                out.push(row);
            }
        }
    }
    Ok(out)
}

/// Projects the pipeline output down to the driving fields plus the new
/// visible variables (dropping hidden bookkeeping columns).
fn project_visible(raw: Table, driving: &[String], new_vars: &[String]) -> Table {
    let mut names: Vec<String> = driving.to_vec();
    names.extend(new_vars.iter().cloned());
    let idxs: Vec<usize> = names
        .iter()
        .map(|n| raw.schema().index_of(n).expect("visible column present"))
        .collect();
    let schema = Schema::new(names);
    let mut out = Table::empty(schema);
    for r in raw.rows() {
        out.push(Record::new(
            idxs.iter().map(|&i| r.get(i).clone()).collect(),
        ));
    }
    out
}

/// Renders the physical plan of every `MATCH` clause in a query — a
/// minimal `EXPLAIN` — plus the projection pushdowns the executor will
/// apply (`PartialAggregate(keys=…, aggs=…)` / `TopK(k=…)`), against the
/// given snapshot's statistics.
///
/// When the handle carries a version (it came from a pinned
/// `GraphView`), the output opens with a `snapshot version N` line —
/// the witness of *which* committed state the statistics (and therefore
/// the plan choices) were read from.
pub fn explain<'a>(view: impl Into<ViewRef<'a>>, q: &Query, cfg: &EngineConfig) -> String {
    fn go(view: ViewRef<'_>, q: &Query, cfg: &EngineConfig, out: &mut String) {
        match q {
            Query::Single(sq) => {
                let mut fields: Vec<String> = Vec::new();
                for (i, clause) in sq.clauses.iter().enumerate() {
                    match clause {
                        Clause::Match {
                            patterns, optional, ..
                        } => {
                            let PlannedMatch { plan, new_vars } =
                                plan_match(view, &fields, patterns, cfg.planner_options());
                            out.push_str(if *optional {
                                "OPTIONAL MATCH plan:\n"
                            } else {
                                "MATCH plan:\n"
                            });
                            out.push_str(&plan.to_string());
                            out.push('\n');
                            // Surface the runtime's parallelism: a plan
                            // whose anchor is a source is dispatched
                            // morsel-wise across the worker pool — once
                            // the source's output exceeds one morsel
                            // (below that the pool cannot help and
                            // run_plan stays sequential).
                            if cfg.num_threads > 1 {
                                if plan.steps.first().is_some_and(|s| s.is_source()) {
                                    out.push_str(&format!(
                                        "(parallel: {} threads, morsel size {m}; \
                                         engages when driving rows × scanned items \
                                         exceed {m})\n",
                                        cfg.num_threads,
                                        m = cfg.morsel_size.max(1)
                                    ));
                                } else {
                                    out.push_str("(sequential: source is pre-bound)\n");
                                }
                            }
                            fields.extend(new_vars.iter().cloned());
                            // The final MATCH of a qualifying query fuses
                            // with the RETURN; surface what the workers
                            // will fold.
                            if i + 1 == sq.clauses.len() && !*optional {
                                if let Some(ret) = &sq.ret {
                                    if fused_applicable(cfg, sq, ret) {
                                        explain_pushdown(view.graph(), cfg, ret, &fields, out);
                                    }
                                }
                            }
                        }
                        // Projection replaces the visible schema; UNWIND
                        // appends its alias — mirrored here so later plans
                        // (and the pushdown line) see the schema the
                        // executor actually runs with.
                        Clause::With { ret, .. } => {
                            let distinct_names = fields
                                .iter()
                                .collect::<std::collections::HashSet<_>>()
                                .len()
                                == fields.len();
                            fields = if distinct_names {
                                match ProjectionPlan::compile(ret, &Schema::new(fields.clone())) {
                                    Ok(plan) => plan.out_schema().names().to_vec(),
                                    Err(_) => Vec::new(),
                                }
                            } else {
                                Vec::new()
                            };
                        }
                        Clause::Unwind { alias, .. } => {
                            if !fields.contains(alias) {
                                fields.push(alias.clone());
                            }
                        }
                        _ => {}
                    }
                }
            }
            Query::Union { left, right, .. } => {
                go(view, left, cfg, out);
                go(view, right, cfg, out);
            }
        }
    }
    let view = view.into();
    let mut s = String::new();
    if let Some(v) = view.version() {
        s.push_str(&format!("snapshot version {v}\n"));
    }
    go(view, q, cfg, &mut s);
    s
}

/// Renders the pushdown line of a qualifying final projection.
fn explain_pushdown(
    graph: &PropertyGraph,
    cfg: &EngineConfig,
    ret: &Return,
    fields: &[String],
    out: &mut String,
) {
    let vis = Schema::new(fields.to_vec());
    let Ok(plan) = ProjectionPlan::compile(ret, &vis) else {
        return;
    };
    match ret_pushdown(ret) {
        Some(PushdownKind::Aggregate) => {
            out.push_str(&format!(
                "PartialAggregate(keys=[{}], aggs=[{}])\n",
                plan.key_names().join(", "),
                plan.agg_display().join(", ")
            ));
        }
        Some(PushdownKind::Distinct) => {
            out.push_str(&format!(
                "PartialAggregate(keys=[{}], aggs=[], distinct)\n",
                plan.key_names().join(", ")
            ));
        }
        Some(PushdownKind::TopK) => {
            // Best effort without the caller's parameters.
            let params = Params::new();
            let ctx = EvalContext::new(graph, &params).with_config(cfg.match_config);
            let k = match (
                cypher_core::clauses::eval_count(&ctx, ret.skip.as_ref(), "SKIP"),
                cypher_core::clauses::eval_count(&ctx, ret.limit.as_ref(), "LIMIT"),
            ) {
                (Ok(s), Ok(l)) => Some(s.saturating_add(l)),
                _ => None,
            };
            match k {
                Some(k) => out.push_str(&format!("TopK(k={k})\n")),
                None => out.push_str("TopK(k=?)\n"),
            }
        }
        None => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cypher_parser::parse_query;

    fn figure4() -> PropertyGraph {
        let mut g = PropertyGraph::new();
        let n1 = g.add_node(&["Teacher"], []);
        let n2 = g.add_node(&["Student"], []);
        let n3 = g.add_node(&["Teacher"], []);
        let n4 = g.add_node(&["Teacher"], []);
        g.add_rel(n1, n2, "KNOWS", []).unwrap();
        g.add_rel(n2, n3, "KNOWS", []).unwrap();
        g.add_rel(n3, n4, "KNOWS", []).unwrap();
        g
    }

    fn run(g: &PropertyGraph, src: &str) -> Table {
        let params = Params::new();
        let q = parse_query(src).unwrap();
        execute_read(g, &q, &params, &EngineConfig::default()).unwrap()
    }

    #[test]
    fn engine_matches_reference_on_figure4() {
        let g = figure4();
        let params = Params::new();
        for src in [
            "MATCH (x:Teacher) RETURN x",
            "MATCH (x:Teacher)-[:KNOWS*2]->(y) RETURN x, y",
            "MATCH (x:Teacher)-[:KNOWS*1..2]->(z)-[:KNOWS*1..2]->(y:Teacher) RETURN x, z, y",
            "MATCH (x:Teacher)-[:KNOWS*1..2]->()-[:KNOWS*1..2]->(y:Teacher) RETURN x, y",
            "MATCH (x)-[r]-(y) RETURN x, y",
            "MATCH p = (x)-[:KNOWS*]->(y) RETURN x, y, length(p) AS len",
            "OPTIONAL MATCH (s:Student)-[:TEACHES]->(t) RETURN s, t",
            "MATCH (a), (b:Student) RETURN a, b",
        ] {
            let q = parse_query(src).unwrap();
            let engine = execute_read(&g, &q, &params, &EngineConfig::default()).unwrap();
            let ctx = EvalContext::new(&g, &params);
            let reference = cypher_core::eval_query(&ctx, &q).unwrap();
            assert!(
                engine.bag_eq(&reference),
                "{src}\nengine:\n{engine}\nreference:\n{reference}"
            );
        }
    }

    #[test]
    fn cartesian_baseline_agrees_with_expand() {
        let g = figure4();
        let params = Params::new();
        let q = parse_query("MATCH (x:Teacher)-[:KNOWS]->(y) RETURN x, y").unwrap();
        let fast = execute_read(&g, &q, &params, &EngineConfig::default()).unwrap();
        let slow = execute_read(
            &g,
            &q,
            &params,
            &EngineConfig {
                planner_mode: PlannerMode::CartesianJoin,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        assert!(fast.bag_eq(&slow));
    }

    #[test]
    fn optional_match_null_padding() {
        let g = figure4();
        let out = run(
            &g,
            "MATCH (x:Teacher) OPTIONAL MATCH (x)-[:KNOWS]->(y:Teacher) RETURN x, y",
        );
        // n1 knows n2 (Student, filtered), n3 knows n4, n4 knows nobody:
        // rows (n1, null), (n3, n4), (n4, null).
        assert_eq!(out.len(), 3);
        let nulls = out.rows().iter().filter(|r| r.get(1).is_null()).count();
        assert_eq!(nulls, 2);
    }

    #[test]
    fn where_filters_in_pipeline() {
        let g = figure4();
        let out = run(&g, "MATCH (x)-[:KNOWS]->(y) WHERE y:Teacher RETURN x, y");
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn update_then_read() {
        let mut g = PropertyGraph::new();
        let params = Params::new();
        let q = parse_query(
            "CREATE (a:Person {name: 'Ada'})-[:KNOWS {since: 1985}]->(b:Person {name: 'Bo'})",
        )
        .unwrap();
        let out = execute(&mut g, &q, &params, &EngineConfig::default()).unwrap();
        assert_eq!(out.len(), 0);
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.rel_count(), 1);
        let check = run(
            &g,
            "MATCH (a:Person)-[r:KNOWS]->(b) RETURN a.name, r.since, b.name",
        );
        assert_eq!(check.cell(0, "a.name"), Some(&Value::str("Ada")));
        assert_eq!(check.cell(0, "r.since"), Some(&Value::int(1985)));
    }

    #[test]
    fn read_execution_rejects_updates() {
        let g = PropertyGraph::new();
        let params = Params::new();
        let q = parse_query("CREATE (n)").unwrap();
        assert!(execute_read(&g, &q, &params, &EngineConfig::default()).is_err());
    }

    #[test]
    fn explain_mentions_expand() {
        let g = figure4();
        let q = parse_query("MATCH (x:Teacher)-[:KNOWS]->(y) RETURN x").unwrap();
        let plan = explain(&g, &q, &EngineConfig::default());
        assert!(plan.contains("NodeIndexScan"), "{plan}");
        assert!(plan.contains("Expand"), "{plan}");
    }

    #[test]
    fn explain_shows_property_index_seek() {
        let mut g = PropertyGraph::new();
        let params = Params::new();
        let create = parse_query("CREATE (:Person {name: 'Ada'}), (:Person {name: 'Bo'})").unwrap();
        execute(&mut g, &create, &params, &EngineConfig::default()).unwrap();
        let q = parse_query("MATCH (n:Person {name: 'Ada'}) RETURN n").unwrap();
        let plan = explain(&g, &q, &EngineConfig::default());
        assert!(
            plan.contains("PropertyIndexSeek(n:Person.name = 'Ada')"),
            "{plan}"
        );
        // With the property index off the anchor falls back to the label
        // index; with both off, to a full scan.
        let no_prop = explain(
            &g,
            &q,
            &EngineConfig {
                use_property_index: false,
                ..EngineConfig::default()
            },
        );
        assert!(no_prop.contains("NodeIndexScan(n:Person)"), "{no_prop}");
        let no_idx = explain(&g, &q, &EngineConfig::default().without_indexes());
        assert!(no_idx.contains("AllNodesScan"), "{no_idx}");
    }

    #[test]
    fn parallel_execution_matches_sequential_row_for_row() {
        // 200 nodes so every morsel size below actually chunks the scan.
        let mut g = PropertyGraph::new();
        let mut prev = None;
        for i in 0..200 {
            let labels: &[&str] = if i % 3 == 0 { &["Hub"] } else { &["Leaf"] };
            let n = g.add_node(labels, [("i", Value::int(i))]);
            if let Some(p) = prev {
                g.add_rel(p, n, "NEXT", []).unwrap();
            }
            prev = Some(n);
        }
        let params = Params::new();
        let seq = EngineConfig::default().with_threads(1);
        for src in [
            "MATCH (n:Hub) RETURN n",
            "MATCH (n) WHERE n.i > 100 RETURN n.i AS i",
            "MATCH (a:Hub)-[:NEXT]->(b) RETURN a.i AS x, b.i AS y",
            "MATCH (a)-[:NEXT*1..2]->(b:Hub) RETURN a, b",
            "MATCH (x:Hub) OPTIONAL MATCH (x)-[:NEXT]->(y:Hub) RETURN x, y",
        ] {
            let q = parse_query(src).unwrap();
            let base = execute_read(&g, &q, &params, &seq).unwrap();
            for (threads, morsel) in [(2, 1), (3, 7), (4, 64), (8, 1024)] {
                let cfg = seq.clone().with_threads(threads).with_morsel_size(morsel);
                let par = execute_read(&g, &q, &params, &cfg).unwrap();
                // Identical row *sequence*, not merely the same bag:
                // morsels are merged in claim-index order.
                assert!(
                    par.ordered_eq(&base),
                    "{src} (threads={threads}, morsel={morsel})\nseq:\n{base}\npar:\n{par}"
                );
            }
        }
    }

    #[test]
    fn parallel_errors_match_sequential_errors() {
        let mut g = PropertyGraph::new();
        for i in 0..50 {
            g.add_node(&["N"], [("v", Value::int(i))]);
        }
        let params = Params::new();
        // `+` on a node is an evaluation error raised mid-pipeline.
        let q = parse_query("MATCH (n:N) WHERE n + 1 = 2 RETURN n").unwrap();
        let seq_err =
            execute_read(&g, &q, &params, &EngineConfig::default().with_threads(1)).unwrap_err();
        let par_err = execute_read(
            &g,
            &q,
            &params,
            &EngineConfig::default().with_threads(4).with_morsel_size(4),
        )
        .unwrap_err();
        assert_eq!(seq_err, par_err, "parallel error is the canonical one");
    }

    #[test]
    fn explain_shows_parallelism() {
        let g = figure4();
        let q = parse_query("MATCH (x:Teacher)-[:KNOWS]->(y) RETURN x").unwrap();
        let seq = explain(&g, &q, &EngineConfig::default().with_threads(1));
        assert!(!seq.contains("parallel:"), "{seq}");
        let par = explain(
            &g,
            &q,
            &EngineConfig::default()
                .with_threads(4)
                .with_morsel_size(512),
        );
        assert!(
            par.contains(
                "(parallel: 4 threads, morsel size 512; \
                 engages when driving rows × scanned items exceed 512)"
            ),
            "{par}"
        );
    }

    #[test]
    fn malformed_env_overrides_are_reported_not_swallowed() {
        let env = |pairs: &'static [(&'static str, &'static str)]| {
            move |name: &str| {
                pairs
                    .iter()
                    .find(|(k, _)| *k == name)
                    .map(|(_, v)| v.to_string())
            }
        };
        let no_paths = |_: &str| None::<std::ffi::OsString>;
        // Well-formed values apply with no issues.
        let d = parse_env_defaults(
            &env(&[
                ("CYPHER_MORSEL_SIZE", "64"),
                ("CYPHER_NUM_THREADS", "4"),
                ("CYPHER_PLAN_CACHE_SIZE", "0"),
                ("CYPHER_PARTIAL_AGG", "force"),
                ("CYPHER_WCO_JOIN", "force"),
                ("CYPHER_GROUP_COMMIT", "off"),
                ("CYPHER_FSYNC_MODE", "pipelined"),
                ("CYPHER_SLOW_QUERY_MS", "250"),
                ("CYPHER_METRICS", "off"),
            ]),
            &no_paths,
        );
        assert!(d.issues.is_empty(), "{:?}", d.issues);
        assert_eq!(
            (d.morsel_size, d.num_threads, d.plan_cache_size),
            (64, 4, 0)
        );
        assert_eq!(d.partial_agg, PartialAggMode::Force);
        assert_eq!(d.wco_join, WcoJoinMode::Force);
        assert!(!d.group_commit);
        assert_eq!(d.fsync_mode, FsyncMode::Pipelined);
        assert_eq!(d.slow_query_ms, Some(250));
        assert!(!d.metrics_enabled);

        // Unset and empty silently keep defaults.
        let d = parse_env_defaults(&env(&[("CYPHER_MORSEL_SIZE", "")]), &no_paths);
        assert!(d.issues.is_empty());
        assert_eq!(d.morsel_size, DEFAULT_MORSEL_SIZE);

        // Malformed values fall back to defaults AND surface an issue
        // naming the variable, the rejected value and the fallback.
        let d = parse_env_defaults(
            &env(&[
                ("CYPHER_MORSEL_SIZE", "banana"),
                ("CYPHER_NUM_THREADS", "0"),
                ("CYPHER_WAL_COMPACT_BYTES", "-5"),
                ("CYPHER_PARTIAL_AGG", "sometimes"),
                ("CYPHER_WCO_JOIN", "sometimes"),
                ("CYPHER_GROUP_COMMIT", "maybe"),
                ("CYPHER_FSYNC_MODE", "eventually"),
                ("CYPHER_SLOW_QUERY_MS", "soon"),
                ("CYPHER_METRICS", "perhaps"),
            ]),
            &no_paths,
        );
        assert_eq!(d.morsel_size, DEFAULT_MORSEL_SIZE);
        assert_eq!(d.num_threads, 1);
        assert_eq!(d.wal_compact_bytes, DEFAULT_WAL_COMPACT_BYTES);
        assert_eq!(d.partial_agg, PartialAggMode::Auto);
        assert_eq!(d.wco_join, WcoJoinMode::Auto);
        assert!(d.group_commit, "malformed override keeps the default");
        assert_eq!(d.fsync_mode, FsyncMode::Os);
        assert_eq!(d.slow_query_ms, None);
        assert!(d.metrics_enabled, "malformed override keeps the default");
        let vars: Vec<&str> = d.issues.iter().map(|i| i.var).collect();
        assert_eq!(
            vars,
            vec![
                "CYPHER_MORSEL_SIZE",
                "CYPHER_NUM_THREADS",
                "CYPHER_WAL_COMPACT_BYTES",
                "CYPHER_PARTIAL_AGG",
                "CYPHER_WCO_JOIN",
                "CYPHER_GROUP_COMMIT",
                "CYPHER_FSYNC_MODE",
                "CYPHER_SLOW_QUERY_MS",
                "CYPHER_METRICS"
            ]
        );
        let morsel = &d.issues[0];
        assert_eq!(morsel.value, "banana");
        assert!(morsel.message.contains("not a valid integer"), "{morsel}");
        assert!(
            d.issues[1].message.contains("at least 1"),
            "{}",
            d.issues[1]
        );
    }

    #[test]
    fn index_toggles_do_not_change_results() {
        let g = figure4();
        let params = Params::new();
        let q = parse_query("MATCH (x:Teacher)-[:KNOWS]->(y) RETURN x, y").unwrap();
        let on = execute_read(&g, &q, &params, &EngineConfig::default()).unwrap();
        let off =
            execute_read(&g, &q, &params, &EngineConfig::default().without_indexes()).unwrap();
        assert!(on.bag_eq(&off));
    }
}
