//! Plan memoization for repeated queries.
//!
//! A [`PlanMemo`] caches the compiled [`PlannedMatch`] of every `MATCH`
//! clause of one query, keyed by the clause's position **and** the driving
//! schema it was planned against (schemas are deterministic per query, but
//! keying by the actual runtime schema makes a stale or mispredicted entry
//! impossible — a mismatch is simply a miss and the clause replans).
//!
//! The memo is deliberately dumb about *when* plans go stale: plans are
//! chosen from index statistics, so `cypher::Database` fingerprints those
//! statistics with [`stats_fingerprint`] and throws the memo away when the
//! fingerprint moves. Statistics are bucketed on a log₂ grid: a cardinality
//! has to roughly double (or halve) before the fingerprint changes, which
//! is the magnitude of movement that flips anchor choices, while steady
//! trickle mutations keep their cached plans. A stale plan is never
//! *wrong* — index and anchor choices affect speed, not results — so
//! coarse invalidation is safe by construction.

use crate::exec::EngineConfig;
use crate::planner::{plan_match, PlannedMatch, PlannerMode, PlannerOptions, WcoJoinMode};
use cypher_ast::pattern::PathPattern;
use cypher_graph::{PropertyGraph, ViewRef};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};

/// Where in a query a `MATCH` clause sits: `(union branch, clause index)`.
pub(crate) type MemoSite = (usize, usize);

/// A per-query cache of compiled `MATCH` plans. Cheap to create; shared
/// behind an `Arc` by `cypher::Database`'s LRU entry and every execution
/// of the cached query.
#[derive(Debug, Default)]
pub struct PlanMemo {
    slots: Mutex<HashMap<(MemoSite, Vec<String>), Arc<PlannedMatch>>>,
    hits: std::sync::atomic::AtomicU64,
    misses: std::sync::atomic::AtomicU64,
}

impl PlanMemo {
    /// An empty memo.
    pub fn new() -> PlanMemo {
        PlanMemo::default()
    }

    /// Plans planned through this memo that were answered from cache.
    pub fn plan_hits(&self) -> u64 {
        self.hits.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Plans that had to be compiled.
    pub fn plan_misses(&self) -> u64 {
        self.misses.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Returns the cached plan for `(site, fields)` or compiles, stores
    /// and returns it.
    pub(crate) fn get_or_plan(
        &self,
        site: MemoSite,
        view: ViewRef<'_>,
        fields: &[String],
        patterns: &[PathPattern],
        opts: PlannerOptions,
    ) -> Arc<PlannedMatch> {
        let key = (site, fields.to_vec());
        {
            let slots = self.slots.lock().unwrap();
            if let Some(p) = slots.get(&key) {
                self.hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                return Arc::clone(p);
            }
        }
        self.misses
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let planned = Arc::new(plan_match(view, fields, patterns, opts));
        self.slots.lock().unwrap().insert(key, Arc::clone(&planned));
        planned
    }
}

/// Plans for `(site, fields)` against the given snapshot — through the
/// memo when one is installed, directly otherwise.
pub(crate) fn plan_match_memo(
    memo: Option<(&PlanMemo, MemoSite)>,
    view: ViewRef<'_>,
    fields: &[String],
    patterns: &[PathPattern],
    opts: PlannerOptions,
) -> Arc<PlannedMatch> {
    match memo {
        Some((m, site)) => m.get_or_plan(site, view, fields, patterns, opts),
        None => Arc::new(plan_match(view, fields, patterns, opts)),
    }
}

/// Buckets a cardinality on a log₂ grid: 0, then one bucket per power of
/// two. Plans flip when relative cardinalities shift by factors, not by
/// single insertions.
fn bucket(n: usize) -> u32 {
    if n == 0 {
        0
    } else {
        usize::BITS - n.leading_zeros()
    }
}

/// A fingerprint of every statistic the planner consults — node/rel
/// counts, per-label cardinalities, and per-key / per-`(label, key)`
/// entry/distinct counts — each bucketed on a log₂ grid. When the
/// fingerprint of a graph differs from the one a plan was compiled under,
/// the statistics have moved far enough that anchor choices may flip and
/// the plan should be recompiled.
pub fn stats_fingerprint(g: &PropertyGraph) -> u64 {
    let stats = g.stats();
    let mut h = DefaultHasher::new();
    bucket(stats.nodes).hash(&mut h);
    bucket(stats.rels).hash(&mut h);
    // Hash maps iterate in arbitrary order; sort by symbol for stability.
    let mut labels: Vec<_> = stats
        .label_cardinality
        .iter()
        .map(|(s, &n)| (*s, bucket(n)))
        .collect();
    labels.sort_unstable();
    labels.hash(&mut h);
    let mut props: Vec<_> = stats
        .prop_cardinality
        .iter()
        .map(|(s, c)| (*s, bucket(c.entries), bucket(c.distinct)))
        .collect();
    props.sort_unstable();
    props.hash(&mut h);
    h.finish()
}

impl EngineConfig {
    /// A fingerprint of the configuration slice that shapes plans (the
    /// planner mode and index toggles). Cached plans keyed by query text
    /// are only reused under an identical fingerprint.
    pub fn plan_fingerprint(&self) -> u64 {
        let mut h = DefaultHasher::new();
        let mode: u8 = match self.planner_mode {
            PlannerMode::ExpandBased => 0,
            PlannerMode::CartesianJoin => 1,
        };
        mode.hash(&mut h);
        self.use_label_index.hash(&mut h);
        self.use_property_index.hash(&mut h);
        let wco: u8 = match self.wco_join {
            WcoJoinMode::Off => 0,
            WcoJoinMode::Auto => 1,
            WcoJoinMode::Force => 2,
        };
        wco.hash(&mut h);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cypher_graph::Value;

    #[test]
    fn bucketing_is_logarithmic() {
        assert_eq!(bucket(0), 0);
        assert_eq!(bucket(1), 1);
        assert_eq!(bucket(2), 2);
        assert_eq!(bucket(3), 2);
        assert_eq!(bucket(4), 3);
        assert_eq!(bucket(1023), 10);
        assert_eq!(bucket(1024), 11);
    }

    #[test]
    fn fingerprint_stable_under_small_churn_moves_under_big() {
        let mut g = PropertyGraph::new();
        for i in 0..64 {
            g.add_node(&["A"], [("v", Value::int(i))]);
        }
        let fp = stats_fingerprint(&g);
        assert_eq!(fp, stats_fingerprint(&g), "fingerprint is deterministic");
        // One more node of an existing power-of-two band: same bucket.
        g.add_node(&["A"], [("v", Value::int(64))]);
        // 64 → 65 crosses a bucket boundary at 64→65? bucket(64)=7,
        // bucket(65)=7 — still the same band.
        assert_eq!(fp, stats_fingerprint(&g), "single insert keeps the plan");
        // Doubling the label flips the fingerprint.
        for i in 0..200 {
            g.add_node(&["A"], [("v", Value::int(100 + i))]);
        }
        assert_ne!(fp, stats_fingerprint(&g), "2× growth invalidates");
    }

    #[test]
    fn config_fingerprint_tracks_planner_slice() {
        // Pin the join policy so the test holds under a CYPHER_WCO_JOIN
        // override (the CI matrix runs the whole suite with it set).
        let base = || EngineConfig::default().with_wco_join(WcoJoinMode::Auto);
        let a = base();
        let b = base().without_indexes();
        assert_ne!(a.plan_fingerprint(), b.plan_fingerprint());
        // Runtime knobs do not reshape plans.
        let c = base().with_threads(8).with_morsel_size(2);
        assert_eq!(a.plan_fingerprint(), c.plan_fingerprint());
        // The worst-case-optimal join policy does.
        let d = base().with_wco_join(WcoJoinMode::Off);
        assert_ne!(a.plan_fingerprint(), d.plan_fingerprint());
        let e = base().with_wco_join(WcoJoinMode::Force);
        assert_ne!(a.plan_fingerprint(), e.plan_fingerprint());
        assert_ne!(d.plan_fingerprint(), e.plan_fingerprint());
    }
}
