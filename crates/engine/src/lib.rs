//! # cypher-engine
//!
//! A production-style executor for the Cypher language of the SIGMOD 2018
//! paper, built the way Section 2 describes the Neo4j implementation:
//!
//! * a **cost-based planner** ([`planner`]) choosing scan anchors by label
//!   selectivity and compiling patterns to chains of the **`Expand`**
//!   operator over native adjacency,
//! * a **batch-at-a-time (morsel-driven) runtime** ([`ops`]): operators
//!   exchange [`ops::RowBatch`]es of up to `morsel_size` rows, and scan
//!   sources are partitioned into morsels dispatched across a
//!   `std::thread::scope` worker pool when `num_threads > 1` — with the
//!   guarantee that every thread count produces the same row sequence,
//! * the **update clauses** `CREATE` / `MERGE` / `DELETE` / `SET` /
//!   `REMOVE` ([`update`]),
//! * **multiple named graphs and query composition** (Cypher 10,
//!   [`multigraph`]).
//!
//! `WITH`/`UNWIND` (and mid-query projection generally) reuse the
//! reference semantics of [`cypher_core`] — the two implementations share
//! exactly the behaviour the paper defines once, and differ (and are
//! differentially tested) on pattern matching, where the planner matters.
//! The **final** projection of a qualifying query is *fused* into the
//! morsel pipeline instead: aggregation and `DISTINCT` fold per-morsel
//! `GroupedAggState`s (the same type the reference semantics fold
//! through) and `ORDER BY … LIMIT` folds bounded top-k heaps, merged in
//! morsel order so results stay bit-identical across thread counts and
//! morsel sizes — surfaced in `EXPLAIN` as `PartialAggregate(…)` /
//! `TopK(k=…)` and controlled by [`EngineConfig::partial_agg`]. Repeated
//! queries skip planning through a [`PlanMemo`] (see [`cache`]), which
//! the `cypher::Database` facade wires into an LRU parse+plan cache with
//! statistics-fingerprint invalidation.
//!
//! ```
//! use cypher_engine::{execute, EngineConfig};
//! use cypher_core::Params;
//! use cypher_graph::PropertyGraph;
//! use cypher_parser::parse_query;
//!
//! let mut g = PropertyGraph::new();
//! let params = Params::new();
//! let create = parse_query(
//!     "CREATE (:Service {name: 'db'})<-[:DEPENDS_ON]-(:Service {name: 'api'})",
//! ).unwrap();
//! execute(&mut g, &create, &params, &EngineConfig::default()).unwrap();
//!
//! let q = parse_query(
//!     "MATCH (s:Service)<-[:DEPENDS_ON]-(d) RETURN s.name AS svc, count(d) AS deps",
//! ).unwrap();
//! let out = execute(&mut g, &q, &params, &EngineConfig::default()).unwrap();
//! assert_eq!(out.len(), 1);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod delta;
pub mod exec;
pub mod multigraph;
pub mod ops;
pub mod plan;
pub mod planner;
mod pushdown;
pub mod update;

pub use cache::{stats_fingerprint, PlanMemo};
pub use delta::{expr_rescans_graph, DeltaPlan};
pub use exec::{
    env_config_issues, execute, execute_cached, execute_read, execute_read_cached, explain,
    profile_read, ClauseProfile, EngineConfig, EnvConfigIssue, FsyncMode, OpProfile,
    PartialAggMode, QueryProfile,
};
pub use multigraph::{execute_on_catalog, MultiResult};
pub use ops::{ExecMetrics, ExecOptions, OpStats, PlanProfile, RowBatch, DEFAULT_MORSEL_SIZE};
pub use plan::{IntersectGuard, MatchPlan, PlanStep};
pub use planner::{plan_match, PlannerMode, PlannerOptions, WcoJoinMode};
