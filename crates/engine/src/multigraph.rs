//! Multiple named graphs and query composition (paper Section 6, Cypher
//! 10): `FROM GRAPH name [AT '…']` switches the source graph for the
//! following reading clauses, and `RETURN GRAPH name OF pattern_tuple`
//! constructs a new named graph from the final driving table and registers
//! it in the catalog — so that "Cypher queries \[can\] be composed as a
//! chain of elementary queries", as in Example 6.1.
//!
//! Simplifications relative to the full proposal (documented in
//! DESIGN.md): the `AT "<uri>"` locator is accepted but graphs are
//! resolved by name in the in-process [`Catalog`]; the result of a query
//! is either a table or a graph name (not a combined table-graphs value).

use crate::exec::{exec_match, EngineConfig};
use cypher_ast::pattern::{Dir, PathPattern};
use cypher_ast::query::{Clause, Query, SingleQuery};
use cypher_core::clauses::{apply_projection, apply_unwind, apply_where};
use cypher_core::error::{err, EvalError};
use cypher_core::expr::Bindings;
use cypher_core::table::{Schema, Table};
use cypher_core::{EvalContext, Params, VarLookup};
use cypher_graph::fxhash::FxHashMap;
use cypher_graph::{Catalog, NodeId, PropertyGraph, Symbol, Value};

/// The outcome of a composed query: a table (ordinary `RETURN`) or the
/// name of a newly constructed graph (`RETURN GRAPH`).
#[derive(Debug)]
pub enum MultiResult {
    /// A projected table.
    Table(Table),
    /// The name of the graph registered in the catalog.
    Graph(String),
}

/// Executes a read/construct query against a catalog of named graphs.
/// `default_graph` names the graph used before any `FROM GRAPH` clause.
pub fn execute_on_catalog(
    catalog: &mut Catalog,
    default_graph: &str,
    q: &Query,
    params: &Params,
    cfg: &EngineConfig,
) -> Result<MultiResult, EvalError> {
    let Query::Single(sq) = q else {
        return err("UNION is not supported in multigraph composition");
    };
    exec_single(catalog, default_graph, sq, params, cfg)
}

fn exec_single(
    catalog: &mut Catalog,
    default_graph: &str,
    sq: &SingleQuery,
    params: &Params,
    cfg: &EngineConfig,
) -> Result<MultiResult, EvalError> {
    let mut current = default_graph.to_string();
    let mut t = Table::unit();
    let get = |catalog: &Catalog, name: &str| {
        catalog
            .get(name)
            .ok_or_else(|| EvalError::new(format!("no graph named {name} in the catalog")))
    };
    for clause in &sq.clauses {
        match clause {
            Clause::FromGraph { name, .. } => {
                get(catalog, name)?; // must exist
                current = name.clone();
            }
            Clause::Match {
                optional,
                patterns,
                where_,
            } => {
                let gref = get(catalog, &current)?;
                let g = gref.read();
                t = exec_match(&*g, params, cfg, patterns, where_.as_ref(), *optional, t)?;
            }
            Clause::With { ret, where_ } => {
                let gref = get(catalog, &current)?;
                let g = gref.read();
                let ctx = EvalContext::new(&g, params).with_config(cfg.match_config);
                t = apply_projection(&ctx, ret, t)?;
                if let Some(p) = where_ {
                    t = apply_where(&ctx, p, t)?;
                }
            }
            Clause::Unwind { expr, alias } => {
                let gref = get(catalog, &current)?;
                let g = gref.read();
                let ctx = EvalContext::new(&g, params).with_config(cfg.match_config);
                t = apply_unwind(&ctx, expr, alias, t)?;
            }
            _ => return err("multigraph composition supports reading clauses only"),
        }
    }
    if let Some((name, patterns)) = &sq.ret_graph {
        let gref = get(catalog, &current)?;
        let constructed = {
            let g = gref.read();
            construct_graph(&g, params, cfg, patterns, &t)?
        };
        catalog.register(name.clone(), constructed);
        return Ok(MultiResult::Graph(name.clone()));
    }
    if let Some(ret) = &sq.ret {
        let gref = get(catalog, &current)?;
        let g = gref.read();
        let ctx = EvalContext::new(&g, params).with_config(cfg.match_config);
        return Ok(MultiResult::Table(apply_projection(&ctx, ret, t)?));
    }
    err("a composed query must end in RETURN or RETURN GRAPH")
}

/// Builds a new property graph from the driving table: bound node
/// variables are copied (labels and properties) from the source graph —
/// each source node once — and the pattern's relationships are created per
/// row, as in `RETURN GRAPH friends OF (a)-[:SHARE_FRIEND]->(b)`.
fn construct_graph(
    src: &PropertyGraph,
    params: &Params,
    cfg: &EngineConfig,
    patterns: &[PathPattern],
    table: &Table,
) -> Result<PropertyGraph, EvalError> {
    let mut out = PropertyGraph::new();
    let mut copied: FxHashMap<NodeId, NodeId> = FxHashMap::default();
    let schema: &Schema = table.schema();

    let mut copy_node = |out: &mut PropertyGraph, n: NodeId| -> NodeId {
        if let Some(&m) = copied.get(&n) {
            return m;
        }
        let labels: Vec<Symbol> = src
            .labels(n)
            .iter()
            .map(|&l| out.intern(src.resolve(l)))
            .collect();
        let props: Vec<(Symbol, Value)> = src
            .node_props(n)
            .map(|(k, v)| (src.resolve(k).to_string(), v.clone()))
            .collect::<Vec<_>>()
            .into_iter()
            .map(|(k, v)| (out.intern(&k), v))
            .collect();
        let m = out.add_node_syms(labels, props);
        copied.insert(n, m);
        m
    };

    for row in table.rows() {
        for pat in patterns {
            let b = Bindings::new(schema, row);
            // Resolve the start node.
            let mut current = resolve_constructed_node(
                src,
                params,
                cfg,
                &pat.start,
                &b,
                &mut copy_node,
                &mut out,
            )?;
            for (rho, chi) in &pat.steps {
                if !rho.range.is_single() || rho.types.len() != 1 {
                    return err("RETURN GRAPH requires single typed relationships");
                }
                let target =
                    resolve_constructed_node(src, params, cfg, chi, &b, &mut copy_node, &mut out)?;
                let (s, t) = match rho.dir {
                    Dir::Out => (current, target),
                    Dir::In => (target, current),
                    Dir::Both => return err("RETURN GRAPH requires directed relationships"),
                };
                let ty = out.intern(&rho.types[0]);
                let props: Vec<(Symbol, Value)> = {
                    let ctx = EvalContext::new(src, params).with_config(cfg.match_config);
                    let mut ps = Vec::new();
                    for (k, e) in &rho.props {
                        let v = cypher_core::eval_expr(&ctx, &b, e)?;
                        ps.push((k.clone(), v));
                    }
                    ps.into_iter().map(|(k, v)| (out.intern(&k), v)).collect()
                };
                out.add_rel_syms(s, t, ty, props)
                    .map_err(|e| EvalError::new(e.to_string()))?;
                current = target;
            }
        }
    }
    Ok(out)
}

fn resolve_constructed_node(
    src: &PropertyGraph,
    params: &Params,
    cfg: &EngineConfig,
    chi: &cypher_ast::pattern::NodePattern,
    b: &Bindings<'_>,
    copy_node: &mut impl FnMut(&mut PropertyGraph, NodeId) -> NodeId,
    out: &mut PropertyGraph,
) -> Result<NodeId, EvalError> {
    if let Some(name) = &chi.name {
        if let Some(v) = b.lookup(name) {
            return match v {
                Value::Node(n) => Ok(copy_node(out, n)),
                other => err(format!(
                    "RETURN GRAPH variable {name} must be a node, got {}",
                    other.type_name()
                )),
            };
        }
    }
    // Unbound: create a fresh node per row with the pattern's labels and
    // properties.
    let labels: Vec<Symbol> = chi.labels.iter().map(|l| out.intern(l)).collect();
    let props: Vec<(Symbol, Value)> = {
        let ctx = EvalContext::new(src, params).with_config(cfg.match_config);
        let mut ps = Vec::new();
        for (k, e) in &chi.props {
            ps.push((k.clone(), cypher_core::eval_expr(&ctx, b, e)?));
        }
        ps.into_iter().map(|(k, v)| (out.intern(&k), v)).collect()
    };
    Ok(out.add_node_syms(labels, props))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cypher_parser::parse_query;

    /// A small social network for Example 6.1: persons with FRIEND edges
    /// (and `since` years), plus a citizen register graph with cities.
    fn catalog() -> Catalog {
        let mut soc = PropertyGraph::new();
        let a = soc.add_node(&["Person"], [("name", Value::str("a"))]);
        let b = soc.add_node(&["Person"], [("name", Value::str("b"))]);
        let c = soc.add_node(&["Person"], [("name", Value::str("c"))]);
        soc.add_rel(a, c, "FRIEND", [("since", Value::int(2000))])
            .unwrap();
        soc.add_rel(b, c, "FRIEND", [("since", Value::int(2001))])
            .unwrap();
        let mut cat = Catalog::new();
        cat.register("soc_net", soc);
        cat
    }

    #[test]
    fn example_6_1_share_friend_projection() {
        let mut cat = catalog();
        let params = Params::new();
        let q = parse_query(
            "FROM GRAPH soc_net AT 'hdfs://x/soc_network'
             MATCH (a)-[r1:FRIEND]-()-[r2:FRIEND]-(b)
             WITH DISTINCT a, b
             RETURN GRAPH friends OF (a)-[:SHARE_FRIEND]->(b)",
        )
        .unwrap();
        let res =
            execute_on_catalog(&mut cat, "soc_net", &q, &params, &EngineConfig::default()).unwrap();
        let MultiResult::Graph(name) = res else {
            panic!("expected a graph result")
        };
        assert_eq!(name, "friends");
        let friends = cat.get("friends").unwrap();
        let g = friends.read();
        // a and b share friend c (both directions of the undirected match).
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.rel_count(), 2);

        // Compose: query the constructed graph.
        drop(g);
        let q2 =
            parse_query("FROM GRAPH friends MATCH (x)-[:SHARE_FRIEND]->(y) RETURN x.name, y.name")
                .unwrap();
        let res2 = execute_on_catalog(&mut cat, "soc_net", &q2, &params, &EngineConfig::default())
            .unwrap();
        let MultiResult::Table(t) = res2 else {
            panic!()
        };
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn from_graph_switches_source() {
        let mut cat = catalog();
        let mut other = PropertyGraph::new();
        other.add_node(&["City"], [("name", Value::str("Houston"))]);
        cat.register("register", other);
        let params = Params::new();
        let q = parse_query("FROM GRAPH register MATCH (c:City) RETURN c.name").unwrap();
        let res =
            execute_on_catalog(&mut cat, "soc_net", &q, &params, &EngineConfig::default()).unwrap();
        let MultiResult::Table(t) = res else { panic!() };
        assert_eq!(t.cell(0, "c.name"), Some(&Value::str("Houston")));
    }

    #[test]
    fn missing_graph_is_error() {
        let mut cat = catalog();
        let params = Params::new();
        let q = parse_query("FROM GRAPH nope MATCH (n) RETURN n").unwrap();
        assert!(
            execute_on_catalog(&mut cat, "soc_net", &q, &params, &EngineConfig::default()).is_err()
        );
    }

    #[test]
    fn copied_nodes_deduplicated() {
        let mut cat = catalog();
        let params = Params::new();
        // Every person pairs with every friend; 'c' appears in several
        // rows but is copied once.
        let q = parse_query(
            "MATCH (a:Person)-[:FRIEND]-(b:Person)
             RETURN GRAPH pairs OF (a)-[:PAIRED]->(b)",
        )
        .unwrap();
        execute_on_catalog(&mut cat, "soc_net", &q, &params, &EngineConfig::default()).unwrap();
        let g = cat.get("pairs").unwrap();
        let g = g.read();
        assert_eq!(g.node_count(), 3, "each source node copied once");
        assert_eq!(g.rel_count(), 4, "one relationship per matched row");
    }
}
