//! Batch-at-a-time (morsel-driven) physical operators.
//!
//! The paper (Section 2): "The final query compilation uses either a
//! simple tuple-at-a-time iterator-based execution model, or compiles the
//! query to Java bytecode". The original executor here implemented the
//! tuple-at-a-time model; this module is its batch refactor: every
//! operator exposes `next_batch()`, pulling a [`RowBatch`] of up to
//! `morsel_size` records at a time from its child. Batching amortizes the
//! per-row virtual dispatch of the Volcano model and — more importantly —
//! gives the executor a natural unit of parallelism: the *morsel*
//! (Leis et al., "Morsel-driven parallelism"). [`run_plan`] partitions a
//! pipeline's source into morsels and dispatches them across a
//! `std::thread::scope` worker pool; per-worker partial results are merged
//! *in morsel order*, so the output row sequence is identical for every
//! thread count — including 1, which bypasses dispatch entirely and
//! reproduces the classic single-threaded execution bit-for-bit.
//!
//! `Expand` still exploits the native adjacency of [`cypher_graph`]: "it
//! utilizes the fact that the data representation contains direct
//! references from each node via its edges to the related nodes".

use crate::plan::{PathElem, PlanStep};
use cypher_ast::expr::Expr;
use cypher_ast::pattern::Dir;
use cypher_core::error::{err, EvalError};
use cypher_core::expr::{eval_expr, truth_of, Bindings};
use cypher_core::morphism::Morphism;
use cypher_core::table::{Record, Schema, Table};
use cypher_core::EvalContext;
use cypher_graph::{
    gallop, Direction, Neighbor, NodeId, Path, RelId, SortedAdjacency, Symbol, Tri, Value,
};
use cypher_metrics::Counter;
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// The default number of rows per batch (morsel).
pub const DEFAULT_MORSEL_SIZE: usize = 1024;

/// A batch of records flowing between operators — the unit of work of the
/// morsel-driven executor. Sources cap batches at the configured morsel
/// size; intermediate operators may shrink (filters) or grow (expands)
/// them, re-chunking at the next cap check.
#[derive(Debug, Default)]
pub struct RowBatch {
    rows: Vec<Record>,
}

impl RowBatch {
    /// An empty batch with room for `n` rows.
    pub fn with_capacity(n: usize) -> RowBatch {
        RowBatch {
            rows: Vec::with_capacity(n),
        }
    }

    /// Wraps a row vector.
    pub fn from_rows(rows: Vec<Record>) -> RowBatch {
        RowBatch { rows }
    }

    /// Appends a row.
    pub fn push(&mut self, r: Record) {
        self.rows.push(r);
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The rows, in order.
    pub fn rows(&self) -> &[Record] {
        &self.rows
    }

    /// Moves the rows out.
    pub fn into_rows(self) -> Vec<Record> {
        self.rows
    }
}

/// A pull-based operator: a stream of row batches with a fixed schema.
pub trait Operator {
    /// The output schema.
    fn schema(&self) -> &Arc<Schema>;
    /// Pulls the next non-empty batch, `None` at end of stream.
    fn next_batch(&mut self) -> Result<Option<RowBatch>, EvalError>;
    /// Kernel counters `(probes, intersection length)` for operators that
    /// intersect sorted adjacencies; `None` for everything else. Read by
    /// the profiling shim at end of stream.
    fn intersect_stats(&self) -> Option<(u64, u64)> {
        None
    }
}

/// Execution knobs of the morsel-driven runtime: how many rows one morsel
/// holds and how many worker threads claim morsels. Both are clamped to a
/// minimum of 1.
#[derive(Clone, Copy, Debug)]
pub struct ExecOptions {
    /// Rows per batch; also the granularity of parallel work division.
    pub morsel_size: usize,
    /// Worker threads for parallelizable pipelines. `1` runs the entire
    /// pipeline on the calling thread, with no dispatch overhead.
    pub num_threads: usize,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            morsel_size: DEFAULT_MORSEL_SIZE,
            num_threads: 1,
        }
    }
}

/// Executor-level event counters, shared through
/// [`crate::exec::EngineConfig::exec_metrics`]. Recording is lock-free
/// (relaxed atomics) and happens once per pipeline run — never per row
/// or per batch — so the hot path stays untouched; a `None` handle
/// skips even that.
#[derive(Debug, Default)]
pub struct ExecMetrics {
    /// Morsels executed by `MATCH` pipelines (a sequential run counts 1).
    pub morsels: Counter,
    /// Rows produced by `MATCH` pipelines (pre-projection).
    pub rows: Counter,
    /// Pipeline runs that engaged the parallel morsel dispatcher.
    pub parallel_runs: Counter,
    /// Galloping probes performed by `MultiwayIntersect` operators.
    pub intersect_probes: Counter,
    /// Nodes surviving a multiway adjacency intersection (the summed
    /// intersection lengths, before label filtering).
    pub intersect_nodes: Counter,
    /// Rows emitted by `MultiwayIntersect` operators.
    pub intersect_rows: Counter,
}

/// Measured totals of one plan step across a profiled run: every batch
/// the operator emitted, every row in those batches, and the wall time
/// spent inside its `next_batch` (inclusive of its children — the
/// pipeline is linear, so callers recover exclusive time by subtracting
/// the child's total).
#[derive(Clone, Debug, Default)]
pub struct OpStats {
    /// Rows the operator emitted.
    pub rows: u64,
    /// Non-empty batches the operator emitted.
    pub batches: u64,
    /// Wall nanoseconds inside `next_batch`, children included. Parallel
    /// runs sum the per-worker times (CPU-style, not elapsed).
    pub nanos: u64,
    /// Galloping probes (`MultiwayIntersect` steps only; 0 elsewhere).
    pub probes: u64,
    /// Intersection length — nodes adjacent to every guard
    /// (`MultiwayIntersect` steps only; 0 elsewhere).
    pub isect: u64,
}

impl OpStats {
    fn merge(&mut self, other: &OpStats) {
        self.rows += other.rows;
        self.batches += other.batches;
        self.nanos += other.nanos;
        self.probes += other.probes;
        self.isect += other.isect;
    }
}

/// The measured execution of one plan, from [`run_plan_profiled`]:
/// per-step totals (indexed like the step slice) aggregated across all
/// morsels in claim-index order, plus the dispatch shape.
#[derive(Clone, Debug, Default)]
pub struct PlanProfile {
    /// Per-step totals, one entry per plan step.
    pub steps: Vec<OpStats>,
    /// Morsels executed (1 for a sequential run).
    pub morsels: u64,
    /// Whether the parallel dispatcher engaged.
    pub parallel: bool,
}

/// Wraps a pipeline operator with per-morsel measurement. The counters
/// are plain (non-atomic) cells private to the morsel's thread; workers
/// never share a slot, so profiling adds no synchronization to the
/// pipeline itself.
struct ProfiledOp<'a> {
    inner: Box<dyn Operator + 'a>,
    slot: Rc<RefCell<Vec<OpStats>>>,
    idx: usize,
}

impl Operator for ProfiledOp<'_> {
    fn schema(&self) -> &Arc<Schema> {
        self.inner.schema()
    }

    fn next_batch(&mut self) -> Result<Option<RowBatch>, EvalError> {
        let t = std::time::Instant::now();
        let res = self.inner.next_batch();
        let nanos = t.elapsed().as_nanos() as u64;
        let mut stats = self.slot.borrow_mut();
        let s = &mut stats[self.idx];
        s.nanos += nanos;
        match &res {
            Ok(Some(b)) => {
                s.rows += b.len() as u64;
                s.batches += 1;
            }
            Ok(None) => {
                // End of stream: harvest the operator's kernel counters.
                if let Some((probes, isect)) = self.inner.intersect_stats() {
                    s.probes = probes;
                    s.isect = isect;
                }
            }
            Err(_) => {}
        }
        res
    }
}

/// Drains an operator into a materialized table.
pub fn run_to_table(mut op: Box<dyn Operator + '_>) -> Result<Table, EvalError> {
    let schema = op.schema().clone();
    let mut out = Table::empty(schema);
    while let Some(batch) = op.next_batch()? {
        for r in batch.into_rows() {
            out.push(r);
        }
    }
    Ok(out)
}

/// Executes a compiled `MATCH` plan over a driving table, dispatching
/// source morsels across a worker pool when `opts.num_threads > 1`.
///
/// **Determinism:** morsel `k` covers output rows `[k·m, (k+1)·m)` of the
/// source's row-major product (driving row outer, scanned item inner) —
/// exactly the order the sequential executor produces — and partial
/// results are merged in morsel order. The output is therefore the *same
/// sequence of rows* for every `num_threads`, not merely the same bag.
///
/// Should any worker fail, the plan is re-run sequentially so the reported
/// error is the one single-threaded execution raises (workers race, and
/// the first error to surface is otherwise scheduling-dependent).
pub fn run_plan<'a>(
    ctx: &'a EvalContext<'a>,
    steps: &[PlanStep],
    input: Table,
    opts: ExecOptions,
    metrics: Option<&'a ExecMetrics>,
) -> Result<Table, EvalError> {
    let morsel = opts.morsel_size.max(1);
    if opts.num_threads > 1 && steps.first().is_some_and(|s| s.is_source()) {
        // Resolve every source once; whichever path runs below reuses
        // the same lists (no re-collection on the sequential fallback).
        let prepared = prepare_sources(ctx, steps)?;
        let (var, items) = prepared[0].as_ref().expect("is_source");
        let total = input.len().saturating_mul(items.len());
        // Below one morsel of work the pool cannot help; fall through to
        // the sequential path.
        if total > morsel {
            let run = run_parallel(
                ctx,
                &steps[1..],
                &prepared[1..],
                &input,
                var,
                items,
                morsel,
                opts.num_threads,
                metrics,
            );
            match run {
                Ok(t) => {
                    if let Some(m) = metrics {
                        m.morsels.add(total.div_ceil(morsel) as u64);
                        m.rows.add(t.len() as u64);
                        m.parallel_runs.inc();
                    }
                    return Ok(t);
                }
                Err(_) => { /* canonical error from the sequential re-run */ }
            }
        }
        let pipeline = build_prepared(ctx, steps, &prepared, input, morsel, metrics)?;
        let t = run_to_table(pipeline)?;
        if let Some(m) = metrics {
            m.morsels.inc();
            m.rows.add(t.len() as u64);
        }
        return Ok(t);
    }
    let pipeline = build_pipeline(ctx, steps, input, morsel, metrics)?;
    let t = run_to_table(pipeline)?;
    if let Some(m) = metrics {
        m.morsels.inc();
        m.rows.add(t.len() as u64);
    }
    Ok(t)
}

/// [`run_plan`] with per-operator instrumentation: the same dispatch
/// decisions and the same output rows, but every operator is wrapped in
/// a measuring shim and the per-morsel measurements are merged — in
/// claim-index order, like the rows — into one [`PlanProfile`].
///
/// The counters each morsel writes are plain thread-local cells, not
/// atomics: profiling costs one `Instant::now()` pair per batch and
/// nothing at all when this entry point is not used.
pub fn run_plan_profiled<'a>(
    ctx: &'a EvalContext<'a>,
    steps: &[PlanStep],
    input: Table,
    opts: ExecOptions,
) -> Result<(Table, PlanProfile), EvalError> {
    let morsel = opts.morsel_size.max(1);
    if opts.num_threads > 1 && steps.first().is_some_and(|s| s.is_source()) {
        let prepared = prepare_sources(ctx, steps)?;
        let (var, items) = prepared[0].as_ref().expect("is_source");
        let total = input.len().saturating_mul(items.len());
        if total > morsel {
            match run_parallel_profiled(
                ctx,
                steps,
                &prepared,
                &input,
                var,
                items,
                morsel,
                opts.num_threads,
            ) {
                Ok(r) => return Ok(r),
                Err(_) => { /* canonical error from the sequential re-run */ }
            }
        }
        return run_sequential_profiled(ctx, steps, &prepared, input, morsel);
    }
    let prepared = prepare_sources(ctx, steps)?;
    run_sequential_profiled(ctx, steps, &prepared, input, morsel)
}

/// One profiled pipeline over the whole input on the calling thread.
fn run_sequential_profiled<'a>(
    ctx: &'a EvalContext<'a>,
    steps: &[PlanStep],
    prepared: &[PreparedSource],
    input: Table,
    morsel: usize,
) -> Result<(Table, PlanProfile), EvalError> {
    let slot = Rc::new(RefCell::new(vec![OpStats::default(); steps.len()]));
    let pipeline = build_profiled(ctx, steps, prepared, input, morsel, &slot, 0)?;
    // (Profiled runs report through `PlanProfile`, not `ExecMetrics`.)
    let t = run_to_table(pipeline)?;
    let stats = slot.borrow().clone();
    Ok((
        t,
        PlanProfile {
            steps: stats,
            morsels: 1,
            parallel: false,
        },
    ))
}

/// The profiled mirror of [`run_parallel`]: each worker measures its own
/// morsels into private cells; per-morsel profiles are summed in
/// claim-index order alongside the row merge. `steps` still includes the
/// source step (index 0); the source's work — reconstructing the
/// morsel's rows — is measured directly and attributed to it.
#[allow(clippy::too_many_arguments)]
fn run_parallel_profiled<'a>(
    ctx: &'a EvalContext<'a>,
    steps: &[PlanStep],
    prepared: &[PreparedSource],
    driving: &Table,
    var: &str,
    items: &[Value],
    morsel: usize,
    threads: usize,
) -> Result<(Table, PlanProfile), EvalError> {
    let rest = &steps[1..];
    let rest_sources = &prepared[1..];
    let total = driving.len() * items.len();
    let n_morsels = total.div_ceil(morsel);
    let src_schema = driving.schema().with_field(var.to_string());

    let slots = parallel_morsels(threads, n_morsels, |i| {
        let lo = i * morsel;
        let hi = ((i + 1) * morsel).min(total);
        let per_row = items.len();
        let t0 = std::time::Instant::now();
        let mut t = Table::empty(src_schema.clone());
        for idx in lo..hi {
            let mut r = driving.rows()[idx / per_row].cloned_with_extra(1);
            r.push(items[idx % per_row].clone());
            t.push(r);
        }
        let src_nanos = t0.elapsed().as_nanos() as u64;
        let slot = Rc::new(RefCell::new(vec![OpStats::default(); steps.len()]));
        {
            let mut s = slot.borrow_mut();
            s[0] = OpStats {
                rows: (hi - lo) as u64,
                batches: 1,
                nanos: src_nanos,
                ..OpStats::default()
            };
        }
        let pipeline = build_profiled(ctx, rest, rest_sources, t, morsel, &slot, 1)?;
        let out = run_to_table(pipeline)?;
        let stats = slot.borrow().clone();
        Ok((out, stats))
    })?;

    let mut out: Option<Table> = None;
    let mut stats = vec![OpStats::default(); steps.len()];
    for slot in slots {
        let Some((t, part)) = slot else { continue };
        for (acc, s) in stats.iter_mut().zip(&part) {
            acc.merge(s);
        }
        match &mut out {
            None => out = Some(t),
            Some(acc) => {
                for r in t.into_rows() {
                    acc.push(r);
                }
            }
        }
    }
    match out {
        Some(t) => Ok((
            t,
            PlanProfile {
                steps: stats,
                morsels: n_morsels as u64,
                parallel: true,
            },
        )),
        // total > morsel ≥ 1 guarantees at least one morsel ran.
        None => unreachable!("parallel run with zero morsels"),
    }
}

/// [`build_prepared`] with a measuring shim around every attached step.
/// Step `i` accumulates into `slot[base + i]` (`base` skips entries the
/// caller fills directly, e.g. the parallel path's source step).
fn build_profiled<'a>(
    ctx: &'a EvalContext<'a>,
    steps: &[PlanStep],
    prepared: &[PreparedSource],
    input: Table,
    morsel_size: usize,
    slot: &Rc<RefCell<Vec<OpStats>>>,
    base: usize,
) -> Result<Box<dyn Operator + 'a>, EvalError> {
    let cap = morsel_size.max(1);
    let mut op: Box<dyn Operator + 'a> = Box::new(TableScan::new(input, cap));
    for (i, (step, prep)) in steps.iter().zip(prepared).enumerate() {
        // Profiled pipelines report through `OpStats`, not `ExecMetrics`.
        op = attach(ctx, step, prep, op, cap, None)?;
        op = Box::new(ProfiledOp {
            inner: op,
            slot: Rc::clone(slot),
            idx: base + i,
        });
    }
    Ok(op)
}

/// The generic morsel dispatcher behind [`run_plan`] and the
/// partial-aggregation pushdown: `threads` scoped workers claim morsel
/// indices `0..n_morsels` from a shared atomic counter, run `work` on
/// each, and the per-morsel results are returned **indexed by morsel** so
/// the caller can merge them in claim-index order (the determinism
/// contract). After any failure remaining morsels are skipped (`None`
/// slots); the first stored error is returned in place of the slots.
pub(crate) fn parallel_morsels<P, F>(
    threads: usize,
    n_morsels: usize,
    work: F,
) -> Result<Vec<Option<P>>, EvalError>
where
    P: Send,
    F: Fn(usize) -> Result<P, EvalError> + Sync,
{
    let next = AtomicUsize::new(0);
    let failed = AtomicBool::new(false);
    let slots: Mutex<Vec<Option<Result<P, EvalError>>>> =
        Mutex::new((0..n_morsels).map(|_| None).collect());

    std::thread::scope(|s| {
        for _ in 0..threads.min(n_morsels) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n_morsels || failed.load(Ordering::Relaxed) {
                    break;
                }
                let res = work(i);
                if res.is_err() {
                    failed.store(true, Ordering::Relaxed);
                }
                slots.lock().unwrap()[i] = Some(res);
            });
        }
    });

    let mut out = Vec::with_capacity(n_morsels);
    for slot in slots.into_inner().unwrap() {
        match slot {
            // Skipped after a failure elsewhere; callers re-run
            // sequentially for the canonical error.
            None => out.push(None),
            Some(Err(e)) => return Err(e),
            Some(Ok(p)) => out.push(Some(p)),
        }
    }
    Ok(out)
}

/// Runs `rest` (the plan minus its source, with `rest_sources` its
/// pre-resolved scan lists) over every morsel of `driving × items`, on
/// `threads` scoped workers claiming morsels from a shared atomic
/// counter, and merges the partial tables in morsel order.
#[allow(clippy::too_many_arguments)]
fn run_parallel<'a>(
    ctx: &'a EvalContext<'a>,
    rest: &[PlanStep],
    rest_sources: &[PreparedSource],
    driving: &Table,
    var: &str,
    items: &[Value],
    morsel: usize,
    threads: usize,
    metrics: Option<&'a ExecMetrics>,
) -> Result<Table, EvalError> {
    let total = driving.len() * items.len();
    let n_morsels = total.div_ceil(morsel);
    let src_schema = driving.schema().with_field(var.to_string());

    let slots = parallel_morsels(threads, n_morsels, |i| {
        let lo = i * morsel;
        let hi = ((i + 1) * morsel).min(total);
        run_morsel(
            ctx,
            rest,
            rest_sources,
            driving,
            &src_schema,
            items,
            lo..hi,
            morsel,
            metrics,
        )
    })?;

    let mut out: Option<Table> = None;
    for slot in slots {
        match slot {
            None => {}
            Some(t) => match &mut out {
                None => out = Some(t),
                Some(acc) => {
                    for r in t.into_rows() {
                        acc.push(r);
                    }
                }
            },
        }
    }
    match out {
        Some(t) => Ok(t),
        // total > morsel ≥ 1 guarantees at least one morsel ran.
        None => unreachable!("parallel run with zero morsels"),
    }
}

/// Reconstructs the source rows of one morsel (indices `range` of the
/// row-major `driving × items` product) and runs the remaining pipeline
/// over them.
#[allow(clippy::too_many_arguments)]
fn run_morsel<'a>(
    ctx: &'a EvalContext<'a>,
    rest: &[PlanStep],
    rest_sources: &[PreparedSource],
    driving: &Table,
    src_schema: &Arc<Schema>,
    items: &[Value],
    range: std::ops::Range<usize>,
    morsel: usize,
    metrics: Option<&'a ExecMetrics>,
) -> Result<Table, EvalError> {
    let per_row = items.len();
    let mut t = Table::empty(src_schema.clone());
    for idx in range {
        let mut r = driving.rows()[idx / per_row].cloned_with_extra(1);
        r.push(items[idx % per_row].clone());
        t.push(r);
    }
    let pipeline = build_prepared(ctx, rest, rest_sources, t, morsel, metrics)?;
    run_to_table(pipeline)
}

/// A source step's resolved scan list: the bound column plus the
/// `Arc`-shared items, or `None` for non-source steps.
pub(crate) type PreparedSource = Option<(String, Arc<[Value]>)>;

/// Resolves every source step of a plan to its scan list, once. Parallel
/// runs share the result across all morsels of the worker pool, so a
/// second scan inside the pipeline (a disconnected pattern) is not
/// re-collected per morsel.
pub(crate) fn prepare_sources(
    ctx: &EvalContext<'_>,
    steps: &[PlanStep],
) -> Result<Vec<PreparedSource>, EvalError> {
    steps
        .iter()
        .map(|s| Ok(source_items(ctx, s)?.map(|(var, items)| (var, items.into()))))
        .collect()
}

/// Materializes the item list a source step scans — the node or
/// relationship bindings it would push onto every driving row — or `None`
/// when the step is not a source.
fn source_items(
    ctx: &EvalContext<'_>,
    step: &PlanStep,
) -> Result<Option<(String, Vec<Value>)>, EvalError> {
    Ok(match step {
        PlanStep::AllNodesScan { var } => {
            Some((var.clone(), ctx.graph.nodes().map(Value::Node).collect()))
        }
        PlanStep::NodeIndexScan { var, label } => {
            let nodes = match ctx.graph.interner().get(label) {
                Some(sym) => ctx
                    .graph
                    .nodes_with_label(sym)
                    .iter()
                    .map(|&n| Value::Node(n))
                    .collect(),
                None => Vec::new(),
            };
            Some((var.clone(), nodes))
        }
        PlanStep::PropertyIndexSeek {
            var,
            label,
            key,
            value,
        } => {
            // The value is a literal or parameter: evaluable without a row.
            let v = eval_expr(ctx, &cypher_core::expr::NoVars, value)?;
            // `{k: null}` never matches (`=` with null is not true), and
            // the index only answers equivalence queries — guard it out.
            let interner = ctx.graph.interner();
            let nodes = if v.is_null() {
                Vec::new()
            } else {
                match (label, interner.get(key)) {
                    (_, None) => Vec::new(),
                    // Composite (label, key, value) seek.
                    (Some(l), Some(k)) => match interner.get(l) {
                        Some(l) => ctx.graph.nodes_with_label_prop(l, k, &v),
                        None => Vec::new(),
                    },
                    // Key-only seek.
                    (None, Some(k)) => ctx.graph.nodes_with_prop(k, &v),
                }
            };
            Some((var.clone(), nodes.into_iter().map(Value::Node).collect()))
        }
        PlanStep::RelScan { var } => {
            Some((var.clone(), ctx.graph.rels().map(Value::Rel).collect()))
        }
        _ => None,
    })
}

/// Builds the operator pipeline for a compiled `MATCH` plan over a driving
/// table. `morsel_size` caps the batches the sources and expands emit.
pub fn build_pipeline<'a>(
    ctx: &'a EvalContext<'a>,
    steps: &[PlanStep],
    input: Table,
    morsel_size: usize,
    metrics: Option<&'a ExecMetrics>,
) -> Result<Box<dyn Operator + 'a>, EvalError> {
    let prepared = prepare_sources(ctx, steps)?;
    build_prepared(ctx, steps, &prepared, input, morsel_size, metrics)
}

/// [`build_pipeline`] over pre-resolved source lists (one entry per step).
pub(crate) fn build_prepared<'a>(
    ctx: &'a EvalContext<'a>,
    steps: &[PlanStep],
    prepared: &[PreparedSource],
    input: Table,
    morsel_size: usize,
    metrics: Option<&'a ExecMetrics>,
) -> Result<Box<dyn Operator + 'a>, EvalError> {
    let cap = morsel_size.max(1);
    let mut op: Box<dyn Operator + 'a> = Box::new(TableScan::new(input, cap));
    for (step, prep) in steps.iter().zip(prepared) {
        op = attach(ctx, step, prep, op, cap, metrics)?;
    }
    Ok(op)
}

fn col_idx(schema: &Schema, name: &str) -> Result<usize, EvalError> {
    schema
        .index_of(name)
        .ok_or_else(|| EvalError::new(format!("internal: unknown plan column {name:?}")))
}

fn attach<'a>(
    ctx: &'a EvalContext<'a>,
    step: &PlanStep,
    prep: &PreparedSource,
    child: Box<dyn Operator + 'a>,
    cap: usize,
    metrics: Option<&'a ExecMetrics>,
) -> Result<Box<dyn Operator + 'a>, EvalError> {
    let schema = child.schema().clone();
    if let Some((var, items)) = prep {
        return Ok(Box::new(ItemScan {
            schema: schema.with_field(var.clone()),
            child,
            items: Arc::clone(items),
            cap,
            input: None,
            row_idx: 0,
            item_idx: 0,
        }));
    }
    Ok(match step {
        PlanStep::Argument { var } => {
            col_idx(&schema, var)?; // validated; pass-through
            child
        }
        PlanStep::AllNodesScan { .. }
        | PlanStep::NodeIndexScan { .. }
        | PlanStep::PropertyIndexSeek { .. }
        | PlanStep::RelScan { .. } => unreachable!("sources handled above"),
        PlanStep::Expand {
            from,
            rel,
            to,
            dir,
            types,
            lo,
            hi,
            single,
            reversed,
            exclude,
            props,
        } => {
            let from_idx = col_idx(&schema, from)?;
            let rel_bound = schema.index_of(rel);
            let to_bound = schema.index_of(to);
            let mut out_schema = schema.clone();
            if rel_bound.is_none() {
                out_schema = out_schema.with_field(rel.clone());
            }
            if to_bound.is_none() && to != rel {
                out_schema = out_schema.with_field(to.clone());
            }
            let exclude_idx: Vec<usize> = exclude
                .iter()
                .map(|c| col_idx(&schema, c))
                .collect::<Result<_, _>>()?;
            let type_syms = resolve_types(ctx, types);
            // Per-hop property keys resolved once per operator; `None`
            // marks a key that was never interned (no hop can satisfy it).
            let props = props
                .iter()
                .map(|(k, e)| (ctx.graph.interner().get(k), e.clone()))
                .collect();
            Box::new(ExpandOp {
                ctx,
                schema: out_schema,
                child,
                from_idx,
                rel_bound,
                to_bound,
                dir: dir_of(*dir),
                type_syms,
                lo: *lo,
                hi: *hi,
                single: *single,
                reversed: *reversed,
                exclude_idx,
                props,
                in_schema: schema,
                cap,
                input: None,
                row_idx: 0,
                pending: Vec::new(),
            })
        }
        PlanStep::MultiwayIntersect {
            to,
            guards,
            labels,
            exclude,
        } => {
            let mut out_schema = schema.clone();
            let mut gstates = Vec::with_capacity(guards.len());
            for g in guards {
                let from_idx = col_idx(&schema, &g.from)?;
                out_schema = out_schema.with_field(g.rel.clone());
                let props = g
                    .props
                    .iter()
                    .map(|(k, e)| (ctx.graph.interner().get(k), e.clone()))
                    .collect();
                gstates.push(IntersectGuardState {
                    from_idx,
                    dir: dir_of(g.dir),
                    type_syms: resolve_types(ctx, &g.types),
                    props,
                });
            }
            let out_schema = out_schema.with_field(to.clone());
            let exclude_idx: Vec<usize> = exclude
                .iter()
                .map(|c| col_idx(&schema, c))
                .collect::<Result<_, _>>()?;
            let label_syms: Option<Vec<Symbol>> =
                labels.iter().map(|l| ctx.graph.interner().get(l)).collect();
            Box::new(MultiwayIntersectOp {
                ctx,
                schema: out_schema,
                in_schema: schema,
                child,
                guards: gstates,
                label_syms,
                exclude_idx,
                adj: ctx.graph.sorted_adjacency(),
                metrics,
                cap,
                input: None,
                row_idx: 0,
                pending: Vec::new(),
                probes: 0,
                isect: 0,
                rows_out: 0,
                flushed: false,
            })
        }
        PlanStep::FilterLabels { var, labels } => {
            let idx = col_idx(&schema, var)?;
            let syms: Option<Vec<Symbol>> =
                labels.iter().map(|l| ctx.graph.interner().get(l)).collect();
            Box::new(LabelFilter {
                ctx,
                schema,
                child,
                idx,
                syms,
            })
        }
        PlanStep::FilterProps { var, props } => {
            let idx = col_idx(&schema, var)?;
            // Property keys are interned symbols; resolve them once per
            // operator instead of hashing the key string on every row.
            let props = props
                .iter()
                .map(|(k, e)| (ctx.graph.interner().get(k), e.clone()))
                .collect();
            Box::new(PropsFilter {
                ctx,
                schema,
                child,
                idx,
                props,
            })
        }
        PlanStep::FilterEndpoints {
            rel,
            from,
            to,
            dir,
            types,
            exclude,
        } => {
            let rel_idx = col_idx(&schema, rel)?;
            let from_idx = col_idx(&schema, from)?;
            let to_idx = col_idx(&schema, to)?;
            let exclude_idx: Vec<usize> = exclude
                .iter()
                .map(|c| col_idx(&schema, c))
                .collect::<Result<_, _>>()?;
            Box::new(EndpointFilter {
                ctx,
                schema,
                child,
                rel_idx,
                from_idx,
                to_idx,
                dir: *dir,
                type_syms: resolve_types(ctx, types),
                exclude_idx,
            })
        }
        PlanStep::FilterExpr { pred } => Box::new(ExprFilter {
            ctx,
            schema,
            child,
            pred: pred.clone(),
        }),
        PlanStep::PathBind { var, elements } => {
            let resolved: Vec<(bool, bool, usize)> = elements
                .iter()
                .map(|e| match e {
                    PathElem::Node(c) => Ok((true, false, col_idx(&schema, c)?)),
                    PathElem::Rel(c) => Ok((false, false, col_idx(&schema, c)?)),
                    PathElem::RelList(c) => Ok((false, true, col_idx(&schema, c)?)),
                })
                .collect::<Result<_, EvalError>>()?;
            Box::new(PathBindOp {
                ctx,
                schema: schema.with_field(var.clone()),
                child,
                elements: resolved,
            })
        }
    })
}

/// `None` in the inner option marks a type that was never interned — such
/// a pattern can match nothing.
fn resolve_types(ctx: &EvalContext<'_>, types: &[String]) -> Option<Vec<Symbol>> {
    if types.is_empty() {
        return Some(Vec::new());
    }
    let resolved: Vec<Symbol> = types
        .iter()
        .filter_map(|t| ctx.graph.interner().get(t))
        .collect();
    if resolved.is_empty() {
        None // no admissible type exists in this graph
    } else {
        Some(resolved)
    }
}

fn dir_of(d: Dir) -> Direction {
    match d {
        Dir::Out => Direction::Outgoing,
        Dir::In => Direction::Incoming,
        Dir::Both => Direction::Both,
    }
}

// ---------------------------------------------------------------------------
// Sources
// ---------------------------------------------------------------------------

struct TableScan {
    schema: Arc<Schema>,
    rows: std::vec::IntoIter<Record>,
    cap: usize,
}

impl TableScan {
    fn new(t: Table, cap: usize) -> Self {
        let schema = t.schema().clone();
        TableScan {
            schema,
            rows: t.into_rows().into_iter(),
            cap,
        }
    }
}

impl Operator for TableScan {
    fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn next_batch(&mut self) -> Result<Option<RowBatch>, EvalError> {
        let rows: Vec<Record> = self.rows.by_ref().take(self.cap).collect();
        Ok(if rows.is_empty() {
            None
        } else {
            Some(RowBatch::from_rows(rows))
        })
    }
}

/// The one scan operator behind `AllNodesScan`, `NodeIndexScan`,
/// `PropertyIndexSeek` and `RelScan`: for every driving row, emit one
/// output row per item of a pre-materialized, `Arc`-shared list. The items
/// are *not* cloned per operator — parallel workers and re-built pipelines
/// share one allocation.
struct ItemScan<'a> {
    schema: Arc<Schema>,
    child: Box<dyn Operator + 'a>,
    items: Arc<[Value]>,
    cap: usize,
    /// The input batch currently being multiplied, with its cursors.
    input: Option<RowBatch>,
    row_idx: usize,
    item_idx: usize,
}

impl Operator for ItemScan<'_> {
    fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn next_batch(&mut self) -> Result<Option<RowBatch>, EvalError> {
        if self.items.is_empty() {
            // No output is possible, but upstream evaluation *errors*
            // must still surface: drain the child instead of ending the
            // stream outright.
            while self.child.next_batch()?.is_some() {}
            return Ok(None);
        }
        loop {
            let Some(batch) = self.input.take() else {
                match self.child.next_batch()? {
                    None => return Ok(None),
                    Some(b) => {
                        self.row_idx = 0;
                        self.item_idx = 0;
                        self.input = Some(b);
                        continue;
                    }
                }
            };
            let remaining = (batch.len() - self.row_idx)
                .saturating_mul(self.items.len())
                .saturating_sub(self.item_idx);
            let mut out = RowBatch::with_capacity(self.cap.min(remaining));
            while self.row_idx < batch.len() && out.len() < self.cap {
                let row = &batch.rows()[self.row_idx];
                while self.item_idx < self.items.len() && out.len() < self.cap {
                    let mut r = row.cloned_with_extra(1);
                    r.push(self.items[self.item_idx].clone());
                    out.push(r);
                    self.item_idx += 1;
                }
                if self.item_idx == self.items.len() {
                    self.item_idx = 0;
                    self.row_idx += 1;
                }
            }
            if self.row_idx < batch.len() {
                self.input = Some(batch); // morsel boundary mid-batch
            }
            if !out.is_empty() {
                return Ok(Some(out));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Expand
// ---------------------------------------------------------------------------

struct ExpandOp<'a> {
    ctx: &'a EvalContext<'a>,
    schema: Arc<Schema>,
    in_schema: Arc<Schema>,
    child: Box<dyn Operator + 'a>,
    from_idx: usize,
    rel_bound: Option<usize>,
    to_bound: Option<usize>,
    dir: Direction,
    /// `Some(vec![])` = any type; `Some(list)` = one of; `None` = no
    /// admissible type exists (match nothing).
    type_syms: Option<Vec<Symbol>>,
    lo: u64,
    hi: u64,
    single: bool,
    reversed: bool,
    exclude_idx: Vec<usize>,
    /// Per-hop property conditions, keys pre-resolved at build time.
    props: Vec<(Option<Symbol>, Expr)>,
    cap: usize,
    /// Current input batch plus cursor, and the expansion of the current
    /// row still awaiting emission (stored reversed; popped off the end).
    input: Option<RowBatch>,
    row_idx: usize,
    pending: Vec<Record>,
}

impl ExpandOp<'_> {
    fn type_ok(&self, r: RelId) -> bool {
        match &self.type_syms {
            None => false,
            Some(list) if list.is_empty() => true,
            Some(list) => {
                let t = self.ctx.graph.rel_type(r).expect("live rel");
                list.contains(&t)
            }
        }
    }

    fn rel_excluded(&self, row: &Record, r: RelId) -> bool {
        if !self.ctx.config.morphism.rels_distinct() {
            return false;
        }
        for &i in &self.exclude_idx {
            match row.get(i) {
                Value::Rel(r2) if *r2 == r => return true,
                Value::List(items)
                    if items
                        .iter()
                        .any(|v| matches!(v, Value::Rel(r2) if *r2 == r)) =>
                {
                    return true;
                }
                _ => {}
            }
        }
        false
    }

    /// Per-hop property conditions (variable-length patterns); expected
    /// values depend only on the driving row, so they are evaluated once.
    fn props_ok(&self, expected: &[(Symbol, Value)], r: RelId) -> bool {
        for (k, want) in expected {
            match self.ctx.graph.rel_prop(r, *k) {
                Some(v) if v.equals(want).is_true() => {}
                _ => return false,
            }
        }
        true
    }

    fn effective_hi(&self) -> u64 {
        if self.hi != u64::MAX {
            return self.hi;
        }
        match self.ctx.config.morphism {
            Morphism::Homomorphism => self.ctx.config.var_length_cap,
            _ => self.ctx.graph.rel_count() as u64,
        }
    }

    /// Computes all expansions for one input row.
    fn expand_row(&self, row: &Record) -> Result<Vec<Record>, EvalError> {
        let mut out = Vec::new();
        let from = match row.get(self.from_idx) {
            Value::Node(n) => *n,
            Value::Null => return Ok(out),
            other => {
                return err(format!(
                    "Expand source must be a node, got {}",
                    other.type_name()
                ))
            }
        };
        // Type/property conditions apply per traversed hop; when the type
        // or a property key was never interned no hop can satisfy them —
        // but a zero-hop (`*0..`) acceptance is still valid, its hop
        // conditions being vacuous.
        let mut hops_possible = self.type_syms.is_some();
        // Evaluate expected per-hop property values once per row (the
        // keys were resolved once per operator at build time).
        let mut expected: Vec<(Symbol, Value)> = Vec::with_capacity(self.props.len());
        for (sym, e) in &self.props {
            let Some(sym) = sym else {
                hops_possible = false;
                continue;
            };
            let b = Bindings::new(&self.in_schema, row);
            expected.push((*sym, eval_expr(self.ctx, &b, e)?));
        }

        if self.single {
            if !hops_possible {
                return Ok(out);
            }
            for (r, next) in self.ctx.graph.expand(from, self.dir) {
                if !self.type_ok(r) || self.rel_excluded(row, r) || !self.props_ok(&expected, r) {
                    continue;
                }
                if let Some(ri) = self.rel_bound {
                    if !row.get(ri).equivalent(&Value::Rel(r)) {
                        continue;
                    }
                }
                if let Some(ti) = self.to_bound {
                    if !row.get(ti).equivalent(&Value::Node(next)) {
                        continue;
                    }
                }
                let mut rec = row.cloned_with_extra(2);
                if self.rel_bound.is_none() {
                    rec.push(Value::Rel(r));
                }
                if self.to_bound.is_none() {
                    rec.push(Value::Node(next));
                }
                out.push(rec);
            }
        } else {
            let hi = if hops_possible {
                self.effective_hi()
            } else {
                0
            };
            let mut stack_rels: Vec<RelId> = Vec::new();
            self.var_dfs(row, &expected, from, 0, hi, &mut stack_rels, &mut out)?;
        }
        Ok(out)
    }

    #[allow(clippy::too_many_arguments)]
    fn var_dfs(
        &self,
        row: &Record,
        expected: &[(Symbol, Value)],
        at: NodeId,
        k: u64,
        hi: u64,
        rels: &mut Vec<RelId>,
        out: &mut Vec<Record>,
    ) -> Result<(), EvalError> {
        if k >= self.lo {
            // The DFS collects relationships in traversal order; a
            // reversed step must bind them in pattern order (Section 4.2
            // item (a')), which is the traversal reversed.
            let list = if self.reversed {
                Value::List(rels.iter().rev().map(|&r| Value::Rel(r)).collect())
            } else {
                Value::List(rels.iter().map(|&r| Value::Rel(r)).collect())
            };
            let mut emit = true;
            if let Some(ri) = self.rel_bound {
                emit &= row.get(ri).equivalent(&list);
            }
            if let Some(ti) = self.to_bound {
                emit &= row.get(ti).equivalent(&Value::Node(at));
            }
            if emit {
                let mut rec = row.cloned_with_extra(2);
                if self.rel_bound.is_none() {
                    rec.push(list);
                }
                if self.to_bound.is_none() {
                    rec.push(Value::Node(at));
                }
                out.push(rec);
            }
        }
        if k >= hi {
            return Ok(());
        }
        let distinct = self.ctx.config.morphism.rels_distinct();
        for (r, next) in self.ctx.graph.expand(at, self.dir) {
            if !self.type_ok(r)
                || self.rel_excluded(row, r)
                || (distinct && rels.contains(&r))
                || !self.props_ok(expected, r)
            {
                continue;
            }
            rels.push(r);
            self.var_dfs(row, expected, next, k + 1, hi, rels, out)?;
            rels.pop();
        }
        Ok(())
    }
}

impl Operator for ExpandOp<'_> {
    fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn next_batch(&mut self) -> Result<Option<RowBatch>, EvalError> {
        let mut out = RowBatch::with_capacity(self.cap.min(64));
        loop {
            // Drain the current row's expansion first.
            while out.len() < self.cap {
                match self.pending.pop() {
                    Some(r) => out.push(r),
                    None => break,
                }
            }
            if out.len() >= self.cap {
                return Ok(Some(out));
            }
            // Advance to the next input row.
            let Some(batch) = self.input.take() else {
                match self.child.next_batch()? {
                    Some(b) => {
                        self.row_idx = 0;
                        self.input = Some(b);
                        continue;
                    }
                    None => {
                        return Ok(if out.is_empty() { None } else { Some(out) });
                    }
                }
            };
            if self.row_idx < batch.len() {
                let mut exp = self.expand_row(&batch.rows()[self.row_idx])?;
                exp.reverse(); // pop() then restores natural order
                self.pending = exp;
                self.row_idx += 1;
            }
            if self.row_idx < batch.len() {
                self.input = Some(batch);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Multiway intersect (worst-case-optimal join)
// ---------------------------------------------------------------------------

/// One compiled guard of a [`MultiwayIntersectOp`]: the bound node column
/// the target must be adjacent to, the direction the pattern traverses
/// that edge, and the type/property conditions its relationship must
/// satisfy.
struct IntersectGuardState {
    from_idx: usize,
    dir: Direction,
    /// `Some(vec![])` = any type; `Some(list)` = one of; `None` = no
    /// admissible type exists (match nothing).
    type_syms: Option<Vec<Symbol>>,
    /// Relationship property conditions, keys pre-resolved at build time.
    props: Vec<(Option<Symbol>, Expr)>,
}

/// One guard's position in the sorted adjacency of its (already bound)
/// endpoint. `Both` walks the out and incoming lists as a merged cursor;
/// an incoming entry whose neighbour equals `from` is a self-loop already
/// present in the out list and is skipped, so the union enumerates each
/// `(node, rel)` pair once — exactly what `expand(_, Both)` yields.
struct GuardCursor<'s> {
    out: &'s [Neighbor],
    inc: &'s [Neighbor],
    opos: usize,
    ipos: usize,
    from: NodeId,
    both: bool,
}

impl<'s> GuardCursor<'s> {
    fn new(adj: &'s SortedAdjacency, from: NodeId, dir: Direction) -> Self {
        let (out, inc) = match dir {
            Direction::Outgoing => (adj.out(from), &[][..]),
            Direction::Incoming => (&[][..], adj.inc(from)),
            Direction::Both => (adj.out(from), adj.inc(from)),
        };
        let mut c = GuardCursor {
            out,
            inc,
            opos: 0,
            ipos: 0,
            from,
            both: matches!(dir, Direction::Both),
        };
        c.skip_loops();
        c
    }

    /// Incoming entries at `from` itself are self-loops; in `Both` mode
    /// the out list already carries them.
    fn skip_loops(&mut self) {
        if self.both {
            while self.inc.get(self.ipos).is_some_and(|e| e.node == self.from) {
                self.ipos += 1;
            }
        }
    }

    /// The smallest neighbour node at or beyond the cursor.
    fn current(&self) -> Option<NodeId> {
        match (self.out.get(self.opos), self.inc.get(self.ipos)) {
            (Some(a), Some(b)) => Some(a.node.min(b.node)),
            (Some(a), None) => Some(a.node),
            (None, Some(b)) => Some(b.node),
            (None, None) => None,
        }
    }

    /// Gallops both lists to the first entry with node ≥ `target` and
    /// returns the node found there (`None` when exhausted).
    fn seek(&mut self, target: NodeId, probes: &mut u64) -> Option<NodeId> {
        self.opos = gallop(self.out, self.opos, target, probes);
        self.ipos = gallop(self.inc, self.ipos, target, probes);
        self.skip_loops();
        self.current()
    }

    /// Appends the relationship ids of every entry at exactly `v`. The
    /// cursor must have been seeked to `v`.
    fn rels_at(&self, v: NodeId, out: &mut Vec<RelId>) {
        let mut i = self.opos;
        while let Some(e) = self.out.get(i) {
            if e.node != v {
                break;
            }
            out.push(e.rel);
            i += 1;
        }
        let mut i = self.ipos;
        while let Some(e) = self.inc.get(i) {
            if e.node != v {
                break;
            }
            out.push(e.rel);
            i += 1;
        }
    }

    /// Advances both lists past every entry at `v`.
    fn advance_past(&mut self, v: NodeId) {
        while self.out.get(self.opos).is_some_and(|e| e.node == v) {
            self.opos += 1;
        }
        while self.inc.get(self.ipos).is_some_and(|e| e.node == v) {
            self.ipos += 1;
        }
        self.skip_loops();
    }
}

/// The worst-case-optimal join operator: binds the target variable by
/// *intersecting* the sorted adjacency lists of every already-bound
/// pattern neighbour (leapfrog-style, one galloping cursor per guard),
/// instead of expanding one edge and filtering the rest. For each node in
/// the intersection it enumerates the admissible relationships of every
/// guard and emits one row per combination (Cypher's bag semantics:
/// parallel edges yield one match each), pairwise-distinct when the
/// morphism mode demands relationship-uniqueness.
///
/// Determinism: candidates are produced in ascending node id order and
/// relationship combinations in ascending lexicographic order, a pure
/// function of the input row — morsel-order merging therefore reproduces
/// the sequential row sequence at any thread count.
struct MultiwayIntersectOp<'a> {
    ctx: &'a EvalContext<'a>,
    schema: Arc<Schema>,
    in_schema: Arc<Schema>,
    child: Box<dyn Operator + 'a>,
    guards: Vec<IntersectGuardState>,
    /// `None` when some label was never interned (matches nothing).
    label_syms: Option<Vec<Symbol>>,
    exclude_idx: Vec<usize>,
    adj: Arc<SortedAdjacency>,
    metrics: Option<&'a ExecMetrics>,
    cap: usize,
    /// Current input batch plus cursor, and the expansion of the current
    /// row still awaiting emission (stored reversed; popped off the end).
    input: Option<RowBatch>,
    row_idx: usize,
    pending: Vec<Record>,
    /// Kernel counters, flushed to `metrics` once at end of stream.
    probes: u64,
    isect: u64,
    rows_out: u64,
    flushed: bool,
}

impl MultiwayIntersectOp<'_> {
    fn type_ok(&self, g: &IntersectGuardState, r: RelId) -> bool {
        match &g.type_syms {
            None => false,
            Some(list) if list.is_empty() => true,
            Some(list) => {
                let t = self.ctx.graph.rel_type(r).expect("live rel");
                list.contains(&t)
            }
        }
    }

    fn rel_excluded(&self, row: &Record, r: RelId) -> bool {
        if !self.ctx.config.morphism.rels_distinct() {
            return false;
        }
        for &i in &self.exclude_idx {
            match row.get(i) {
                Value::Rel(r2) if *r2 == r => return true,
                Value::List(items)
                    if items
                        .iter()
                        .any(|v| matches!(v, Value::Rel(r2) if *r2 == r)) =>
                {
                    return true;
                }
                _ => {}
            }
        }
        false
    }

    fn props_ok(&self, expected: &[(Symbol, Value)], r: RelId) -> bool {
        for (k, want) in expected {
            match self.ctx.graph.rel_prop(r, *k) {
                Some(v) if v.equals(want).is_true() => {}
                _ => return false,
            }
        }
        true
    }

    fn labels_ok(&self, n: NodeId) -> bool {
        match &self.label_syms {
            None => false,
            Some(syms) => syms.iter().all(|&l| self.ctx.graph.has_label(n, l)),
        }
    }

    /// Computes all bindings of the target variable for one input row.
    fn intersect_row(
        &self,
        row: &Record,
        probes: &mut u64,
        isect: &mut u64,
    ) -> Result<Vec<Record>, EvalError> {
        let mut out = Vec::new();
        // Resolve every guard's bound endpoint and evaluate its expected
        // relationship property values (once per row, like `ExpandOp`; a
        // never-interned key or type makes the guard unsatisfiable but
        // the remaining expressions are still evaluated so errors
        // surface exactly as the expand-based plan raises them).
        let mut froms = Vec::with_capacity(self.guards.len());
        let mut expected: Vec<Vec<(Symbol, Value)>> = Vec::with_capacity(self.guards.len());
        let mut possible = true;
        for g in &self.guards {
            let from = match row.get(g.from_idx) {
                Value::Node(n) => *n,
                Value::Null => return Ok(out),
                other => {
                    return err(format!(
                        "Expand source must be a node, got {}",
                        other.type_name()
                    ))
                }
            };
            froms.push(from);
            possible &= g.type_syms.is_some();
            let mut exp = Vec::with_capacity(g.props.len());
            for (sym, e) in &g.props {
                let Some(sym) = sym else {
                    possible = false;
                    continue;
                };
                let b = Bindings::new(&self.in_schema, row);
                exp.push((*sym, eval_expr(self.ctx, &b, e)?));
            }
            expected.push(exp);
        }
        if !possible {
            return Ok(out);
        }
        let mut cursors: Vec<GuardCursor<'_>> = self
            .guards
            .iter()
            .zip(&froms)
            .map(|(g, &f)| GuardCursor::new(&self.adj, f, g.dir))
            .collect();
        // Leapfrog: gallop every cursor to the frontier; when all land on
        // the same node it is adjacent to every guard.
        let mut target = match cursors[0].current() {
            Some(n) => n,
            None => return Ok(out),
        };
        let mut rel_lists: Vec<Vec<RelId>> = vec![Vec::new(); self.guards.len()];
        'outer: loop {
            let mut all_equal = true;
            for c in cursors.iter_mut() {
                match c.seek(target, probes) {
                    None => break 'outer,
                    Some(n) if n > target => {
                        target = n;
                        all_equal = false;
                    }
                    Some(_) => {}
                }
            }
            if all_equal {
                *isect += 1;
                if self.labels_ok(target) {
                    let mut any_empty = false;
                    for ((list, c), (g, exp)) in rel_lists
                        .iter_mut()
                        .zip(&cursors)
                        .zip(self.guards.iter().zip(&expected))
                    {
                        list.clear();
                        c.rels_at(target, list);
                        list.retain(|&r| {
                            self.type_ok(g, r)
                                && !self.rel_excluded(row, r)
                                && self.props_ok(exp, r)
                        });
                        // Out- and inc-runs were appended back to back;
                        // restore ascending rel order for determinism.
                        list.sort_unstable();
                        any_empty |= list.is_empty();
                    }
                    if !any_empty {
                        let mut chosen = Vec::with_capacity(self.guards.len());
                        self.emit_combos(row, target, &rel_lists, 0, &mut chosen, &mut out);
                    }
                }
                for c in cursors.iter_mut() {
                    c.advance_past(target);
                }
                match cursors[0].current() {
                    Some(n) => target = n,
                    None => break,
                }
            }
        }
        Ok(out)
    }

    /// Emits one output row per combination of admissible relationships,
    /// ascending-lexicographic, honouring relationship-uniqueness among
    /// the combination itself (`exclude_idx` covered the columns bound
    /// before this operator).
    fn emit_combos(
        &self,
        row: &Record,
        v: NodeId,
        lists: &[Vec<RelId>],
        depth: usize,
        chosen: &mut Vec<RelId>,
        out: &mut Vec<Record>,
    ) {
        if depth == lists.len() {
            let mut rec = row.cloned_with_extra(chosen.len() + 1);
            for &r in chosen.iter() {
                rec.push(Value::Rel(r));
            }
            rec.push(Value::Node(v));
            out.push(rec);
            return;
        }
        let distinct = self.ctx.config.morphism.rels_distinct();
        for &r in &lists[depth] {
            if distinct && chosen.contains(&r) {
                continue;
            }
            chosen.push(r);
            self.emit_combos(row, v, lists, depth + 1, chosen, out);
            chosen.pop();
        }
    }

    fn flush_metrics(&mut self) {
        if self.flushed {
            return;
        }
        self.flushed = true;
        if let Some(m) = self.metrics {
            m.intersect_probes.add(self.probes);
            m.intersect_nodes.add(self.isect);
            m.intersect_rows.add(self.rows_out);
        }
    }
}

impl Operator for MultiwayIntersectOp<'_> {
    fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn next_batch(&mut self) -> Result<Option<RowBatch>, EvalError> {
        let mut out = RowBatch::with_capacity(self.cap.min(64));
        loop {
            // Drain the current row's expansion first.
            while out.len() < self.cap {
                match self.pending.pop() {
                    Some(r) => out.push(r),
                    None => break,
                }
            }
            if out.len() >= self.cap {
                return Ok(Some(out));
            }
            // Advance to the next input row.
            let Some(batch) = self.input.take() else {
                match self.child.next_batch()? {
                    Some(b) => {
                        self.row_idx = 0;
                        self.input = Some(b);
                        continue;
                    }
                    None => {
                        if out.is_empty() {
                            self.flush_metrics();
                            return Ok(None);
                        }
                        return Ok(Some(out));
                    }
                }
            };
            if self.row_idx < batch.len() {
                let (mut probes, mut isect) = (0, 0);
                let mut exp =
                    self.intersect_row(&batch.rows()[self.row_idx], &mut probes, &mut isect)?;
                self.probes += probes;
                self.isect += isect;
                self.rows_out += exp.len() as u64;
                exp.reverse(); // pop() then restores natural order
                self.pending = exp;
                self.row_idx += 1;
            }
            if self.row_idx < batch.len() {
                self.input = Some(batch);
            }
        }
    }

    fn intersect_stats(&self) -> Option<(u64, u64)> {
        Some((self.probes, self.isect))
    }
}

// ---------------------------------------------------------------------------
// Filters
// ---------------------------------------------------------------------------

struct LabelFilter<'a> {
    ctx: &'a EvalContext<'a>,
    schema: Arc<Schema>,
    child: Box<dyn Operator + 'a>,
    idx: usize,
    /// `None` when some label was never interned (matches nothing).
    syms: Option<Vec<Symbol>>,
}

impl Operator for LabelFilter<'_> {
    fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn next_batch(&mut self) -> Result<Option<RowBatch>, EvalError> {
        // A never-interned label can match nothing, but upstream
        // evaluation errors must still surface: drain the child rather
        // than ending the stream outright.
        let Some(syms) = &self.syms else {
            while self.child.next_batch()?.is_some() {}
            return Ok(None);
        };
        while let Some(batch) = self.child.next_batch()? {
            let mut out = RowBatch::with_capacity(batch.len());
            for row in batch.into_rows() {
                match row.get(self.idx) {
                    Value::Node(n) => {
                        if syms.iter().all(|&l| self.ctx.graph.has_label(*n, l)) {
                            out.push(row);
                        }
                    }
                    Value::Null => {}
                    other => return err(format!("label filter on non-node {}", other.type_name())),
                }
            }
            if !out.is_empty() {
                return Ok(Some(out));
            }
        }
        Ok(None)
    }
}

struct PropsFilter<'a> {
    ctx: &'a EvalContext<'a>,
    schema: Arc<Schema>,
    child: Box<dyn Operator + 'a>,
    idx: usize,
    /// `(symbol, expected-value expr)`; a `None` symbol is a key that was
    /// never interned — no entity can carry it.
    props: Vec<(Option<Symbol>, Expr)>,
}

impl PropsFilter<'_> {
    fn keep(&self, row: &Record) -> Result<bool, EvalError> {
        let g = self.ctx.graph;
        for (sym, e) in &self.props {
            let b = Bindings::new(&self.schema, row);
            let want = eval_expr(self.ctx, &b, e)?;
            let got = match row.get(self.idx) {
                Value::Node(n) => sym.and_then(|s| g.node_prop(*n, s)),
                Value::Rel(r) => sym.and_then(|s| g.rel_prop(*r, s)),
                Value::Null => return Ok(false),
                other => return err(format!("property filter on {}", other.type_name())),
            };
            match got {
                Some(v) if v.equals(&want).is_true() => {}
                _ => return Ok(false),
            }
        }
        Ok(true)
    }
}

impl Operator for PropsFilter<'_> {
    fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn next_batch(&mut self) -> Result<Option<RowBatch>, EvalError> {
        while let Some(batch) = self.child.next_batch()? {
            let mut out = RowBatch::with_capacity(batch.len());
            for row in batch.into_rows() {
                if self.keep(&row)? {
                    out.push(row);
                }
            }
            if !out.is_empty() {
                return Ok(Some(out));
            }
        }
        Ok(None)
    }
}

struct EndpointFilter<'a> {
    ctx: &'a EvalContext<'a>,
    schema: Arc<Schema>,
    child: Box<dyn Operator + 'a>,
    rel_idx: usize,
    from_idx: usize,
    to_idx: usize,
    dir: Dir,
    type_syms: Option<Vec<Symbol>>,
    exclude_idx: Vec<usize>,
}

impl EndpointFilter<'_> {
    fn keep(&self, row: &Record) -> bool {
        let g = self.ctx.graph;
        let (Value::Rel(r), Value::Node(a), Value::Node(b)) = (
            row.get(self.rel_idx),
            row.get(self.from_idx),
            row.get(self.to_idx),
        ) else {
            return false;
        };
        let (r, a, b) = (*r, *a, *b);
        // Type admissibility.
        match &self.type_syms {
            None => return false,
            Some(list) if list.is_empty() => {}
            Some(list) => {
                if !list.contains(&g.rel_type(r).expect("live rel")) {
                    return false;
                }
            }
        }
        // Endpoint agreement per direction (item (e′) of §4.2).
        let (src, tgt) = (g.src(r).unwrap(), g.tgt(r).unwrap());
        let ok = match self.dir {
            Dir::Out => src == a && tgt == b,
            Dir::In => src == b && tgt == a,
            Dir::Both => (src == a && tgt == b) || (src == b && tgt == a),
        };
        if !ok {
            return false;
        }
        // Relationship isomorphism between scanned rel columns.
        if self.ctx.config.morphism.rels_distinct() {
            for &i in &self.exclude_idx {
                if let Value::Rel(r2) = row.get(i) {
                    if *r2 == r {
                        return false;
                    }
                }
            }
        }
        true
    }
}

impl Operator for EndpointFilter<'_> {
    fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn next_batch(&mut self) -> Result<Option<RowBatch>, EvalError> {
        while let Some(batch) = self.child.next_batch()? {
            let mut out = RowBatch::with_capacity(batch.len());
            for row in batch.into_rows() {
                if self.keep(&row) {
                    out.push(row);
                }
            }
            if !out.is_empty() {
                return Ok(Some(out));
            }
        }
        Ok(None)
    }
}

struct ExprFilter<'a> {
    ctx: &'a EvalContext<'a>,
    schema: Arc<Schema>,
    child: Box<dyn Operator + 'a>,
    pred: Expr,
}

impl Operator for ExprFilter<'_> {
    fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn next_batch(&mut self) -> Result<Option<RowBatch>, EvalError> {
        while let Some(batch) = self.child.next_batch()? {
            let mut out = RowBatch::with_capacity(batch.len());
            for row in batch.into_rows() {
                let b = Bindings::new(&self.schema, &row);
                if truth_of(self.ctx, &b, &self.pred)? == Tri::True {
                    out.push(row);
                }
            }
            if !out.is_empty() {
                return Ok(Some(out));
            }
        }
        Ok(None)
    }
}

// ---------------------------------------------------------------------------
// Path materialization
// ---------------------------------------------------------------------------

struct PathBindOp<'a> {
    ctx: &'a EvalContext<'a>,
    schema: Arc<Schema>,
    child: Box<dyn Operator + 'a>,
    /// `(is_node, is_list, column)` triples in path order.
    elements: Vec<(bool, bool, usize)>,
}

impl PathBindOp<'_> {
    fn bind(&self, mut row: Record) -> Result<Record, EvalError> {
        let g = self.ctx.graph;
        let mut path: Option<Path> = None;
        let mut current: Option<NodeId> = None;
        let extend = |path: &mut Option<Path>, current: &mut Option<NodeId>, r: RelId| {
            let cur = current.expect("path starts with a node");
            let next = g.other_end(r, cur).expect("live rel endpoint");
            path.as_mut().expect("path initialized").push(r, next);
            *current = Some(next);
        };
        for &(is_node, is_list, idx) in &self.elements {
            if is_node {
                if path.is_none() {
                    let Value::Node(n) = row.get(idx) else {
                        return err("path element is not a node");
                    };
                    path = Some(Path::single(*n));
                    current = Some(*n);
                }
                // Interior node columns are consistency-checked by the
                // matcher; the walk itself determines them.
            } else if is_list {
                let Value::List(items) = row.get(idx).clone() else {
                    return err("variable-length path element is not a list");
                };
                for v in items {
                    let Value::Rel(r) = v else {
                        return err("path relationship list holds a non-relationship");
                    };
                    extend(&mut path, &mut current, r);
                }
            } else {
                let Value::Rel(r) = row.get(idx) else {
                    return err("path element is not a relationship");
                };
                extend(&mut path, &mut current, *r);
            }
        }
        row.push(Value::Path(path.expect("non-empty path pattern")));
        Ok(row)
    }
}

impl Operator for PathBindOp<'_> {
    fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn next_batch(&mut self) -> Result<Option<RowBatch>, EvalError> {
        let Some(batch) = self.child.next_batch()? else {
            return Ok(None);
        };
        let mut out = RowBatch::with_capacity(batch.len());
        for row in batch.into_rows() {
            out.push(self.bind(row)?);
        }
        Ok(Some(out))
    }
}
