//! Volcano-style physical operators.
//!
//! The paper (Section 2): "The final query compilation uses either a
//! simple tuple-at-a-time iterator-based execution model, or compiles the
//! query to Java bytecode". We implement the iterator model: every
//! operator exposes `next()` pulling one record at a time from its child.
//! `Expand` exploits the native adjacency of [`cypher_graph`]: "it
//! utilizes the fact that the data representation contains direct
//! references from each node via its edges to the related nodes".

use crate::plan::{PathElem, PlanStep};
use cypher_ast::expr::Expr;
use cypher_ast::pattern::Dir;
use cypher_core::error::{err, EvalError};
use cypher_core::expr::{eval_expr, truth_of, Bindings};
use cypher_core::morphism::Morphism;
use cypher_core::table::{Record, Schema, Table};
use cypher_core::EvalContext;
use cypher_graph::{Direction, NodeId, Path, RelId, Symbol, Tri, Value};
use std::sync::Arc;

/// A pull-based operator: a stream of records with a fixed schema.
pub trait Operator {
    /// The output schema.
    fn schema(&self) -> &Arc<Schema>;
    /// Pulls the next record, `None` at end of stream.
    fn next(&mut self) -> Result<Option<Record>, EvalError>;
}

/// Drains an operator into a materialized table.
pub fn run_to_table(mut op: Box<dyn Operator + '_>) -> Result<Table, EvalError> {
    let schema = op.schema().clone();
    let mut out = Table::empty(schema);
    while let Some(r) = op.next()? {
        out.push(r);
    }
    Ok(out)
}

/// Builds the operator pipeline for a compiled `MATCH` plan over a driving
/// table.
pub fn build_pipeline<'a>(
    ctx: &'a EvalContext<'a>,
    steps: &[PlanStep],
    input: Table,
) -> Result<Box<dyn Operator + 'a>, EvalError> {
    let mut op: Box<dyn Operator + 'a> = Box::new(TableScan::new(input));
    for step in steps {
        op = attach(ctx, step, op)?;
    }
    Ok(op)
}

fn col_idx(schema: &Schema, name: &str) -> Result<usize, EvalError> {
    schema
        .index_of(name)
        .ok_or_else(|| EvalError::new(format!("internal: unknown plan column {name:?}")))
}

fn attach<'a>(
    ctx: &'a EvalContext<'a>,
    step: &PlanStep,
    child: Box<dyn Operator + 'a>,
) -> Result<Box<dyn Operator + 'a>, EvalError> {
    let schema = child.schema().clone();
    Ok(match step {
        PlanStep::Argument { var } => {
            col_idx(&schema, var)?; // validated; pass-through
            child
        }
        PlanStep::AllNodesScan { var } => Box::new(NodeScan {
            schema: schema.with_field(var.clone()),
            child,
            nodes: ctx.graph.nodes().collect(),
            row: None,
            idx: 0,
        }),
        PlanStep::NodeIndexScan { var, label } => {
            let nodes = match ctx.graph.interner().get(label) {
                Some(sym) => ctx.graph.nodes_with_label(sym).to_vec(),
                None => Vec::new(),
            };
            Box::new(NodeScan {
                schema: schema.with_field(var.clone()),
                child,
                nodes,
                row: None,
                idx: 0,
            })
        }
        PlanStep::PropertyIndexSeek {
            var,
            label,
            key,
            value,
        } => {
            // The value is a literal or parameter: evaluable without a row.
            let v = eval_expr(ctx, &cypher_core::expr::NoVars, value)?;
            // `{k: null}` never matches (`=` with null is not true), and
            // the index only answers equivalence queries — guard it out.
            let interner = ctx.graph.interner();
            let nodes = if v.is_null() {
                Vec::new()
            } else {
                match (label, interner.get(key)) {
                    (_, None) => Vec::new(),
                    // Composite (label, key, value) seek.
                    (Some(l), Some(k)) => match interner.get(l) {
                        Some(l) => ctx.graph.nodes_with_label_prop(l, k, &v),
                        None => Vec::new(),
                    },
                    // Key-only seek.
                    (None, Some(k)) => ctx.graph.nodes_with_prop(k, &v),
                }
            };
            Box::new(NodeScan {
                schema: schema.with_field(var.clone()),
                child,
                nodes,
                row: None,
                idx: 0,
            })
        }
        PlanStep::RelScan { var } => Box::new(RelScanOp {
            schema: schema.with_field(var.clone()),
            child,
            rels: ctx.graph.rels().collect(),
            row: None,
            idx: 0,
        }),
        PlanStep::Expand {
            from,
            rel,
            to,
            dir,
            types,
            lo,
            hi,
            single,
            exclude,
            props,
        } => {
            let from_idx = col_idx(&schema, from)?;
            let rel_bound = schema.index_of(rel);
            let to_bound = schema.index_of(to);
            let mut out_schema = schema.clone();
            if rel_bound.is_none() {
                out_schema = out_schema.with_field(rel.clone());
            }
            if to_bound.is_none() && to != rel {
                out_schema = out_schema.with_field(to.clone());
            }
            let exclude_idx: Vec<usize> = exclude
                .iter()
                .map(|c| col_idx(&schema, c))
                .collect::<Result<_, _>>()?;
            let type_syms = resolve_types(ctx, types);
            Box::new(ExpandOp {
                ctx,
                schema: out_schema,
                child,
                from_idx,
                rel_bound,
                to_bound,
                dir: dir_of(*dir),
                type_syms,
                lo: *lo,
                hi: *hi,
                single: *single,
                exclude_idx,
                props: props.clone(),
                in_schema: schema,
                pending: Vec::new(),
            })
        }
        PlanStep::FilterLabels { var, labels } => {
            let idx = col_idx(&schema, var)?;
            let syms: Option<Vec<Symbol>> =
                labels.iter().map(|l| ctx.graph.interner().get(l)).collect();
            Box::new(LabelFilter {
                ctx,
                schema,
                child,
                idx,
                syms,
            })
        }
        PlanStep::FilterProps { var, props } => {
            let idx = col_idx(&schema, var)?;
            Box::new(PropsFilter {
                ctx,
                schema,
                child,
                idx,
                props: props.clone(),
            })
        }
        PlanStep::FilterEndpoints {
            rel,
            from,
            to,
            dir,
            types,
            exclude,
        } => {
            let rel_idx = col_idx(&schema, rel)?;
            let from_idx = col_idx(&schema, from)?;
            let to_idx = col_idx(&schema, to)?;
            let exclude_idx: Vec<usize> = exclude
                .iter()
                .map(|c| col_idx(&schema, c))
                .collect::<Result<_, _>>()?;
            Box::new(EndpointFilter {
                ctx,
                schema,
                child,
                rel_idx,
                from_idx,
                to_idx,
                dir: *dir,
                type_syms: resolve_types(ctx, types),
                exclude_idx,
            })
        }
        PlanStep::FilterExpr { pred } => Box::new(ExprFilter {
            ctx,
            schema,
            child,
            pred: pred.clone(),
        }),
        PlanStep::PathBind { var, elements } => {
            let resolved: Vec<(bool, bool, usize)> = elements
                .iter()
                .map(|e| match e {
                    PathElem::Node(c) => Ok((true, false, col_idx(&schema, c)?)),
                    PathElem::Rel(c) => Ok((false, false, col_idx(&schema, c)?)),
                    PathElem::RelList(c) => Ok((false, true, col_idx(&schema, c)?)),
                })
                .collect::<Result<_, EvalError>>()?;
            Box::new(PathBindOp {
                ctx,
                schema: schema.with_field(var.clone()),
                child,
                elements: resolved,
            })
        }
    })
}

/// `None` in the inner option marks a type that was never interned — such
/// a pattern can match nothing.
fn resolve_types(ctx: &EvalContext<'_>, types: &[String]) -> Option<Vec<Symbol>> {
    if types.is_empty() {
        return Some(Vec::new());
    }
    let resolved: Vec<Symbol> = types
        .iter()
        .filter_map(|t| ctx.graph.interner().get(t))
        .collect();
    if resolved.is_empty() {
        None // no admissible type exists in this graph
    } else {
        Some(resolved)
    }
}

fn dir_of(d: Dir) -> Direction {
    match d {
        Dir::Out => Direction::Outgoing,
        Dir::In => Direction::Incoming,
        Dir::Both => Direction::Both,
    }
}

// ---------------------------------------------------------------------------
// Sources
// ---------------------------------------------------------------------------

struct TableScan {
    schema: Arc<Schema>,
    rows: std::vec::IntoIter<Record>,
}

impl TableScan {
    fn new(t: Table) -> Self {
        let schema = t.schema().clone();
        TableScan {
            schema,
            rows: t.into_rows().into_iter(),
        }
    }
}

impl Operator for TableScan {
    fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Record>, EvalError> {
        Ok(self.rows.next())
    }
}

struct NodeScan<'a> {
    schema: Arc<Schema>,
    child: Box<dyn Operator + 'a>,
    nodes: Vec<NodeId>,
    row: Option<Record>,
    idx: usize,
}

impl Operator for NodeScan<'_> {
    fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Record>, EvalError> {
        loop {
            if self.row.is_none() {
                self.row = self.child.next()?;
                self.idx = 0;
                if self.row.is_none() {
                    return Ok(None);
                }
            }
            if self.idx < self.nodes.len() {
                let mut r = self.row.clone().unwrap();
                r.push(Value::Node(self.nodes[self.idx]));
                self.idx += 1;
                return Ok(Some(r));
            }
            self.row = None;
        }
    }
}

struct RelScanOp<'a> {
    schema: Arc<Schema>,
    child: Box<dyn Operator + 'a>,
    rels: Vec<RelId>,
    row: Option<Record>,
    idx: usize,
}

impl Operator for RelScanOp<'_> {
    fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Record>, EvalError> {
        loop {
            if self.row.is_none() {
                self.row = self.child.next()?;
                self.idx = 0;
                if self.row.is_none() {
                    return Ok(None);
                }
            }
            if self.idx < self.rels.len() {
                let mut r = self.row.clone().unwrap();
                r.push(Value::Rel(self.rels[self.idx]));
                self.idx += 1;
                return Ok(Some(r));
            }
            self.row = None;
        }
    }
}

// ---------------------------------------------------------------------------
// Expand
// ---------------------------------------------------------------------------

struct ExpandOp<'a> {
    ctx: &'a EvalContext<'a>,
    schema: Arc<Schema>,
    in_schema: Arc<Schema>,
    child: Box<dyn Operator + 'a>,
    from_idx: usize,
    rel_bound: Option<usize>,
    to_bound: Option<usize>,
    dir: Direction,
    /// `Some(vec![])` = any type; `Some(list)` = one of; `None` = no
    /// admissible type exists (match nothing).
    type_syms: Option<Vec<Symbol>>,
    lo: u64,
    hi: u64,
    single: bool,
    exclude_idx: Vec<usize>,
    props: Vec<(String, Expr)>,
    pending: Vec<Record>,
}

impl ExpandOp<'_> {
    fn type_ok(&self, r: RelId) -> bool {
        match &self.type_syms {
            None => false,
            Some(list) if list.is_empty() => true,
            Some(list) => {
                let t = self.ctx.graph.rel_type(r).expect("live rel");
                list.contains(&t)
            }
        }
    }

    fn rel_excluded(&self, row: &Record, r: RelId) -> bool {
        if !self.ctx.config.morphism.rels_distinct() {
            return false;
        }
        for &i in &self.exclude_idx {
            match row.get(i) {
                Value::Rel(r2) if *r2 == r => return true,
                Value::List(items)
                    if items
                        .iter()
                        .any(|v| matches!(v, Value::Rel(r2) if *r2 == r)) =>
                {
                    return true;
                }
                _ => {}
            }
        }
        false
    }

    /// Per-hop property conditions (variable-length patterns); expected
    /// values depend only on the driving row, so they are evaluated once.
    fn props_ok(&self, expected: &[(Symbol, Value)], r: RelId) -> bool {
        for (k, want) in expected {
            match self.ctx.graph.rel_prop(r, *k) {
                Some(v) if v.equals(want).is_true() => {}
                _ => return false,
            }
        }
        true
    }

    fn effective_hi(&self) -> u64 {
        if self.hi != u64::MAX {
            return self.hi;
        }
        match self.ctx.config.morphism {
            Morphism::Homomorphism => self.ctx.config.var_length_cap,
            _ => self.ctx.graph.rel_count() as u64,
        }
    }

    /// Computes all expansions for one input row.
    fn expand_row(&self, row: &Record) -> Result<Vec<Record>, EvalError> {
        let mut out = Vec::new();
        let from = match row.get(self.from_idx) {
            Value::Node(n) => *n,
            Value::Null => return Ok(out),
            other => {
                return err(format!(
                    "Expand source must be a node, got {}",
                    other.type_name()
                ))
            }
        };
        // Type/property conditions apply per traversed hop; when the type
        // or a property key was never interned no hop can satisfy them —
        // but a zero-hop (`*0..`) acceptance is still valid, its hop
        // conditions being vacuous.
        let mut hops_possible = self.type_syms.is_some();
        // Evaluate expected per-hop property values once per row.
        let mut expected: Vec<(Symbol, Value)> = Vec::with_capacity(self.props.len());
        for (k, e) in &self.props {
            let Some(sym) = self.ctx.graph.interner().get(k) else {
                hops_possible = false;
                continue;
            };
            let b = Bindings::new(&self.in_schema, row);
            expected.push((sym, eval_expr(self.ctx, &b, e)?));
        }

        if self.single {
            if !hops_possible {
                return Ok(out);
            }
            for (r, next) in self.ctx.graph.expand(from, self.dir) {
                if !self.type_ok(r) || self.rel_excluded(row, r) || !self.props_ok(&expected, r) {
                    continue;
                }
                if let Some(ri) = self.rel_bound {
                    if !row.get(ri).equivalent(&Value::Rel(r)) {
                        continue;
                    }
                }
                if let Some(ti) = self.to_bound {
                    if !row.get(ti).equivalent(&Value::Node(next)) {
                        continue;
                    }
                }
                let mut rec = row.clone();
                if self.rel_bound.is_none() {
                    rec.push(Value::Rel(r));
                }
                if self.to_bound.is_none() {
                    rec.push(Value::Node(next));
                }
                out.push(rec);
            }
        } else {
            let hi = if hops_possible {
                self.effective_hi()
            } else {
                0
            };
            let mut stack_rels: Vec<RelId> = Vec::new();
            self.var_dfs(row, &expected, from, 0, hi, &mut stack_rels, &mut out)?;
        }
        Ok(out)
    }

    #[allow(clippy::too_many_arguments)]
    fn var_dfs(
        &self,
        row: &Record,
        expected: &[(Symbol, Value)],
        at: NodeId,
        k: u64,
        hi: u64,
        rels: &mut Vec<RelId>,
        out: &mut Vec<Record>,
    ) -> Result<(), EvalError> {
        if k >= self.lo {
            let list = Value::List(rels.iter().map(|&r| Value::Rel(r)).collect());
            let mut emit = true;
            if let Some(ri) = self.rel_bound {
                emit &= row.get(ri).equivalent(&list);
            }
            if let Some(ti) = self.to_bound {
                emit &= row.get(ti).equivalent(&Value::Node(at));
            }
            if emit {
                let mut rec = row.clone();
                if self.rel_bound.is_none() {
                    rec.push(list);
                }
                if self.to_bound.is_none() {
                    rec.push(Value::Node(at));
                }
                out.push(rec);
            }
        }
        if k >= hi {
            return Ok(());
        }
        let distinct = self.ctx.config.morphism.rels_distinct();
        for (r, next) in self.ctx.graph.expand(at, self.dir) {
            if !self.type_ok(r)
                || self.rel_excluded(row, r)
                || (distinct && rels.contains(&r))
                || !self.props_ok(expected, r)
            {
                continue;
            }
            rels.push(r);
            self.var_dfs(row, expected, next, k + 1, hi, rels, out)?;
            rels.pop();
        }
        Ok(())
    }
}

impl Operator for ExpandOp<'_> {
    fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Record>, EvalError> {
        loop {
            if let Some(r) = self.pending.pop() {
                return Ok(Some(r));
            }
            match self.child.next()? {
                None => return Ok(None),
                Some(row) => {
                    let mut batch = self.expand_row(&row)?;
                    batch.reverse(); // pop() then restores natural order
                    self.pending = batch;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Filters
// ---------------------------------------------------------------------------

struct LabelFilter<'a> {
    ctx: &'a EvalContext<'a>,
    schema: Arc<Schema>,
    child: Box<dyn Operator + 'a>,
    idx: usize,
    /// `None` when some label was never interned (matches nothing).
    syms: Option<Vec<Symbol>>,
}

impl Operator for LabelFilter<'_> {
    fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Record>, EvalError> {
        while let Some(row) = self.child.next()? {
            let Some(syms) = &self.syms else { continue };
            match row.get(self.idx) {
                Value::Node(n) => {
                    if syms.iter().all(|&l| self.ctx.graph.has_label(*n, l)) {
                        return Ok(Some(row));
                    }
                }
                Value::Null => {}
                other => return err(format!("label filter on non-node {}", other.type_name())),
            }
        }
        Ok(None)
    }
}

struct PropsFilter<'a> {
    ctx: &'a EvalContext<'a>,
    schema: Arc<Schema>,
    child: Box<dyn Operator + 'a>,
    idx: usize,
    props: Vec<(String, Expr)>,
}

impl Operator for PropsFilter<'_> {
    fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Record>, EvalError> {
        'rows: while let Some(row) = self.child.next()? {
            let g = self.ctx.graph;
            for (k, e) in &self.props {
                let b = Bindings::new(&self.schema, &row);
                let want = eval_expr(self.ctx, &b, e)?;
                let got = match row.get(self.idx) {
                    Value::Node(n) => g.interner().get(k).and_then(|s| g.node_prop(*n, s)),
                    Value::Rel(r) => g.interner().get(k).and_then(|s| g.rel_prop(*r, s)),
                    Value::Null => continue 'rows,
                    other => return err(format!("property filter on {}", other.type_name())),
                };
                match got {
                    Some(v) if v.equals(&want).is_true() => {}
                    _ => continue 'rows,
                }
            }
            return Ok(Some(row));
        }
        Ok(None)
    }
}

struct EndpointFilter<'a> {
    ctx: &'a EvalContext<'a>,
    schema: Arc<Schema>,
    child: Box<dyn Operator + 'a>,
    rel_idx: usize,
    from_idx: usize,
    to_idx: usize,
    dir: Dir,
    type_syms: Option<Vec<Symbol>>,
    exclude_idx: Vec<usize>,
}

impl Operator for EndpointFilter<'_> {
    fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Record>, EvalError> {
        'rows: while let Some(row) = self.child.next()? {
            let g = self.ctx.graph;
            let (Value::Rel(r), Value::Node(a), Value::Node(b)) = (
                row.get(self.rel_idx),
                row.get(self.from_idx),
                row.get(self.to_idx),
            ) else {
                continue;
            };
            let (r, a, b) = (*r, *a, *b);
            // Type admissibility.
            match &self.type_syms {
                None => continue,
                Some(list) if list.is_empty() => {}
                Some(list) => {
                    if !list.contains(&g.rel_type(r).expect("live rel")) {
                        continue;
                    }
                }
            }
            // Endpoint agreement per direction (item (e′) of §4.2).
            let (src, tgt) = (g.src(r).unwrap(), g.tgt(r).unwrap());
            let ok = match self.dir {
                Dir::Out => src == a && tgt == b,
                Dir::In => src == b && tgt == a,
                Dir::Both => (src == a && tgt == b) || (src == b && tgt == a),
            };
            if !ok {
                continue;
            }
            // Relationship isomorphism between scanned rel columns.
            if self.ctx.config.morphism.rels_distinct() {
                for &i in &self.exclude_idx {
                    if let Value::Rel(r2) = row.get(i) {
                        if *r2 == r {
                            continue 'rows;
                        }
                    }
                }
            }
            return Ok(Some(row));
        }
        Ok(None)
    }
}

struct ExprFilter<'a> {
    ctx: &'a EvalContext<'a>,
    schema: Arc<Schema>,
    child: Box<dyn Operator + 'a>,
    pred: Expr,
}

impl Operator for ExprFilter<'_> {
    fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Record>, EvalError> {
        while let Some(row) = self.child.next()? {
            let b = Bindings::new(&self.schema, &row);
            if truth_of(self.ctx, &b, &self.pred)? == Tri::True {
                return Ok(Some(row));
            }
        }
        Ok(None)
    }
}

// ---------------------------------------------------------------------------
// Path materialization
// ---------------------------------------------------------------------------

struct PathBindOp<'a> {
    ctx: &'a EvalContext<'a>,
    schema: Arc<Schema>,
    child: Box<dyn Operator + 'a>,
    /// `(is_node, is_list, column)` triples in path order.
    elements: Vec<(bool, bool, usize)>,
}

impl Operator for PathBindOp<'_> {
    fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Record>, EvalError> {
        let Some(mut row) = self.child.next()? else {
            return Ok(None);
        };
        let g = self.ctx.graph;
        let mut path: Option<Path> = None;
        let mut current: Option<NodeId> = None;
        let extend = |path: &mut Option<Path>, current: &mut Option<NodeId>, r: RelId| {
            let cur = current.expect("path starts with a node");
            let next = g.other_end(r, cur).expect("live rel endpoint");
            path.as_mut().expect("path initialized").push(r, next);
            *current = Some(next);
        };
        for &(is_node, is_list, idx) in &self.elements {
            if is_node {
                if path.is_none() {
                    let Value::Node(n) = row.get(idx) else {
                        return err("path element is not a node");
                    };
                    path = Some(Path::single(*n));
                    current = Some(*n);
                }
                // Interior node columns are consistency-checked by the
                // matcher; the walk itself determines them.
            } else if is_list {
                let Value::List(items) = row.get(idx).clone() else {
                    return err("variable-length path element is not a list");
                };
                for v in items {
                    let Value::Rel(r) = v else {
                        return err("path relationship list holds a non-relationship");
                    };
                    extend(&mut path, &mut current, r);
                }
            } else {
                let Value::Rel(r) = row.get(idx) else {
                    return err("path element is not a relationship");
                };
                extend(&mut path, &mut current, *r);
            }
        }
        row.push(Value::Path(path.expect("non-empty path pattern")));
        Ok(Some(row))
    }
}
