//! Changed-entity-anchored delta evaluation for incremental view
//! maintenance (the "delta-join pass" of the standing-query subsystem).
//!
//! A maintainable match-shaped view is a query of the form
//!
//! ```text
//! MATCH π [WHERE expr] RETURN …
//! ```
//!
//! with a **single rigid path pattern** — every relationship pattern is a
//! single hop (`RangeSpec::None`). [`DeltaPlan::compile`] rewrites the
//! pattern so *every* node and relationship position carries a name
//! (anonymous positions get synthetic names containing a space, which the
//! surface syntax cannot produce), making each match row a complete
//! binding tuple: one entity per position.
//!
//! The soundness argument for delta maintenance rests on that shape.
//! Every change record either alters a node directly or alters a
//! relationship, whose two endpoints [`cypher_graph::affected_nodes`]
//! resolves against the pre-update graph. A row of the view can only
//! appear, disappear, or change between versions if some entity it binds
//! (or a property/label of one) changed — and since each bound
//! relationship is incident to two bound node positions, every such row
//! binds at least one *affected node*. So re-enumerating only the rows
//! that bind an affected node — [`DeltaPlan::affected_rows`] against the
//! old graph gives the retractions, the same call against the new graph
//! gives the insertions — folds exactly the difference between the two
//! versions into the view state.
//!
//! Because every position is named, each distinct binding tuple occurs in
//! the match bag with multiplicity exactly one (the tuple determines the
//! path tuple), so deduplicating by tuple across the anchor positions is
//! exact: a row binding three affected nodes is enumerated up to three
//! times and counted once.
//!
//! `WHERE` comes along for free — the predicate is evaluated on each
//! enumerated row against the same graph the row was enumerated in — with
//! one restriction, checked at compile time: no existential pattern
//! predicate or pattern comprehension anywhere in the query
//! ([`expr_rescans_graph`]). Those constructs consult parts of the graph
//! the row does *not* bind, so a change far from a row could flip its
//! predicate without touching any of its entities, breaking the anchoring
//! argument. Views containing them fall back to full recomputation.

use cypher_ast::expr::Expr;
use cypher_ast::pattern::PathPattern;
use cypher_ast::query::{Clause, Query};
use cypher_core::error::EvalError;
use cypher_core::expr::truth_of;
use cypher_core::{match_patterns, EvalContext, Record, Schema, VarLookup};
use cypher_graph::{NodeId, Tri, Value};
use std::collections::HashSet;
use std::sync::Arc;

/// True when the expression (or any subexpression) re-scans the graph
/// beyond the entities the current row binds: existential pattern
/// predicates (`WHERE (a)-->(b)`) and pattern comprehensions. Such
/// expressions are not delta-maintainable — their value can change
/// without any bound entity changing.
pub fn expr_rescans_graph(e: &Expr) -> bool {
    fn walk(e: &Expr, found: &mut bool) {
        if *found {
            return;
        }
        match e {
            Expr::PatternPredicate(_) | Expr::PatternComprehension { .. } => *found = true,
            other => other.for_each_child(&mut |c| walk(c, found)),
        }
    }
    let mut found = false;
    walk(e, &mut found);
    found
}

/// Prefix of the synthetic names given to anonymous pattern positions.
/// Contains a space, so no parsed query can collide with (or project) one.
const SYNTH: &str = " δ";

/// A compiled delta-join pass: the fully-named single-path pattern, its
/// `WHERE` predicate, and the binding schema.
pub struct DeltaPlan {
    /// The rewritten pattern: every node/relationship position named.
    pattern: PathPattern,
    /// The `MATCH`'s `WHERE` predicate, if any.
    where_: Option<Expr>,
    /// Distinct node-position names, in traversal order — the anchor set.
    node_names: Vec<String>,
    /// Schema of the binding rows: every distinct position name, in
    /// traversal order (synthetic names included).
    schema: Arc<Schema>,
    /// The user-visible subset of [`DeltaPlan::schema`] (synthetic names
    /// stripped) — what `RETURN *` may expand to.
    visible: Arc<Schema>,
}

impl DeltaPlan {
    /// Classifies a read query's *match shape* for delta maintenance.
    /// Returns `None` — caller falls back to full recomputation — unless
    /// the query is a single non-optional `MATCH` of one rigid,
    /// single-hop-per-step, unnamed path followed directly by `RETURN`,
    /// with no graph-rescanning expression anywhere (pattern property
    /// maps, `WHERE`, return items, `ORDER BY`).
    ///
    /// The *projection* half of maintainability (retractable aggregates,
    /// bare aggregate items, no `SKIP`/`LIMIT`) is the caller's check —
    /// this function owns only the pattern-and-predicate half.
    pub fn compile(q: &Query) -> Option<DeltaPlan> {
        let Query::Single(sq) = q else {
            return None;
        };
        if sq.ret_graph.is_some() {
            return None;
        }
        let ret = sq.ret.as_ref()?;
        let (patterns, where_) = match sq.clauses.as_slice() {
            [Clause::Match {
                optional: false,
                patterns,
                where_,
            }] => (patterns, where_),
            _ => return None,
        };
        let [pattern] = patterns.as_slice() else {
            return None;
        };
        if pattern.name.is_some() {
            return None;
        }
        if !pattern.rel_patterns().all(|r| r.range.is_single()) {
            return None;
        }
        // No graph-rescanning subexpression anywhere the view evaluates.
        let prop_exprs = pattern
            .node_patterns()
            .flat_map(|n| n.props.iter())
            .map(|(_, e)| e)
            .chain(
                pattern
                    .rel_patterns()
                    .flat_map(|r| r.props.iter())
                    .map(|(_, e)| e),
            );
        let ret_exprs = ret
            .items
            .iter()
            .map(|i| &i.expr)
            .chain(ret.order_by.iter().map(|s| &s.expr))
            .chain(ret.skip.iter())
            .chain(ret.limit.iter());
        let mut all_exprs = prop_exprs.chain(ret_exprs).chain(where_.iter());
        if all_exprs.any(expr_rescans_graph) {
            return None;
        }

        // Name every anonymous position.
        let mut pattern = pattern.clone();
        let mut fresh = 0usize;
        fn name_node(n: &mut cypher_ast::pattern::NodePattern, fresh: &mut usize) {
            if n.name.is_none() {
                n.name = Some(format!("{SYNTH}n{fresh}"));
                *fresh += 1;
            }
        }
        name_node(&mut pattern.start, &mut fresh);
        for (r, n) in &mut pattern.steps {
            if r.name.is_none() {
                r.name = Some(format!("{SYNTH}r{fresh}"));
                fresh += 1;
            }
            name_node(n, &mut fresh);
        }

        let mut node_names: Vec<String> = Vec::new();
        for n in pattern.node_patterns() {
            let name = n.name.clone().expect("all positions named");
            if !node_names.contains(&name) {
                node_names.push(name);
            }
        }
        let all_names = pattern.free_vars();
        let visible = Schema::new(
            all_names
                .iter()
                .filter(|n| !n.starts_with(SYNTH))
                .cloned()
                .collect(),
        );
        let schema = Schema::new(all_names);
        Some(DeltaPlan {
            pattern,
            where_: where_.clone(),
            node_names,
            schema,
            visible,
        })
    }

    /// Schema of the rows [`DeltaPlan::all_rows`] /
    /// [`DeltaPlan::affected_rows`] produce: one column per pattern
    /// position, synthetic names included.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The user-visible columns (what the projection may reference and
    /// what `RETURN *` expands to).
    pub fn visible_schema(&self) -> &Arc<Schema> {
        &self.visible
    }

    /// Number of anchor positions (distinct node names) — the fan-out
    /// factor of one delta pass, for `EXPLAIN VIEW`.
    pub fn anchor_count(&self) -> usize {
        self.node_names.len()
    }

    /// The rewritten pattern, for `EXPLAIN VIEW` rendering.
    pub fn pattern(&self) -> &PathPattern {
        &self.pattern
    }

    /// Every binding row of the pattern over the whole graph, `WHERE`
    /// applied — the initial materialization fold.
    pub fn all_rows(&self, ctx: &EvalContext<'_>) -> Result<Vec<Record>, EvalError> {
        let rows = match_patterns(
            ctx,
            &cypher_core::expr::NoVars,
            std::slice::from_ref(&self.pattern),
        )?;
        let mut out = Vec::with_capacity(rows.len());
        for pairs in rows {
            let record = self.assemble(&pairs, None)?;
            if self.passes_where(ctx, &record)? {
                out.push(record);
            }
        }
        Ok(out)
    }

    /// Every binding row that binds at least one node of `affected`,
    /// enumerated by anchoring each affected node at each node position
    /// and deduplicated by the complete binding tuple (exact — see the
    /// module docs). Evaluated against `ctx.graph`: call with the
    /// pre-update graph for retractions, the post-update graph for
    /// insertions.
    pub fn affected_rows(
        &self,
        ctx: &EvalContext<'_>,
        affected: &[NodeId],
    ) -> Result<Vec<Record>, EvalError> {
        let mut out = Vec::new();
        let mut seen: HashSet<Vec<(u8, u64)>> = HashSet::new();
        for &d in affected {
            if !ctx.graph.contains_node(d) {
                continue;
            }
            for name in &self.node_names {
                let anchor = Anchor {
                    name,
                    value: Value::Node(d),
                };
                let rows = match_patterns(ctx, &anchor, std::slice::from_ref(&self.pattern))?;
                for pairs in rows {
                    let record = self.assemble(&pairs, Some((name, d)))?;
                    if !seen.insert(entity_key(&record)) {
                        continue;
                    }
                    if self.passes_where(ctx, &record)? {
                        out.push(record);
                    }
                }
            }
        }
        Ok(out)
    }

    /// Reassembles a [`cypher_core::matching::MatchRow`] (bindings for the
    /// positions *not* pre-bound, in traversal order) into a full record
    /// in schema column order.
    fn assemble(
        &self,
        pairs: &[(String, Value)],
        anchor: Option<(&str, NodeId)>,
    ) -> Result<Record, EvalError> {
        let mut vals: Vec<Value> = Vec::with_capacity(self.schema.len());
        for col in self.schema.names() {
            if let Some((name, d)) = anchor {
                if col == name {
                    vals.push(Value::Node(d));
                    continue;
                }
            }
            match pairs.iter().find(|(n, _)| n == col) {
                Some((_, v)) => vals.push(v.clone()),
                None => return Err(EvalError::new(format!("delta pass lost binding for {col}"))),
            }
        }
        Ok(Record::new(vals))
    }

    fn passes_where(&self, ctx: &EvalContext<'_>, record: &Record) -> Result<bool, EvalError> {
        match &self.where_ {
            None => Ok(true),
            Some(w) => {
                let b = cypher_core::Bindings::new(&self.schema, record);
                Ok(truth_of(ctx, &b, w)? == Tri::True)
            }
        }
    }
}

/// The dedup key of a binding row: every column is an entity (node or
/// relationship) by construction, keyed by its id.
fn entity_key(record: &Record) -> Vec<(u8, u64)> {
    record
        .values()
        .iter()
        .map(|v| match v {
            Value::Node(n) => (0u8, n.0),
            Value::Rel(r) => (1u8, r.0),
            // Unreachable for a compiled DeltaPlan (all positions bind
            // entities); keep total rather than panic in release.
            other => {
                debug_assert!(false, "non-entity binding {other:?}");
                let mut h = std::collections::hash_map::DefaultHasher::new();
                use std::hash::Hasher;
                other.hash_equivalent(&mut h);
                (2u8, h.finish())
            }
        })
        .collect()
}

/// A one-name pre-binding: anchors a node position to a concrete node.
struct Anchor<'a> {
    name: &'a str,
    value: Value,
}

impl VarLookup for Anchor<'_> {
    fn lookup(&self, n: &str) -> Option<Value> {
        (n == self.name).then(|| self.value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cypher_core::Params;
    use cypher_graph::PropertyGraph;
    use cypher_parser::parse_query;

    fn plan_of(src: &str) -> Option<DeltaPlan> {
        DeltaPlan::compile(&parse_query(src).unwrap())
    }

    #[test]
    fn classification_accepts_single_rigid_path() {
        assert!(plan_of("MATCH (a)-[r:KNOWS]->(b) RETURN a, b").is_some());
        assert!(plan_of("MATCH (a {k: 1})-->(b) WHERE b.v > 0 RETURN count(*) AS n").is_some());
        assert!(plan_of("MATCH (n:Person) RETURN n.name AS name").is_some());
    }

    #[test]
    fn classification_rejects_unmaintainable_shapes() {
        // Multiple patterns, var-length, OPTIONAL, named path, multiple
        // clauses, unions, pattern predicates.
        assert!(plan_of("MATCH (a)-->(b), (b)-->(c) RETURN a").is_none());
        assert!(plan_of("MATCH (a)-[*1..3]->(b) RETURN a").is_none());
        assert!(plan_of("OPTIONAL MATCH (a)-->(b) RETURN a").is_none());
        assert!(plan_of("MATCH p = (a)-->(b) RETURN a").is_none());
        assert!(plan_of("MATCH (a) MATCH (b) RETURN a, b").is_none());
        assert!(plan_of("MATCH (a) RETURN a UNION MATCH (b) RETURN b").is_none());
        assert!(plan_of("MATCH (a) WHERE (a)-->() RETURN a").is_none());
        assert!(plan_of("MATCH (a) RETURN [(a)-->(b) | b.v] AS vs").is_none());
    }

    #[test]
    fn affected_rows_match_brute_force_diff() {
        let params = Params::new();
        let plan = plan_of("MATCH (a)-[r:KNOWS]->(b) WHERE b.v > 0 RETURN a").unwrap();

        // Old graph: a chain with properties.
        let mut old = PropertyGraph::new();
        let n: Vec<_> = (0..5)
            .map(|i| old.add_node(&["P"], [("v", Value::int(i - 1))]))
            .collect();
        for w in n.windows(2) {
            old.add_rel(w[0], w[1], "KNOWS", []).unwrap();
        }
        // New graph: delete one edge (via clone-and-mutate), flip a prop.
        let mut new = old.clone();
        let changes = {
            let buf = cypher_graph::SharedChangeBuffer::new();
            new.set_change_sink(Box::new(buf.clone()));
            let rid = new
                .out_rels(n[1])
                .iter()
                .copied()
                .find(|&r| new.tgt(r) == Some(n[2]))
                .unwrap();
            new.delete_rel(rid).unwrap();
            let k = new.intern("v");
            new.set_node_prop(n[1], k, Value::int(100)).unwrap();
            let _ = new.take_change_sink();
            buf.drain()
        };

        let affected = cypher_graph::affected_nodes(&changes, &old);
        let octx = EvalContext::new(&old, &params);
        let nctx = EvalContext::new(&new, &params);

        // Delta algebra: all_rows(old) − retractions + insertions must be
        // bag-equal to all_rows(new).
        let mut rows: Vec<Vec<(u8, u64)>> = plan
            .all_rows(&octx)
            .unwrap()
            .iter()
            .map(entity_key)
            .collect();
        for r in plan.affected_rows(&octx, &affected).unwrap() {
            let k = entity_key(&r);
            let pos = rows.iter().position(|x| *x == k).expect("retract unknown");
            rows.remove(pos);
        }
        for r in plan.affected_rows(&nctx, &affected).unwrap() {
            rows.push(entity_key(&r));
        }
        let mut want: Vec<Vec<(u8, u64)>> = plan
            .all_rows(&nctx)
            .unwrap()
            .iter()
            .map(entity_key)
            .collect();
        rows.sort();
        want.sort();
        assert_eq!(rows, want);
    }
}
