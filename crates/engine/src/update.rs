//! Updating clauses (paper Section 2, "Data modification"): `CREATE`,
//! `DELETE` / `DETACH DELETE`, `SET`, `REMOVE`, and `MERGE` ("tries to
//! match the given pattern, and creates the pattern if no match was
//! found").
//!
//! Each clause remains a function from tables to tables — `CREATE` and
//! `MERGE` extend rows with the entities they bind, the others pass rows
//! through — so updating queries compose linearly exactly like reading
//! ones.
//!
//! **Index maintenance**: every mutation here bottoms out in a
//! [`PropertyGraph`] mutator (`add_node_syms`, `set_node_prop`,
//! `add_label`, `detach_delete_node`, …), each of which updates the
//! label, property and composite label/property indexes incrementally
//! (see `cypher_graph::index`). There is no code path that changes the
//! store without updating the indexes, so a `MATCH` planned against the
//! indexes right after any sequence of update clauses sees exactly the
//! mutated graph — the invariant the differential test suite
//! (`tests/index_differential.rs`) exercises.

use crate::exec::EngineConfig;
use cypher_ast::expr::Expr;
use cypher_ast::pattern::{Dir, PathPattern};
use cypher_ast::query::{RemoveItem, SetItem};
use cypher_core::error::{err, EvalError};
use cypher_core::expr::{eval_expr, Bindings};
use cypher_core::matching::{match_patterns, unbound_free_vars};
use cypher_core::table::{Record, Table};
use cypher_core::{EvalContext, Params};
use cypher_graph::{NodeId, PropertyGraph, RelId, Symbol, Value};

/// `CREATE pattern_tuple`: instantiates the patterns once per driving row.
pub fn exec_create(
    graph: &mut PropertyGraph,
    params: &Params,
    cfg: &EngineConfig,
    patterns: &[PathPattern],
    table: Table,
) -> Result<Table, EvalError> {
    let schema = table.schema().clone();
    let new_vars = unbound_free_vars(patterns, &|n| schema.contains(n));
    let mut out_schema = schema.clone();
    for v in &new_vars {
        out_schema = out_schema.with_field(v.clone());
    }
    let mut out = Table::empty(out_schema);
    for row in table.rows() {
        let mut bindings: Vec<(String, Value)> = Vec::new();
        for pat in patterns {
            create_pattern(graph, params, cfg, pat, &schema, row, &mut bindings)?;
        }
        let mut new_row = row.clone();
        for v in &new_vars {
            let val = bindings
                .iter()
                .find(|(n, _)| n == v)
                .map(|(_, val)| val.clone())
                .unwrap_or(Value::Null);
            new_row.push(val);
        }
        out.push(new_row);
    }
    Ok(out)
}

struct RowView<'a> {
    schema: &'a cypher_core::Schema,
    row: &'a Record,
    extra: &'a [(String, Value)],
}

impl cypher_core::VarLookup for RowView<'_> {
    fn lookup(&self, name: &str) -> Option<Value> {
        self.extra
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.clone())
            .or_else(|| self.schema.index_of(name).map(|i| self.row.get(i).clone()))
    }
}

fn eval_props(
    graph: &PropertyGraph,
    params: &Params,
    cfg: &EngineConfig,
    props: &[(String, Expr)],
    view: &RowView<'_>,
) -> Result<Vec<(String, Value)>, EvalError> {
    let ctx = EvalContext::new(graph, params).with_config(cfg.match_config);
    let mut out = Vec::with_capacity(props.len());
    for (k, e) in props {
        out.push((k.clone(), eval_expr(&ctx, view, e)?));
    }
    Ok(out)
}

fn create_pattern(
    graph: &mut PropertyGraph,
    params: &Params,
    cfg: &EngineConfig,
    pat: &PathPattern,
    schema: &cypher_core::Schema,
    row: &Record,
    bindings: &mut Vec<(String, Value)>,
) -> Result<(), EvalError> {
    if pat.name.is_some() {
        return err("CREATE cannot bind a path name");
    }
    // Resolve or create the start node, then walk the steps.
    let mut current =
        resolve_or_create_node(graph, params, cfg, &pat.start, schema, row, bindings)?;
    for (rho, chi) in &pat.steps {
        if !rho.range.is_single() {
            return err("CREATE requires single relationships (no variable length)");
        }
        let target = resolve_or_create_node(graph, params, cfg, chi, schema, row, bindings)?;
        let (src, tgt) = match rho.dir {
            Dir::Out => (current, target),
            Dir::In => (target, current),
            Dir::Both => return err("CREATE requires a directed relationship"),
        };
        if rho.types.len() != 1 {
            return err("CREATE requires exactly one relationship type");
        }
        let props = {
            let view = RowView {
                schema,
                row,
                extra: bindings,
            };
            eval_props(graph, params, cfg, &rho.props, &view)?
        };
        let t = graph.intern(&rho.types[0]);
        let prop_syms: Vec<(Symbol, Value)> = props
            .into_iter()
            .map(|(k, v)| (graph.intern(&k), v))
            .collect();
        let r = graph
            .add_rel_syms(src, tgt, t, prop_syms)
            .map_err(|e| EvalError::new(e.to_string()))?;
        if let Some(name) = &rho.name {
            bindings.push((name.clone(), Value::Rel(r)));
        }
        current = target;
    }
    Ok(())
}

fn resolve_or_create_node(
    graph: &mut PropertyGraph,
    params: &Params,
    cfg: &EngineConfig,
    chi: &cypher_ast::pattern::NodePattern,
    schema: &cypher_core::Schema,
    row: &Record,
    bindings: &mut Vec<(String, Value)>,
) -> Result<NodeId, EvalError> {
    // A bound name reuses the existing node (and must not restate labels
    // or properties, as in Cypher).
    if let Some(name) = &chi.name {
        let view = RowView {
            schema,
            row,
            extra: bindings,
        };
        if let Some(v) = cypher_core::VarLookup::lookup(&view, name) {
            return match v {
                Value::Node(n) => {
                    if !chi.labels.is_empty() || !chi.props.is_empty() {
                        err(format!(
                            "CREATE cannot add labels/properties to the bound variable {name}"
                        ))
                    } else {
                        Ok(n)
                    }
                }
                Value::Null => err(format!("cannot CREATE with null variable {name}")),
                other => err(format!(
                    "variable {name} is bound to {}, expected a node",
                    other.type_name()
                )),
            };
        }
    }
    let props = {
        let view = RowView {
            schema,
            row,
            extra: bindings,
        };
        eval_props(graph, params, cfg, &chi.props, &view)?
    };
    let labels: Vec<Symbol> = chi.labels.iter().map(|l| graph.intern(l)).collect();
    let prop_syms: Vec<(Symbol, Value)> = props
        .into_iter()
        .map(|(k, v)| (graph.intern(&k), v))
        .collect();
    let n = graph.add_node_syms(labels, prop_syms);
    if let Some(name) = &chi.name {
        bindings.push((name.clone(), Value::Node(n)));
    }
    Ok(n)
}

/// `MERGE pattern [ON CREATE SET …] [ON MATCH SET …]`: per driving row,
/// bind all matches of the pattern, or create it when there are none.
pub fn exec_merge(
    graph: &mut PropertyGraph,
    params: &Params,
    cfg: &EngineConfig,
    pattern: &PathPattern,
    on_create: &[SetItem],
    on_match: &[SetItem],
    table: Table,
) -> Result<Table, EvalError> {
    let schema = table.schema().clone();
    let pats = std::slice::from_ref(pattern);
    let new_vars = unbound_free_vars(pats, &|n| schema.contains(n));
    let mut out_schema = schema.clone();
    for v in &new_vars {
        out_schema = out_schema.with_field(v.clone());
    }
    let mut out = Table::empty(out_schema.clone());
    for row in table.rows() {
        // Try to match first (read-only borrow scope).
        let matches = {
            let ctx = EvalContext::new(graph, params).with_config(cfg.match_config);
            let b = Bindings::new(&schema, row);
            match_patterns(&ctx, &b, pats)?
        };
        if matches.is_empty() {
            let mut bindings: Vec<(String, Value)> = Vec::new();
            create_pattern(graph, params, cfg, pattern, &schema, row, &mut bindings)?;
            let mut new_row = row.clone();
            for v in &new_vars {
                let val = bindings
                    .iter()
                    .find(|(n, _)| n == v)
                    .map(|(_, val)| val.clone())
                    .unwrap_or(Value::Null);
                new_row.push(val);
            }
            apply_set_items(graph, params, cfg, on_create, &out_schema, &new_row)?;
            out.push(new_row);
        } else {
            for m in matches {
                let mut new_row = row.clone();
                for v in &new_vars {
                    let val = m
                        .iter()
                        .find(|(n, _)| n == v)
                        .map(|(_, val)| val.clone())
                        .expect("match binds all free vars");
                    new_row.push(val);
                }
                apply_set_items(graph, params, cfg, on_match, &out_schema, &new_row)?;
                out.push(new_row);
            }
        }
    }
    Ok(out)
}

/// `SET` items applied to one row.
fn apply_set_items(
    graph: &mut PropertyGraph,
    params: &Params,
    cfg: &EngineConfig,
    items: &[SetItem],
    schema: &cypher_core::Schema,
    row: &Record,
) -> Result<(), EvalError> {
    for item in items {
        match item {
            SetItem::Prop(base, key, value) => {
                let (target, v) = {
                    let ctx = EvalContext::new(graph, params).with_config(cfg.match_config);
                    let b = Bindings::new(schema, row);
                    (eval_expr(&ctx, &b, base)?, eval_expr(&ctx, &b, value)?)
                };
                let k = graph.intern(key);
                match target {
                    Value::Node(n) => graph
                        .set_node_prop(n, k, v)
                        .map_err(|e| EvalError::new(e.to_string()))?,
                    Value::Rel(r) => graph
                        .set_rel_prop(r, k, v)
                        .map_err(|e| EvalError::new(e.to_string()))?,
                    Value::Null => {} // SET on null is a no-op
                    other => {
                        return err(format!(
                            "SET target must be a node or relationship, got {}",
                            other.type_name()
                        ))
                    }
                }
            }
            SetItem::Replace(var, value) | SetItem::Merge(var, value) => {
                let additive = matches!(item, SetItem::Merge(_, _));
                let (target, v) = {
                    let ctx = EvalContext::new(graph, params).with_config(cfg.match_config);
                    let b = Bindings::new(schema, row);
                    (
                        eval_expr(&ctx, &b, &Expr::var(var.clone()))?,
                        eval_expr(&ctx, &b, value)?,
                    )
                };
                let Value::Node(n) = target else {
                    if target.is_null() {
                        continue;
                    }
                    return err(format!("SET {var} = map requires a node"));
                };
                let props: Vec<(String, Value)> = match v {
                    Value::Map(m) => m.into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
                    Value::Node(src) => graph
                        .node_props(src)
                        .map(|(k, v)| (graph.resolve(k).to_string(), v.clone()))
                        .collect(),
                    other => {
                        return err(format!(
                            "SET {var} = requires a map or node, got {}",
                            other.type_name()
                        ))
                    }
                };
                let prop_syms: Vec<(Symbol, Value)> = props
                    .into_iter()
                    .map(|(k, v)| (graph.intern(&k), v))
                    .collect();
                if additive {
                    for (k, v) in prop_syms {
                        graph
                            .set_node_prop(n, k, v)
                            .map_err(|e| EvalError::new(e.to_string()))?;
                    }
                } else {
                    graph
                        .replace_node_props(n, prop_syms)
                        .map_err(|e| EvalError::new(e.to_string()))?;
                }
            }
            SetItem::Labels(var, labels) => {
                let target = {
                    let ctx = EvalContext::new(graph, params).with_config(cfg.match_config);
                    let b = Bindings::new(schema, row);
                    eval_expr(&ctx, &b, &Expr::var(var.clone()))?
                };
                let Value::Node(n) = target else {
                    if target.is_null() {
                        continue;
                    }
                    return err(format!("SET {var}:Label requires a node"));
                };
                for l in labels {
                    let sym = graph.intern(l);
                    graph
                        .add_label(n, sym)
                        .map_err(|e| EvalError::new(e.to_string()))?;
                }
            }
        }
    }
    Ok(())
}

/// `SET` clause: applies items to every row, passing the table through.
pub fn exec_set(
    graph: &mut PropertyGraph,
    params: &Params,
    cfg: &EngineConfig,
    items: &[SetItem],
    table: Table,
) -> Result<Table, EvalError> {
    let schema = table.schema().clone();
    for row in table.rows() {
        apply_set_items(graph, params, cfg, items, &schema, row)?;
    }
    Ok(table)
}

/// `REMOVE` clause.
pub fn exec_remove(
    graph: &mut PropertyGraph,
    params: &Params,
    cfg: &EngineConfig,
    items: &[RemoveItem],
    table: Table,
) -> Result<Table, EvalError> {
    let schema = table.schema().clone();
    for row in table.rows() {
        for item in items {
            match item {
                RemoveItem::Prop(base, key) => {
                    let target = {
                        let ctx = EvalContext::new(graph, params).with_config(cfg.match_config);
                        let b = Bindings::new(&schema, row);
                        eval_expr(&ctx, &b, base)?
                    };
                    let Some(k) = graph.interner().get(key) else {
                        continue;
                    };
                    match target {
                        Value::Node(n) => graph
                            .remove_node_prop(n, k)
                            .map_err(|e| EvalError::new(e.to_string()))?,
                        Value::Rel(r) => {
                            graph
                                .set_rel_prop(r, k, Value::Null)
                                .map_err(|e| EvalError::new(e.to_string()))?;
                        }
                        Value::Null => {}
                        other => {
                            return err(format!(
                                "REMOVE target must be a node or relationship, got {}",
                                other.type_name()
                            ))
                        }
                    }
                }
                RemoveItem::Labels(var, labels) => {
                    let target = {
                        let ctx = EvalContext::new(graph, params).with_config(cfg.match_config);
                        let b = Bindings::new(&schema, row);
                        eval_expr(&ctx, &b, &Expr::var(var.clone()))?
                    };
                    let Value::Node(n) = target else {
                        if target.is_null() {
                            continue;
                        }
                        return err(format!("REMOVE {var}:Label requires a node"));
                    };
                    for l in labels {
                        if let Some(sym) = graph.interner().get(l) {
                            graph
                                .remove_label(n, sym)
                                .map_err(|e| EvalError::new(e.to_string()))?;
                        }
                    }
                }
            }
        }
    }
    Ok(table)
}

/// `[DETACH] DELETE`: deletions are collected across all rows first, then
/// applied (relationships before nodes), so that repeated references to
/// the same entity are harmless — matching Cypher's end-of-clause
/// visibility rule.
pub fn exec_delete(
    graph: &mut PropertyGraph,
    params: &Params,
    cfg: &EngineConfig,
    detach: bool,
    exprs: &[Expr],
    table: Table,
) -> Result<Table, EvalError> {
    let schema = table.schema().clone();
    let mut nodes: Vec<NodeId> = Vec::new();
    let mut rels: Vec<RelId> = Vec::new();
    for row in table.rows() {
        for e in exprs {
            let v = {
                let ctx = EvalContext::new(graph, params).with_config(cfg.match_config);
                let b = Bindings::new(&schema, row);
                eval_expr(&ctx, &b, e)?
            };
            match v {
                Value::Null => {}
                Value::Node(n) => nodes.push(n),
                Value::Rel(r) => rels.push(r),
                Value::Path(p) => {
                    nodes.extend(p.nodes());
                    rels.extend(p.rels());
                }
                other => {
                    return err(format!(
                        "DELETE requires nodes, relationships or paths, got {}",
                        other.type_name()
                    ))
                }
            }
        }
    }
    rels.sort_unstable();
    rels.dedup();
    nodes.sort_unstable();
    nodes.dedup();
    for r in rels {
        if graph.contains_rel(r) {
            graph
                .delete_rel(r)
                .map_err(|e| EvalError::new(e.to_string()))?;
        }
    }
    for n in nodes {
        if !graph.contains_node(n) {
            continue;
        }
        if detach {
            graph
                .detach_delete_node(n)
                .map_err(|e| EvalError::new(e.to_string()))?;
        } else {
            graph
                .delete_node(n)
                .map_err(|e| EvalError::new(e.to_string()))?;
        }
    }
    Ok(table)
}
