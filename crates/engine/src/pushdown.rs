//! Partial-aggregation and top-k pushdown: folding the final projection
//! inside the morsel pipeline.
//!
//! Before this module, every `RETURN`/`WITH` that aggregates, deduplicates
//! or sorts forced a full *pipeline breaker*: the morsel workers each
//! materialized their share of the match output, the partial tables were
//! merged into one, and grouping/sorting ran single-threaded over the
//! merged table. For the analytic queries Section 3 of the paper centers
//! on (implicit grouping keys, `count`, `collect`, ordered projections)
//! that merged table *is* the cost — it scales with the pre-aggregation
//! row count and serializes the most expensive clause.
//!
//! Here, when the **final** clause of a query is a plannable `MATCH` and
//! the `RETURN` qualifies, each worker instead folds its morsels directly
//! into a partial state:
//!
//! * aggregating projections (and `DISTINCT`) fold into a
//!   [`GroupedAggState`] — the *same* type the sequential reference
//!   semantics use, so there is exactly one grouping implementation;
//! * `ORDER BY … LIMIT k` (no aggregation) folds into a bounded
//!   [`TopKState`] of `skip + limit` rows per morsel.
//!
//! Partial states are merged **in morsel order**. Every constituent is
//! designed to make that merge reproduce the sequential row-order fold
//! bit-for-bit — group creation order, distinct first-occurrence order,
//! `min`/`max` tie-breaking, stable-sort tie-breaking, and (via exact
//! float summation) `sum`/`avg` bits — so thread count and morsel size
//! remain unobservable, the determinism contract the executor has had
//! since the morsel refactor.
//!
//! Any error inside the fused path makes the caller fall back to the
//! classic materialize-then-project execution, which reports the
//! canonical (scheduling-independent) error.

use crate::exec::{EngineConfig, PartialAggMode};
use crate::ops::{build_prepared, parallel_morsels, prepare_sources, ExecMetrics, PreparedSource};
use crate::plan::PlanStep;
use crate::planner::PlannedMatch;
use cypher_ast::expr::Expr;
use cypher_ast::query::Return;
use cypher_core::clauses::{apply_order_by_scoped, eval_count};
use cypher_core::error::EvalError;
use cypher_core::project::{GroupedAggState, ProjectionPlan, TopKState};
use cypher_core::table::{Record, Schema, Table};
use cypher_core::EvalContext;
use std::sync::Arc;

/// What a qualifying final projection folds into.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum PushdownKind {
    /// Grouped aggregation (implicit grouping keys + aggregate calls).
    Aggregate,
    /// `DISTINCT` with no aggregates: ordered duplicate elimination.
    Distinct,
    /// `ORDER BY … LIMIT` with neither aggregates nor `DISTINCT`.
    TopK,
}

/// Classifies a `RETURN` body, independent of schema or data. `None`
/// means the projection needs the full materialized input (e.g. a bare
/// `ORDER BY` without `LIMIT`).
pub(crate) fn ret_pushdown(ret: &Return) -> Option<PushdownKind> {
    let any_agg = ret.items.iter().any(|i| i.expr.contains_aggregate());
    if any_agg {
        Some(PushdownKind::Aggregate)
    } else if ret.distinct {
        Some(PushdownKind::Distinct)
    } else if !ret.order_by.is_empty() && ret.limit.is_some() {
        Some(PushdownKind::TopK)
    } else {
        None
    }
}

/// Result of attempting the fused path: either the final table of the
/// query (projection applied), or the untouched driving table for the
/// caller's classic execution.
pub(crate) enum FusedOutcome {
    /// The fused pipeline produced the query's final table.
    Done(Table),
    /// Not applicable (or an error occurred): run the classic path.
    Skipped(Table),
}

/// One morsel's partial state.
enum FoldState {
    Agg(GroupedAggState),
    TopK(TopKState),
}

/// Everything the per-morsel fold needs, compiled once.
struct FusedSpec<'a> {
    plan: ProjectionPlan,
    ret: &'a Return,
    kind: PushdownKind,
    /// `SKIP`/`LIMIT` bounds (evaluated up front; only used by `TopK`).
    skip: usize,
    limit: usize,
}

impl FusedSpec<'_> {
    fn new_state(&self) -> FoldState {
        match self.kind {
            PushdownKind::Aggregate => FoldState::Agg(GroupedAggState::new(true)),
            PushdownKind::Distinct => FoldState::Agg(GroupedAggState::new(false)),
            PushdownKind::TopK => FoldState::TopK(TopKState::new(
                self.skip.saturating_add(self.limit),
                &self.ret.order_by,
            )),
        }
    }

    fn feed(
        &self,
        state: &mut FoldState,
        ctx: &EvalContext<'_>,
        schema: &Schema,
        row: &Record,
    ) -> Result<(), EvalError> {
        match state {
            FoldState::Agg(st) => st.feed(ctx, &self.plan, schema, row),
            FoldState::TopK(st) => {
                let out_row = self.plan.project_row(ctx, schema, row)?;
                st.feed(
                    ctx,
                    &self.ret.order_by,
                    self.plan.out_schema(),
                    out_row,
                    schema,
                    Some(row),
                )
            }
        }
    }

    /// Merges the per-morsel states in order and applies the tail of the
    /// projection (`DISTINCT` over groups, `ORDER BY`, `SKIP`/`LIMIT`).
    fn finalize(
        &self,
        states: Vec<FoldState>,
        ctx: &EvalContext<'_>,
        raw_schema: &Arc<Schema>,
    ) -> Result<Table, EvalError> {
        match self.kind {
            PushdownKind::TopK => {
                let topk: Vec<TopKState> = states
                    .into_iter()
                    .map(|s| match s {
                        FoldState::TopK(t) => t,
                        FoldState::Agg(_) => unreachable!("kind mismatch"),
                    })
                    .collect();
                Ok(TopKState::merge_sorted(
                    topk,
                    &self.ret.order_by,
                    self.skip,
                    self.limit,
                    self.plan.out_schema().clone(),
                ))
            }
            PushdownKind::Aggregate | PushdownKind::Distinct => {
                let mut iter = states.into_iter().map(|s| match s {
                    FoldState::Agg(a) => a,
                    FoldState::TopK(_) => unreachable!("kind mismatch"),
                });
                let mut acc = iter.next().unwrap_or_else(|| match self.new_state() {
                    FoldState::Agg(a) => a,
                    _ => unreachable!(),
                });
                for st in iter {
                    acc.merge(st, &self.plan);
                }
                let (mut out, mut sources) = acc.finalize(ctx, &self.plan, raw_schema)?;
                if self.ret.distinct && self.plan.is_aggregating() {
                    out = out.dedup();
                    sources.clear();
                }
                if !self.ret.order_by.is_empty() {
                    let src = if sources.is_empty() {
                        None
                    } else {
                        Some((raw_schema.clone(), sources))
                    };
                    out = apply_order_by_scoped(ctx, &self.ret.order_by, out, src)?;
                }
                if self.skip > 0 || self.ret.limit.is_some() {
                    out = out.slice(self.skip, self.ret.limit.as_ref().map(|_| self.limit));
                }
                Ok(out)
            }
        }
    }
}

/// Attempts to run `MATCH … [WHERE …] RETURN <qualifying projection>` as
/// one fused pipeline. On any internal error the original driving table
/// is handed back and the caller re-runs the classic path, which surfaces
/// the canonical error.
pub(crate) fn try_fused_match_projection(
    ctx: &EvalContext<'_>,
    cfg: &EngineConfig,
    planned: &PlannedMatch,
    where_: Option<&Expr>,
    ret: &Return,
    table: Table,
) -> FusedOutcome {
    let Some(kind) = ret_pushdown(ret) else {
        return FusedOutcome::Skipped(table);
    };
    let mut steps = planned.plan.steps.clone();
    if let Some(p) = where_ {
        steps.push(PlanStep::FilterExpr { pred: p.clone() });
    }
    // The schema visible to the projection: driving fields plus the new
    // match variables. (The pipeline's raw schema is a superset with
    // hidden columns; expressions resolve by name, so feeding raw rows is
    // equivalent — and saves the per-row projection to visible columns.)
    let mut vis = table.schema().clone();
    for v in &planned.new_vars {
        vis = vis.with_field(v.clone());
    }
    let plan = match ProjectionPlan::compile(ret, &vis) {
        Ok(p) => p,
        Err(_) => return FusedOutcome::Skipped(table),
    };
    let (skip, limit) = match (
        eval_count(ctx, ret.skip.as_ref(), "SKIP"),
        match &ret.limit {
            Some(_) => eval_count(ctx, ret.limit.as_ref(), "LIMIT").map(Some),
            None => Ok(None),
        },
    ) {
        (Ok(s), Ok(l)) => (s, l.unwrap_or(0)),
        _ => return FusedOutcome::Skipped(table),
    };
    let spec = FusedSpec {
        plan,
        ret,
        kind,
        skip,
        limit,
    };

    let morsel = cfg.morsel_size.max(1);
    let threads = cfg.num_threads.max(1);
    let prepared = match prepare_sources(ctx, &steps) {
        Ok(p) => p,
        Err(_) => return FusedOutcome::Skipped(table),
    };

    // Parallel dispatch mirrors `run_plan`'s gate: a source-anchored plan
    // with more than one morsel of work (`Force` drops the size gate so CI
    // can exercise the merge path on arbitrarily small inputs).
    if threads > 1 && steps.first().is_some_and(|s| s.is_source()) {
        let (var, items) = prepared[0].as_ref().expect("is_source").clone();
        let total = table.len().saturating_mul(items.len());
        let engage = total > 0 && (cfg.partial_agg == PartialAggMode::Force || total > morsel);
        if engage {
            match run_parallel_fused(
                ctx,
                &spec,
                &steps[1..],
                &prepared[1..],
                &table,
                &var,
                &items,
                morsel,
                threads,
                cfg.exec_metrics.as_deref(),
            ) {
                Ok(t) => return FusedOutcome::Done(t),
                Err(_) => return FusedOutcome::Skipped(table),
            }
        }
    }

    // Sequential fused fold: stream the pipeline into one state — same
    // results, but the match output is never materialized as a table.
    // (The driving table is cloned so the classic path can still run if
    // the fold errors; driving tables at this point are the usually-tiny
    // pre-match context, not the scan output.)
    match run_sequential_fused(
        ctx,
        &spec,
        &steps,
        &prepared,
        table.clone(),
        morsel,
        cfg.exec_metrics.as_deref(),
    ) {
        Ok(t) => FusedOutcome::Done(t),
        Err(_) => FusedOutcome::Skipped(table),
    }
}

fn run_sequential_fused<'a>(
    ctx: &'a EvalContext<'a>,
    spec: &FusedSpec<'_>,
    steps: &[PlanStep],
    prepared: &[PreparedSource],
    input: Table,
    morsel: usize,
    metrics: Option<&'a ExecMetrics>,
) -> Result<Table, EvalError> {
    let mut op = build_prepared(ctx, steps, prepared, input, morsel, metrics)?;
    let raw_schema = op.schema().clone();
    let mut state = spec.new_state();
    while let Some(batch) = op.next_batch()? {
        for row in batch.rows() {
            spec.feed(&mut state, ctx, &raw_schema, row)?;
        }
    }
    drop(op);
    spec.finalize(vec![state], ctx, &raw_schema)
}

/// The parallel fold: one partial state per morsel, merged in morsel
/// order. Mirrors `ops::run_parallel`'s work division exactly — morsel
/// `k` covers rows `[k·m, (k+1)·m)` of the row-major `driving × items`
/// product — so the concatenation of per-morsel row streams *is* the
/// sequential row order, and in-order merging reproduces the sequential
/// fold.
#[allow(clippy::too_many_arguments)]
fn run_parallel_fused<'a>(
    ctx: &'a EvalContext<'a>,
    spec: &FusedSpec<'_>,
    rest: &[PlanStep],
    rest_sources: &[PreparedSource],
    driving: &Table,
    var: &str,
    items: &[cypher_graph::Value],
    morsel: usize,
    threads: usize,
    metrics: Option<&'a ExecMetrics>,
) -> Result<Table, EvalError> {
    let total = driving.len() * items.len();
    let n_morsels = total.div_ceil(morsel);
    let src_schema = driving.schema().with_field(var.to_string());
    let per_row = items.len();

    // The raw schema is identical for every morsel (same steps over the
    // same source schema); capture it from the first build.
    let schema_slot: std::sync::Mutex<Option<Arc<Schema>>> = std::sync::Mutex::new(None);

    let slots = parallel_morsels(threads, n_morsels, |i| {
        let lo = i * morsel;
        let hi = ((i + 1) * morsel).min(total);
        let mut t = Table::empty(src_schema.clone());
        for idx in lo..hi {
            let mut r = driving.rows()[idx / per_row].cloned_with_extra(1);
            r.push(items[idx % per_row].clone());
            t.push(r);
        }
        let mut op = build_prepared(ctx, rest, rest_sources, t, morsel, metrics)?;
        let raw_schema = op.schema().clone();
        {
            let mut slot = schema_slot.lock().unwrap();
            if slot.is_none() {
                *slot = Some(raw_schema.clone());
            }
        }
        let mut state = spec.new_state();
        while let Some(batch) = op.next_batch()? {
            for row in batch.rows() {
                spec.feed(&mut state, ctx, &raw_schema, row)?;
            }
        }
        Ok(state)
    })?;

    let states: Vec<FoldState> = slots.into_iter().flatten().collect();
    let raw_schema = schema_slot
        .into_inner()
        .unwrap()
        .expect("at least one morsel ran");
    spec.finalize(states, ctx, &raw_schema)
}
