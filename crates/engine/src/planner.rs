//! The cost-based `MATCH` planner.
//!
//! Mirrors the strategy the paper attributes to Neo4j (Section 2): query
//! planning "based on the IDP algorithm, using a cost model" — for the
//! linear path patterns of core Cypher, dynamic programming over join
//! orders degenerates to choosing the cheapest *anchor* node pattern of
//! each path (by index statistics, or a pre-bound argument) and expanding
//! outward along native adjacency with the `Expand` operator. Disconnected
//! patterns compose by nested iteration, which is exactly a cartesian
//! product.
//!
//! Anchor costing is **statistics-driven**: the store maintains per-label
//! node counts and per-`(label, key)` entry/distinct-value counts (see
//! `cypher_graph::index`), and the planner prices each candidate start
//! position as the expected number of rows its scan or seek produces —
//! `|label|` for a `NodeIndexScan`, `entries / distinct` for a
//! `PropertyIndexSeek` (the uniform-values assumption of the selectivity
//! cost model the paper cites).
//!
//! [`PlannerMode::CartesianJoin`] disables `Expand` and compiles rigid
//! patterns to the relational baseline (scan nodes × scan relationships +
//! endpoint filters) measured against `Expand` in experiment E17.
//!
//! Anchor choice doubles as the executor's **parallelism decision**: every
//! plan starts with a source step (scan or seek) unless the anchor is
//! pre-bound, and [`crate::ops::run_plan`] partitions exactly that source
//! into morsels for the worker pool. Picking the cheapest anchor therefore
//! also picks the smallest work list to split.

use crate::plan::{MatchPlan, PathElem, PlanStep};
use cypher_ast::expr::Expr;
use cypher_ast::pattern::{Dir, NodePattern, PathPattern, RelPattern};
use cypher_graph::{PropertyGraph, ViewRef};

/// Constant property values the planner may look up in the property
/// index: literals or parameters (anything not depending on the row).
fn constant_props(chi: &NodePattern) -> impl Iterator<Item = (&String, &Expr)> {
    chi.props
        .iter()
        .filter(|(_, e)| matches!(e, Expr::Lit(_) | Expr::Param(_)))
        .map(|(k, e)| (k, e))
}

/// Plan strategy selector.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum PlannerMode {
    /// Anchor + `Expand` chains (the Neo4j-style plan).
    #[default]
    ExpandBased,
    /// Relational baseline: cartesian scans + endpoint filters (falls back
    /// to `Expand` for variable-length steps, which have no bounded
    /// relational encoding).
    CartesianJoin,
}

/// Everything the planner needs to know besides the graph: the plan
/// strategy plus which index families it may exploit. Turning an index
/// off never affects results — only the shape (and speed) of the plan.
#[derive(Clone, Copy, Debug)]
pub struct PlannerOptions {
    /// Plan strategy (`Expand` chains vs the cartesian baseline).
    pub mode: PlannerMode,
    /// Allow `NodeIndexScan` over the label index (otherwise label
    /// predicates compile to `AllNodesScan` + `FilterLabels`).
    pub use_label_index: bool,
    /// Allow `PropertyIndexSeek` over the exact-match property indexes
    /// (otherwise constant property predicates become residual filters).
    pub use_property_index: bool,
}

impl Default for PlannerOptions {
    fn default() -> Self {
        PlannerOptions {
            mode: PlannerMode::default(),
            use_label_index: true,
            use_property_index: true,
        }
    }
}

impl From<PlannerMode> for PlannerOptions {
    fn from(mode: PlannerMode) -> Self {
        PlannerOptions {
            mode,
            ..PlannerOptions::default()
        }
    }
}

/// The output of planning one `MATCH` clause: the pipeline plus the
/// *visible* (non-hidden) variables it introduces, in deterministic order.
#[derive(Debug, Clone)]
pub struct PlannedMatch {
    /// The physical plan.
    pub plan: MatchPlan,
    /// New visible columns appended to the driving table.
    pub new_vars: Vec<String>,
}

struct PlanCtx<'a> {
    graph: &'a PropertyGraph,
    opts: PlannerOptions,
    bound: Vec<String>,
    steps: Vec<PlanStep>,
    step_est: Vec<f64>,
    rel_cols: Vec<String>,
    anon_counter: usize,
    est_rows: f64,
}

/// The index access the planner selected for a start node, with its
/// estimated output cardinality.
struct SeekChoice {
    label: Option<String>,
    key: String,
    value: Expr,
    est: f64,
}

impl PlanCtx<'_> {
    /// Appends a step and records the cost model's running estimate at
    /// that point — callers multiply `est_rows` *before* emitting, so
    /// each step's recorded value is its own estimated output.
    fn emit(&mut self, step: PlanStep) {
        self.steps.push(step);
        self.step_est.push(self.est_rows);
    }

    fn is_bound(&self, name: &str) -> bool {
        self.bound.iter().any(|b| b == name)
    }

    fn bind(&mut self, name: &str) {
        if !self.is_bound(name) {
            self.bound.push(name.to_string());
        }
    }

    fn fresh_anon(&mut self) -> String {
        let n = format!(" anon{}", self.anon_counter);
        self.anon_counter += 1;
        n
    }

    fn label_cardinality(&self, label: &str) -> usize {
        self.graph
            .interner()
            .get(label)
            .map(|sym| self.graph.label_cardinality(sym))
            .unwrap_or(0)
    }

    /// Expected rows of an equality seek on `(label, key)` (composite
    /// index) or `key` alone, from the store's index statistics.
    fn seek_estimate(&self, label: Option<&str>, key: &str) -> f64 {
        let interner = self.graph.interner();
        let Some(k) = interner.get(key) else {
            return 0.0; // never-interned key: nothing can match
        };
        match label {
            Some(l) => match interner.get(l) {
                Some(l) => self
                    .graph
                    .label_prop_index_cardinality(l, k)
                    .seek_estimate(),
                None => 0.0,
            },
            None => self.graph.prop_index_cardinality(k).seek_estimate(),
        }
    }

    /// The cheapest index seek available for a node pattern, if the
    /// property index is enabled and the pattern pins a constant value.
    fn best_seek(&self, chi: &NodePattern) -> Option<SeekChoice> {
        if !self.opts.use_property_index {
            return None;
        }
        let mut best: Option<SeekChoice> = None;
        for (key, value) in constant_props(chi) {
            // Prefer the composite index through the most selective
            // label; ties keep the composite (earlier candidates win).
            let mut choice: Option<(Option<&str>, f64)> = None;
            for cand in chi
                .labels
                .iter()
                .map(|l| (Some(l.as_str()), self.seek_estimate(Some(l), key)))
                .chain(std::iter::once((None, self.seek_estimate(None, key))))
            {
                if choice.map(|(_, est)| cand.1 < est).unwrap_or(true) {
                    choice = Some(cand);
                }
            }
            let candidate = choice.map(|(label, est)| SeekChoice {
                label: label.map(String::from),
                key: key.clone(),
                value: value.clone(),
                est,
            });
            if let Some(c) = candidate {
                if best.as_ref().map(|b| c.est < b.est).unwrap_or(true) {
                    best = Some(c);
                }
            }
        }
        best
    }

    /// Estimated number of start candidates for a node pattern, from the
    /// index statistics.
    fn start_cost(&self, chi: &NodePattern) -> f64 {
        if let Some(name) = &chi.name {
            if self.is_bound(name) {
                return 0.5; // already a single binding per driving row
            }
        }
        if let Some(seek) = self.best_seek(chi) {
            // An index seek returns `entries / distinct` rows on average;
            // clamp to ≥ a nominal fraction of a row so a seek still
            // prices above a pre-bound argument.
            return seek.est.max(0.6);
        }
        if chi.labels.is_empty() || !self.opts.use_label_index {
            self.graph.node_count() as f64
        } else {
            chi.labels
                .iter()
                .map(|l| self.label_cardinality(l) as f64)
                .fold(f64::INFINITY, f64::min)
        }
    }

    /// Average fan-out of one hop of the given relationship pattern.
    fn expand_factor(&self, rho: &RelPattern) -> f64 {
        let n = self.graph.node_count().max(1) as f64;
        let r = if rho.types.is_empty() {
            self.graph.rel_count() as f64
        } else {
            rho.types
                .iter()
                .map(|t| {
                    self.graph
                        .interner()
                        .get(t)
                        .map(|sym| self.graph.type_cardinality(sym))
                        .unwrap_or(0) as f64
                })
                .sum()
        };
        let per_dir = r / n;
        match rho.dir {
            Dir::Both => per_dir * 2.0,
            _ => per_dir,
        }
    }
}

/// Plans one `MATCH` clause over the given driving-table fields.
///
/// `view` is the snapshot whose statistics drive anchor/seek selection —
/// a [`cypher_graph::GraphView`] from a versioned session or a plain
/// `&PropertyGraph` borrow. `opts` accepts a bare [`PlannerMode`] (index
/// usage defaults to on) or full [`PlannerOptions`].
pub fn plan_match<'a>(
    view: impl Into<ViewRef<'a>>,
    driving_fields: &[String],
    patterns: &[PathPattern],
    opts: impl Into<PlannerOptions>,
) -> PlannedMatch {
    let opts = opts.into();
    let mut ctx = PlanCtx {
        graph: view.into().graph(),
        opts,
        bound: driving_fields.to_vec(),
        steps: Vec::new(),
        step_est: Vec::new(),
        rel_cols: Vec::new(),
        anon_counter: 0,
        est_rows: 1.0,
    };
    let before: Vec<String> = ctx.bound.clone();

    for pat in patterns {
        let all_single = pat.rel_patterns().all(|r| r.range.is_single());
        if opts.mode == PlannerMode::CartesianJoin && all_single && !pat.steps.is_empty() {
            plan_path_cartesian(&mut ctx, pat);
        } else {
            plan_path_expand(&mut ctx, pat);
        }
    }

    let new_vars: Vec<String> = ctx
        .bound
        .iter()
        .filter(|v| !before.contains(v) && !v.starts_with(' '))
        .cloned()
        .collect();
    PlannedMatch {
        plan: MatchPlan {
            steps: ctx.steps,
            estimated_rows: ctx.est_rows,
            step_estimates: ctx.step_est,
        },
        new_vars,
    }
}

/// Column names for the nodes and relationships of a path, generating
/// hidden names for anonymous positions.
fn path_columns(ctx: &mut PlanCtx<'_>, pat: &PathPattern) -> (Vec<String>, Vec<String>) {
    let mut node_cols = Vec::with_capacity(pat.steps.len() + 1);
    let mut rel_cols = Vec::with_capacity(pat.steps.len());
    let fresh_or = |ctx: &mut PlanCtx<'_>, name: &Option<String>| match name {
        Some(n) => n.clone(),
        None => ctx.fresh_anon(),
    };
    node_cols.push(fresh_or(ctx, &pat.start.name));
    for (rho, chi) in &pat.steps {
        rel_cols.push(fresh_or(ctx, &rho.name));
        node_cols.push(fresh_or(ctx, &chi.name));
    }
    (node_cols, rel_cols)
}

/// Emits the scan/argument for a start node plus its label/property
/// filters.
fn emit_start(ctx: &mut PlanCtx<'_>, col: &str, chi: &NodePattern) {
    if ctx.is_bound(col) {
        ctx.emit(PlanStep::Argument { var: col.into() });
        emit_node_filters(ctx, col, chi, None);
        return;
    }
    // Prefer an index seek on a constant property — the composite
    // (label, key, value) index when a label is present.
    if let Some(seek) = ctx.best_seek(chi) {
        let scanned_label = seek.label.clone();
        ctx.est_rows *= seek.est.max(1.0);
        ctx.emit(PlanStep::PropertyIndexSeek {
            var: col.into(),
            label: seek.label,
            key: seek.key,
            value: seek.value,
        });
        ctx.bind(col);
        // Labels not covered by the composite seek and all property
        // conditions still apply; the re-checked key is cheap and keeps
        // `=` semantics exact (the index answers *equivalence* queries,
        // which differ from `=` on numerics vs nulls).
        emit_node_filters(ctx, col, chi, scanned_label.as_deref());
        return;
    }
    if chi.labels.is_empty() || !ctx.opts.use_label_index {
        ctx.est_rows *= ctx.graph.node_count() as f64;
        ctx.emit(PlanStep::AllNodesScan { var: col.into() });
        ctx.bind(col);
        emit_node_filters(ctx, col, chi, None);
    } else {
        // Scan by the most selective label, filter the rest.
        let best = chi
            .labels
            .iter()
            .min_by_key(|l| ctx.label_cardinality(l))
            .unwrap()
            .clone();
        ctx.est_rows *= ctx.label_cardinality(&best).max(1) as f64;
        ctx.emit(PlanStep::NodeIndexScan {
            var: col.into(),
            label: best.clone(),
        });
        ctx.bind(col);
        emit_node_filters(ctx, col, chi, Some(&best));
    }
}

/// Label/property filters for a node column; `scanned_label` was already
/// established by a label scan and is skipped.
fn emit_node_filters(
    ctx: &mut PlanCtx<'_>,
    col: &str,
    chi: &NodePattern,
    scanned_label: Option<&str>,
) {
    let labels: Vec<String> = chi
        .labels
        .iter()
        .filter(|l| Some(l.as_str()) != scanned_label)
        .cloned()
        .collect();
    if !labels.is_empty() {
        ctx.emit(PlanStep::FilterLabels {
            var: col.into(),
            labels,
        });
    }
    if !chi.props.is_empty() {
        ctx.emit(PlanStep::FilterProps {
            var: col.into(),
            props: chi.props.clone(),
        });
    }
}

/// Emits one `Expand` step (plus target filters). `reversed` flips the
/// written direction when expanding right-to-left.
#[allow(clippy::too_many_arguments)]
fn emit_expand(
    ctx: &mut PlanCtx<'_>,
    from_col: &str,
    rel_col: &str,
    to_col: &str,
    rho: &RelPattern,
    chi_to: &NodePattern,
    reversed: bool,
) {
    let dir = if reversed {
        match rho.dir {
            Dir::Out => Dir::In,
            Dir::In => Dir::Out,
            Dir::Both => Dir::Both,
        }
    } else {
        rho.dir
    };
    let (lo, hi) = rho.range.bounds();
    ctx.est_rows *= ctx.expand_factor(rho).max(0.1);
    ctx.emit(PlanStep::Expand {
        from: from_col.into(),
        rel: rel_col.into(),
        to: to_col.into(),
        dir,
        types: rho.types.clone(),
        lo,
        hi,
        single: rho.range.is_single(),
        reversed,
        exclude: ctx.rel_cols.clone(),
        props: if rho.range.is_single() {
            Vec::new()
        } else {
            rho.props.clone()
        },
    });
    ctx.rel_cols.push(rel_col.to_string());
    ctx.bind(rel_col);
    let newly_bound_to = !ctx.is_bound(to_col);
    ctx.bind(to_col);
    if newly_bound_to {
        emit_node_filters(ctx, to_col, chi_to, None);
    } else {
        // Expand-into: the node is already constrained; still check
        // labels/props in case this occurrence adds them.
        emit_node_filters(ctx, to_col, chi_to, None);
    }
    // Relationship property conditions apply per traversed hop and are
    // evaluated inside the Expand operator via FilterProps on single hops.
    if !rho.props.is_empty() && rho.range.is_single() {
        ctx.emit(PlanStep::FilterProps {
            var: rel_col.into(),
            props: rho.props.clone(),
        });
    }
}

fn plan_path_expand(ctx: &mut PlanCtx<'_>, pat: &PathPattern) {
    let (node_cols, rel_cols) = path_columns(ctx, pat);
    let node_pats: Vec<&NodePattern> = pat.node_patterns().collect();
    let rel_pats: Vec<&RelPattern> = pat.rel_patterns().collect();

    // Anchor selection: the cheapest node position. Variable-length
    // relationship property maps force left-to-right evaluation from an
    // anchor at or before them only in the sense of condition evaluation,
    // which is order-independent here, so pure cost decides.
    let mut best = 0usize;
    let mut best_cost = f64::INFINITY;
    for (i, chi) in node_pats.iter().enumerate() {
        let mut cost = ctx.start_cost(chi);
        // Prefer positions whose column is literally bound already.
        if ctx.is_bound(&node_cols[i]) {
            cost = 0.4;
        }
        if cost < best_cost {
            best_cost = cost;
            best = i;
        }
    }

    emit_start(ctx, &node_cols[best], node_pats[best]);
    // Expand rightwards from the anchor…
    for i in best..rel_pats.len() {
        emit_expand(
            ctx,
            &node_cols[i],
            &rel_cols[i],
            &node_cols[i + 1],
            rel_pats[i],
            node_pats[i + 1],
            false,
        );
    }
    // …then leftwards.
    for i in (0..best).rev() {
        emit_expand(
            ctx,
            &node_cols[i + 1],
            &rel_cols[i],
            &node_cols[i],
            rel_pats[i],
            node_pats[i],
            true,
        );
    }

    emit_path_bind(ctx, pat, &node_cols, &rel_cols);
}

fn plan_path_cartesian(ctx: &mut PlanCtx<'_>, pat: &PathPattern) {
    let (node_cols, rel_cols) = path_columns(ctx, pat);
    let node_pats: Vec<&NodePattern> = pat.node_patterns().collect();
    let rel_pats: Vec<&RelPattern> = pat.rel_patterns().collect();

    // Scan every node position…
    for (col, chi) in node_cols.iter().zip(&node_pats) {
        emit_start(ctx, col, chi);
    }
    // …scan every relationship position and filter endpoints.
    for (i, rho) in rel_pats.iter().enumerate() {
        let rel_col = &rel_cols[i];
        if !ctx.is_bound(rel_col) {
            ctx.est_rows *= ctx.graph.rel_count().max(1) as f64;
            ctx.emit(PlanStep::RelScan {
                var: rel_col.clone(),
            });
            ctx.bind(rel_col);
        }
        ctx.emit(PlanStep::FilterEndpoints {
            rel: rel_col.clone(),
            from: node_cols[i].clone(),
            to: node_cols[i + 1].clone(),
            dir: rho.dir,
            types: rho.types.clone(),
            exclude: ctx.rel_cols.clone(),
        });
        ctx.rel_cols.push(rel_col.clone());
        if !rho.props.is_empty() {
            ctx.emit(PlanStep::FilterProps {
                var: rel_col.clone(),
                props: rho.props.clone(),
            });
        }
    }

    emit_path_bind(ctx, pat, &node_cols, &rel_cols);
}

fn emit_path_bind(
    ctx: &mut PlanCtx<'_>,
    pat: &PathPattern,
    node_cols: &[String],
    rel_cols: &[String],
) {
    let Some(path_name) = &pat.name else { return };
    let mut elements = vec![PathElem::Node(node_cols[0].clone())];
    for (i, (rho, _)) in pat.steps.iter().enumerate() {
        if rho.range.is_single() {
            elements.push(PathElem::Rel(rel_cols[i].clone()));
        } else {
            elements.push(PathElem::RelList(rel_cols[i].clone()));
        }
        elements.push(PathElem::Node(node_cols[i + 1].clone()));
    }
    ctx.emit(PlanStep::PathBind {
        var: path_name.clone(),
        elements,
    });
    ctx.bind(path_name);
}

#[cfg(test)]
mod tests {
    use super::*;
    use cypher_graph::Value;
    use cypher_parser::parse_pattern;

    fn sample_graph() -> PropertyGraph {
        let mut g = PropertyGraph::new();
        // 100 Person nodes, 3 Admin nodes, chain of KNOWS.
        let mut prev = None;
        for i in 0..100 {
            let labels: &[&str] = if i < 3 {
                &["Person", "Admin"]
            } else {
                &["Person"]
            };
            let n = g.add_node(labels, [("i", Value::int(i))]);
            if let Some(p) = prev {
                g.add_rel(p, n, "KNOWS", []).unwrap();
            }
            prev = Some(n);
        }
        g
    }

    #[test]
    fn anchors_on_most_selective_label() {
        let g = sample_graph();
        let p = parse_pattern("(a:Person)-[:KNOWS]->(b:Admin)").unwrap();
        let planned = plan_match(&g, &[], &[p], PlannerMode::ExpandBased);
        // The Admin side has 3 nodes vs 100 Person: anchor must be b.
        match &planned.plan.steps[0] {
            PlanStep::NodeIndexScan { var, label } => {
                assert_eq!(var, "b");
                assert_eq!(label, "Admin");
            }
            other => panic!("expected label scan, got {other}"),
        }
        // And the expand runs right-to-left (reversed direction).
        assert!(planned
            .plan
            .steps
            .iter()
            .any(|s| matches!(s, PlanStep::Expand { from, to, dir: Dir::In, .. } if from == "b" && to == "a")));
        // Binding order follows the traversal (anchor first).
        assert_eq!(planned.new_vars, vec!["b", "a"]);
    }

    #[test]
    fn bound_variable_becomes_argument() {
        let g = sample_graph();
        let p = parse_pattern("(a)-[:KNOWS]->(b)").unwrap();
        let planned = plan_match(&g, &["a".to_string()], &[p], PlannerMode::ExpandBased);
        assert!(matches!(
            &planned.plan.steps[0],
            PlanStep::Argument { var } if var == "a"
        ));
        assert_eq!(planned.new_vars, vec!["b"]);
    }

    #[test]
    fn anonymous_elements_get_hidden_columns() {
        let g = sample_graph();
        let p = parse_pattern("()-[:KNOWS]->()").unwrap();
        let planned = plan_match(&g, &[], &[p], PlannerMode::ExpandBased);
        assert!(planned.new_vars.is_empty());
        let PlanStep::Expand { rel, .. } = &planned.plan.steps[1] else {
            panic!("expected expand")
        };
        assert!(rel.starts_with(' '), "anonymous rel column is hidden");
    }

    #[test]
    fn cartesian_mode_uses_rel_scans() {
        let g = sample_graph();
        let p = parse_pattern("(a:Admin)-[r:KNOWS]->(b)").unwrap();
        let planned = plan_match(&g, &[], &[p], PlannerMode::CartesianJoin);
        assert!(planned
            .plan
            .steps
            .iter()
            .any(|s| matches!(s, PlanStep::RelScan { .. })));
        assert!(planned
            .plan
            .steps
            .iter()
            .any(|s| matches!(s, PlanStep::FilterEndpoints { .. })));
        assert!(!planned
            .plan
            .steps
            .iter()
            .any(|s| matches!(s, PlanStep::Expand { .. })));
    }

    #[test]
    fn cartesian_mode_falls_back_for_var_length() {
        let g = sample_graph();
        let p = parse_pattern("(a)-[:KNOWS*1..3]->(b)").unwrap();
        let planned = plan_match(&g, &[], &[p], PlannerMode::CartesianJoin);
        assert!(planned
            .plan
            .steps
            .iter()
            .any(|s| matches!(s, PlanStep::Expand { .. })));
    }

    #[test]
    fn exclusion_lists_grow_along_the_chain() {
        let g = sample_graph();
        let p = parse_pattern("(a)-[r1]->(b)-[r2]->(c)").unwrap();
        let planned = plan_match(&g, &[], &[p], PlannerMode::ExpandBased);
        let expands: Vec<&PlanStep> = planned
            .plan
            .steps
            .iter()
            .filter(|s| matches!(s, PlanStep::Expand { .. }))
            .collect();
        assert_eq!(expands.len(), 2);
        let PlanStep::Expand { exclude, .. } = expands[1] else {
            unreachable!()
        };
        assert_eq!(exclude.len(), 1, "second expand excludes the first rel");
    }

    #[test]
    fn constant_property_uses_index_scan() {
        let g = sample_graph();
        let p = parse_pattern("(a:Person {i: 5})-[:KNOWS]->(b)").unwrap();
        let planned = plan_match(&g, &[], &[p], PlannerMode::ExpandBased);
        match &planned.plan.steps[0] {
            PlanStep::PropertyIndexSeek {
                var, label, key, ..
            } => {
                assert_eq!(var, "a");
                assert_eq!(label.as_deref(), Some("Person"), "composite index used");
                assert_eq!(key, "i");
            }
            other => panic!("expected property seek, got {other}"),
        }
        // The residual property filter keeps `=` semantics exact.
        assert!(planned
            .plan
            .steps
            .iter()
            .any(|s| matches!(s, PlanStep::FilterProps { .. })));
    }

    #[test]
    fn property_anchor_beats_label_anchor() {
        let g = sample_graph();
        // Anchor must move to b: {i: 7} pins a single node even though
        // Admin is a small label on the other side.
        let p = parse_pattern("(a:Admin)-[:KNOWS]->(b {i: 7})").unwrap();
        let planned = plan_match(&g, &[], &[p], PlannerMode::ExpandBased);
        assert!(
            matches!(&planned.plan.steps[0], PlanStep::PropertyIndexSeek { var, .. } if var == "b"),
            "plan: {}",
            planned.plan
        );
    }

    #[test]
    fn statistics_pick_the_more_selective_key() {
        let mut g = PropertyGraph::new();
        // `kind` has 2 distinct values over 100 nodes (est. 50 rows per
        // seek); `serial` is unique (est. 1 row). The planner must seek
        // on `serial`.
        for i in 0..100 {
            g.add_node(
                &["Device"],
                [("kind", Value::int(i % 2)), ("serial", Value::int(i))],
            );
        }
        let p = parse_pattern("(d:Device {kind: 1, serial: 37})").unwrap();
        let planned = plan_match(&g, &[], &[p], PlannerMode::ExpandBased);
        match &planned.plan.steps[0] {
            PlanStep::PropertyIndexSeek { key, label, .. } => {
                assert_eq!(key, "serial");
                assert_eq!(label.as_deref(), Some("Device"));
            }
            other => panic!("expected property seek, got {other}"),
        }
        assert!(planned.plan.estimated_rows <= 2.0, "{}", planned.plan);
    }

    #[test]
    fn disabling_property_index_falls_back_to_label_scan() {
        let g = sample_graph();
        let p = parse_pattern("(a:Person {i: 5})").unwrap();
        let opts = PlannerOptions {
            use_property_index: false,
            ..PlannerOptions::default()
        };
        let planned = plan_match(&g, &[], &[p], opts);
        assert!(
            matches!(&planned.plan.steps[0], PlanStep::NodeIndexScan { .. }),
            "plan: {}",
            planned.plan
        );
        // Property conditions survive as residual filters.
        assert!(planned
            .plan
            .steps
            .iter()
            .any(|s| matches!(s, PlanStep::FilterProps { .. })));
    }

    #[test]
    fn disabling_all_indexes_scans_everything() {
        let g = sample_graph();
        let p = parse_pattern("(a:Person {i: 5})").unwrap();
        let opts = PlannerOptions {
            use_label_index: false,
            use_property_index: false,
            ..PlannerOptions::default()
        };
        let planned = plan_match(&g, &[], &[p], opts);
        assert!(
            matches!(&planned.plan.steps[0], PlanStep::AllNodesScan { .. }),
            "plan: {}",
            planned.plan
        );
        assert!(planned
            .plan
            .steps
            .iter()
            .any(|s| matches!(s, PlanStep::FilterLabels { .. })));
    }

    #[test]
    fn named_path_emits_path_bind() {
        let g = sample_graph();
        let p = parse_pattern("p = (a)-[:KNOWS*]->(b)").unwrap();
        let planned = plan_match(&g, &[], &[p], PlannerMode::ExpandBased);
        assert!(planned
            .plan
            .steps
            .iter()
            .any(|s| matches!(s, PlanStep::PathBind { var, .. } if var == "p")));
        assert!(planned.new_vars.contains(&"p".to_string()));
    }
}
