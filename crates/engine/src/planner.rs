//! The cost-based `MATCH` planner.
//!
//! Mirrors the strategy the paper attributes to Neo4j (Section 2): query
//! planning "based on the IDP algorithm, using a cost model" — for the
//! linear path patterns of core Cypher, dynamic programming over join
//! orders degenerates to choosing the cheapest *anchor* node pattern of
//! each path (by index statistics, or a pre-bound argument) and expanding
//! outward along native adjacency with the `Expand` operator. Disconnected
//! patterns compose by nested iteration, which is exactly a cartesian
//! product.
//!
//! Anchor costing is **statistics-driven**: the store maintains per-label
//! node counts and per-`(label, key)` entry/distinct-value counts (see
//! `cypher_graph::index`), and the planner prices each candidate start
//! position as the expected number of rows its scan or seek produces —
//! `|label|` for a `NodeIndexScan`, `entries / distinct` for a
//! `PropertyIndexSeek` (the uniform-values assumption of the selectivity
//! cost model the paper cites).
//!
//! [`PlannerMode::CartesianJoin`] disables `Expand` and compiles rigid
//! patterns to the relational baseline (scan nodes × scan relationships +
//! endpoint filters) measured against `Expand` in experiment E17.
//!
//! Anchor choice doubles as the executor's **parallelism decision**: every
//! plan starts with a source step (scan or seek) unless the anchor is
//! pre-bound, and [`crate::ops::run_plan`] partitions exactly that source
//! into morsels for the worker pool. Picking the cheapest anchor therefore
//! also picks the smallest work list to split.

use crate::plan::{IntersectGuard, MatchPlan, PathElem, PlanStep};
use cypher_ast::expr::Expr;
use cypher_ast::pattern::{Dir, NodePattern, PathPattern, RelPattern};
use cypher_graph::{PropertyGraph, ViewRef};

/// Constant property values the planner may look up in the property
/// index: literals or parameters (anything not depending on the row).
fn constant_props(chi: &NodePattern) -> impl Iterator<Item = (&String, &Expr)> {
    chi.props
        .iter()
        .filter(|(_, e)| matches!(e, Expr::Lit(_) | Expr::Param(_)))
        .map(|(k, e)| (k, e))
}

/// Plan strategy selector.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum PlannerMode {
    /// Anchor + `Expand` chains (the Neo4j-style plan).
    #[default]
    ExpandBased,
    /// Relational baseline: cartesian scans + endpoint filters (falls back
    /// to `Expand` for variable-length steps, which have no bounded
    /// relational encoding).
    CartesianJoin,
}

/// When the planner may compile a cyclic `MATCH` to a worst-case-optimal
/// multiway intersection instead of a binary `Expand` chain.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum WcoJoinMode {
    /// Never: always plan `Expand` chains (the pre-intersection planner).
    Off,
    /// Cost-based: build both plans and keep the one whose *peak*
    /// intermediate-cardinality estimate is lower. Ties keep the chain.
    #[default]
    Auto,
    /// Always use the intersection plan when the pattern is eligible
    /// (cyclic, single-hop, self-contained) — the benchmarking override.
    Force,
}

/// Everything the planner needs to know besides the graph: the plan
/// strategy plus which index families it may exploit. Turning an index
/// off never affects results — only the shape (and speed) of the plan.
#[derive(Clone, Copy, Debug)]
pub struct PlannerOptions {
    /// Plan strategy (`Expand` chains vs the cartesian baseline).
    pub mode: PlannerMode,
    /// Allow `NodeIndexScan` over the label index (otherwise label
    /// predicates compile to `AllNodesScan` + `FilterLabels`).
    pub use_label_index: bool,
    /// Allow `PropertyIndexSeek` over the exact-match property indexes
    /// (otherwise constant property predicates become residual filters).
    pub use_property_index: bool,
    /// Worst-case-optimal join policy for cyclic patterns.
    pub wco_join: WcoJoinMode,
}

impl Default for PlannerOptions {
    fn default() -> Self {
        PlannerOptions {
            mode: PlannerMode::default(),
            use_label_index: true,
            use_property_index: true,
            wco_join: WcoJoinMode::default(),
        }
    }
}

impl From<PlannerMode> for PlannerOptions {
    fn from(mode: PlannerMode) -> Self {
        PlannerOptions {
            mode,
            ..PlannerOptions::default()
        }
    }
}

/// The output of planning one `MATCH` clause: the pipeline plus the
/// *visible* (non-hidden) variables it introduces, in deterministic order.
#[derive(Debug, Clone)]
pub struct PlannedMatch {
    /// The physical plan.
    pub plan: MatchPlan,
    /// New visible columns appended to the driving table.
    pub new_vars: Vec<String>,
}

struct PlanCtx<'a> {
    graph: &'a PropertyGraph,
    opts: PlannerOptions,
    bound: Vec<String>,
    steps: Vec<PlanStep>,
    step_est: Vec<f64>,
    rel_cols: Vec<String>,
    anon_counter: usize,
    est_rows: f64,
}

/// The index access the planner selected for a start node, with its
/// estimated output cardinality.
struct SeekChoice {
    label: Option<String>,
    key: String,
    value: Expr,
    est: f64,
}

impl PlanCtx<'_> {
    /// Appends a step and records the cost model's running estimate at
    /// that point — callers multiply `est_rows` *before* emitting, so
    /// each step's recorded value is its own estimated output.
    fn emit(&mut self, step: PlanStep) {
        self.steps.push(step);
        self.step_est.push(self.est_rows);
    }

    fn is_bound(&self, name: &str) -> bool {
        self.bound.iter().any(|b| b == name)
    }

    fn bind(&mut self, name: &str) {
        if !self.is_bound(name) {
            self.bound.push(name.to_string());
        }
    }

    fn fresh_anon(&mut self) -> String {
        let n = format!(" anon{}", self.anon_counter);
        self.anon_counter += 1;
        n
    }

    fn label_cardinality(&self, label: &str) -> usize {
        self.graph
            .interner()
            .get(label)
            .map(|sym| self.graph.label_cardinality(sym))
            .unwrap_or(0)
    }

    /// Expected rows of an equality seek on `(label, key)` (composite
    /// index) or `key` alone, from the store's index statistics.
    fn seek_estimate(&self, label: Option<&str>, key: &str) -> f64 {
        let interner = self.graph.interner();
        let Some(k) = interner.get(key) else {
            return 0.0; // never-interned key: nothing can match
        };
        match label {
            Some(l) => match interner.get(l) {
                Some(l) => self
                    .graph
                    .label_prop_index_cardinality(l, k)
                    .seek_estimate(),
                None => 0.0,
            },
            None => self.graph.prop_index_cardinality(k).seek_estimate(),
        }
    }

    /// The cheapest index seek available for a node pattern, if the
    /// property index is enabled and the pattern pins a constant value.
    fn best_seek(&self, chi: &NodePattern) -> Option<SeekChoice> {
        if !self.opts.use_property_index {
            return None;
        }
        let mut best: Option<SeekChoice> = None;
        for (key, value) in constant_props(chi) {
            // Prefer the composite index through the most selective
            // label; ties keep the composite (earlier candidates win).
            let mut choice: Option<(Option<&str>, f64)> = None;
            for cand in chi
                .labels
                .iter()
                .map(|l| (Some(l.as_str()), self.seek_estimate(Some(l), key)))
                .chain(std::iter::once((None, self.seek_estimate(None, key))))
            {
                if choice.map(|(_, est)| cand.1 < est).unwrap_or(true) {
                    choice = Some(cand);
                }
            }
            let candidate = choice.map(|(label, est)| SeekChoice {
                label: label.map(String::from),
                key: key.clone(),
                value: value.clone(),
                est,
            });
            if let Some(c) = candidate {
                if best.as_ref().map(|b| c.est < b.est).unwrap_or(true) {
                    best = Some(c);
                }
            }
        }
        best
    }

    /// Estimated number of start candidates for a node pattern, from the
    /// index statistics.
    fn start_cost(&self, chi: &NodePattern) -> f64 {
        if let Some(name) = &chi.name {
            if self.is_bound(name) {
                return 0.5; // already a single binding per driving row
            }
        }
        if let Some(seek) = self.best_seek(chi) {
            // An index seek returns `entries / distinct` rows on average;
            // clamp to ≥ a nominal fraction of a row so a seek still
            // prices above a pre-bound argument.
            return seek.est.max(0.6);
        }
        if chi.labels.is_empty() || !self.opts.use_label_index {
            self.graph.node_count() as f64
        } else {
            chi.labels
                .iter()
                .map(|l| self.label_cardinality(l) as f64)
                .fold(f64::INFINITY, f64::min)
        }
    }

    /// Average fan-out of one hop of the given relationship pattern.
    fn expand_factor(&self, rho: &RelPattern) -> f64 {
        let n = self.graph.node_count().max(1) as f64;
        let r = if rho.types.is_empty() {
            self.graph.rel_count() as f64
        } else {
            rho.types
                .iter()
                .map(|t| {
                    self.graph
                        .interner()
                        .get(t)
                        .map(|sym| self.graph.type_cardinality(sym))
                        .unwrap_or(0) as f64
                })
                .sum()
        };
        let per_dir = r / n;
        match rho.dir {
            Dir::Both => per_dir * 2.0,
            _ => per_dir,
        }
    }

    /// Total relationships an edge pattern can draw from (`|E|` restricted
    /// to its types) — the per-relation cardinality entering the AGM
    /// bound.
    fn edge_cardinality(&self, rho: &RelPattern) -> f64 {
        let r = if rho.types.is_empty() {
            self.graph.rel_count() as f64
        } else {
            rho.types
                .iter()
                .map(|t| {
                    self.graph
                        .interner()
                        .get(t)
                        .map(|sym| self.graph.type_cardinality(sym))
                        .unwrap_or(0) as f64
                })
                .sum()
        };
        r.max(1.0)
    }
}

/// Plans one `MATCH` clause over the given driving-table fields.
///
/// `view` is the snapshot whose statistics drive anchor/seek selection —
/// a [`cypher_graph::GraphView`] from a versioned session or a plain
/// `&PropertyGraph` borrow. `opts` accepts a bare [`PlannerMode`] (index
/// usage defaults to on) or full [`PlannerOptions`].
pub fn plan_match<'a>(
    view: impl Into<ViewRef<'a>>,
    driving_fields: &[String],
    patterns: &[PathPattern],
    opts: impl Into<PlannerOptions>,
) -> PlannedMatch {
    let opts = opts.into();
    let graph = view.into().graph();
    let new_ctx = || PlanCtx {
        graph,
        opts,
        bound: driving_fields.to_vec(),
        steps: Vec::new(),
        step_est: Vec::new(),
        rel_cols: Vec::new(),
        anon_counter: 0,
        est_rows: 1.0,
    };

    // The classic plan: each path independently, anchor + expand chain
    // (or the cartesian baseline).
    let mut ctx = new_ctx();
    for pat in patterns {
        let all_single = pat.rel_patterns().all(|r| r.range.is_single());
        if opts.mode == PlannerMode::CartesianJoin && all_single && !pat.steps.is_empty() {
            plan_path_cartesian(&mut ctx, pat);
        } else {
            plan_path_expand(&mut ctx, pat);
        }
    }
    let chain = finish_plan(ctx, driving_fields);

    // The worst-case-optimal alternative: when the pattern's join graph
    // is cyclic (and eligible), plan the whole `MATCH` by variable
    // elimination, binding cycle-closing variables with one multiway
    // intersection instead of expand + filter.
    if opts.mode != PlannerMode::ExpandBased || opts.wco_join == WcoJoinMode::Off {
        return chain;
    }
    let mut wco_ctx = new_ctx();
    let Some((vertices, edges)) = wco_join_graph(&mut wco_ctx, patterns) else {
        return chain;
    };
    plan_wco(&mut wco_ctx, &vertices, &edges);
    let wco = finish_plan(wco_ctx, driving_fields);
    match opts.wco_join {
        WcoJoinMode::Force => wco,
        // The decision metric is the *peak* estimated intermediate
        // cardinality — the quantity worst-case-optimal joins bound.
        // Strict `<`: on ties (e.g. statistics-free graphs) the chain
        // plan keeps its well-tested pipeline.
        _ => {
            if peak_estimate(&wco.plan) < peak_estimate(&chain.plan) {
                wco
            } else {
                chain
            }
        }
    }
}

/// Packages a finished planning context, separating the visible new
/// variables from hidden (space-prefixed) columns.
fn finish_plan(ctx: PlanCtx<'_>, driving_fields: &[String]) -> PlannedMatch {
    let new_vars: Vec<String> = ctx
        .bound
        .iter()
        .filter(|v| !driving_fields.contains(v) && !v.starts_with(' '))
        .cloned()
        .collect();
    PlannedMatch {
        plan: MatchPlan {
            steps: ctx.steps,
            estimated_rows: ctx.est_rows,
            step_estimates: ctx.step_est,
        },
        new_vars,
    }
}

/// The largest per-step cardinality estimate of a plan — the cost model's
/// proxy for peak intermediate-result size.
fn peak_estimate(plan: &MatchPlan) -> f64 {
    plan.step_estimates.iter().copied().fold(0.0, f64::max)
}

/// Column names for the nodes and relationships of a path, generating
/// hidden names for anonymous positions.
fn path_columns(ctx: &mut PlanCtx<'_>, pat: &PathPattern) -> (Vec<String>, Vec<String>) {
    let mut node_cols = Vec::with_capacity(pat.steps.len() + 1);
    let mut rel_cols = Vec::with_capacity(pat.steps.len());
    let fresh_or = |ctx: &mut PlanCtx<'_>, name: &Option<String>| match name {
        Some(n) => n.clone(),
        None => ctx.fresh_anon(),
    };
    node_cols.push(fresh_or(ctx, &pat.start.name));
    for (rho, chi) in &pat.steps {
        rel_cols.push(fresh_or(ctx, &rho.name));
        node_cols.push(fresh_or(ctx, &chi.name));
    }
    (node_cols, rel_cols)
}

/// Emits the scan/argument for a start node plus its label/property
/// filters.
fn emit_start(ctx: &mut PlanCtx<'_>, col: &str, chi: &NodePattern) {
    if ctx.is_bound(col) {
        ctx.emit(PlanStep::Argument { var: col.into() });
        emit_node_filters(ctx, col, chi, None);
        return;
    }
    // Prefer an index seek on a constant property — the composite
    // (label, key, value) index when a label is present.
    if let Some(seek) = ctx.best_seek(chi) {
        let scanned_label = seek.label.clone();
        ctx.est_rows *= seek.est.max(1.0);
        ctx.emit(PlanStep::PropertyIndexSeek {
            var: col.into(),
            label: seek.label,
            key: seek.key,
            value: seek.value,
        });
        ctx.bind(col);
        // Labels not covered by the composite seek and all property
        // conditions still apply; the re-checked key is cheap and keeps
        // `=` semantics exact (the index answers *equivalence* queries,
        // which differ from `=` on numerics vs nulls).
        emit_node_filters(ctx, col, chi, scanned_label.as_deref());
        return;
    }
    if chi.labels.is_empty() || !ctx.opts.use_label_index {
        ctx.est_rows *= ctx.graph.node_count() as f64;
        ctx.emit(PlanStep::AllNodesScan { var: col.into() });
        ctx.bind(col);
        emit_node_filters(ctx, col, chi, None);
    } else {
        // Scan by the most selective label, filter the rest.
        let best = chi
            .labels
            .iter()
            .min_by_key(|l| ctx.label_cardinality(l))
            .unwrap()
            .clone();
        ctx.est_rows *= ctx.label_cardinality(&best).max(1) as f64;
        ctx.emit(PlanStep::NodeIndexScan {
            var: col.into(),
            label: best.clone(),
        });
        ctx.bind(col);
        emit_node_filters(ctx, col, chi, Some(&best));
    }
}

/// Label/property filters for a node column; `scanned_label` was already
/// established by a label scan and is skipped.
fn emit_node_filters(
    ctx: &mut PlanCtx<'_>,
    col: &str,
    chi: &NodePattern,
    scanned_label: Option<&str>,
) {
    let labels: Vec<String> = chi
        .labels
        .iter()
        .filter(|l| Some(l.as_str()) != scanned_label)
        .cloned()
        .collect();
    if !labels.is_empty() {
        ctx.emit(PlanStep::FilterLabels {
            var: col.into(),
            labels,
        });
    }
    if !chi.props.is_empty() {
        ctx.emit(PlanStep::FilterProps {
            var: col.into(),
            props: chi.props.clone(),
        });
    }
}

/// Emits one `Expand` step (plus target filters). `reversed` flips the
/// written direction when expanding right-to-left.
#[allow(clippy::too_many_arguments)]
fn emit_expand(
    ctx: &mut PlanCtx<'_>,
    from_col: &str,
    rel_col: &str,
    to_col: &str,
    rho: &RelPattern,
    chi_to: &NodePattern,
    reversed: bool,
) {
    let dir = if reversed {
        match rho.dir {
            Dir::Out => Dir::In,
            Dir::In => Dir::Out,
            Dir::Both => Dir::Both,
        }
    } else {
        rho.dir
    };
    let (lo, hi) = rho.range.bounds();
    ctx.est_rows *= ctx.expand_factor(rho).max(0.1);
    ctx.emit(PlanStep::Expand {
        from: from_col.into(),
        rel: rel_col.into(),
        to: to_col.into(),
        dir,
        types: rho.types.clone(),
        lo,
        hi,
        single: rho.range.is_single(),
        reversed,
        exclude: ctx.rel_cols.clone(),
        props: if rho.range.is_single() {
            Vec::new()
        } else {
            rho.props.clone()
        },
    });
    ctx.rel_cols.push(rel_col.to_string());
    ctx.bind(rel_col);
    let newly_bound_to = !ctx.is_bound(to_col);
    ctx.bind(to_col);
    if newly_bound_to {
        emit_node_filters(ctx, to_col, chi_to, None);
    } else {
        // Expand-into: the node is already constrained; still check
        // labels/props in case this occurrence adds them.
        emit_node_filters(ctx, to_col, chi_to, None);
    }
    // Relationship property conditions apply per traversed hop and are
    // evaluated inside the Expand operator via FilterProps on single hops.
    if !rho.props.is_empty() && rho.range.is_single() {
        ctx.emit(PlanStep::FilterProps {
            var: rel_col.into(),
            props: rho.props.clone(),
        });
    }
}

fn plan_path_expand(ctx: &mut PlanCtx<'_>, pat: &PathPattern) {
    let (node_cols, rel_cols) = path_columns(ctx, pat);
    let node_pats: Vec<&NodePattern> = pat.node_patterns().collect();
    let rel_pats: Vec<&RelPattern> = pat.rel_patterns().collect();

    // Anchor selection: the cheapest node position. Variable-length
    // relationship property maps force left-to-right evaluation from an
    // anchor at or before them only in the sense of condition evaluation,
    // which is order-independent here, so pure cost decides.
    let mut best = 0usize;
    let mut best_cost = f64::INFINITY;
    for (i, chi) in node_pats.iter().enumerate() {
        let mut cost = ctx.start_cost(chi);
        // Prefer positions whose column is literally bound already.
        if ctx.is_bound(&node_cols[i]) {
            cost = 0.4;
        }
        if cost < best_cost {
            best_cost = cost;
            best = i;
        }
    }

    emit_start(ctx, &node_cols[best], node_pats[best]);
    // Expand rightwards from the anchor…
    for i in best..rel_pats.len() {
        emit_expand(
            ctx,
            &node_cols[i],
            &rel_cols[i],
            &node_cols[i + 1],
            rel_pats[i],
            node_pats[i + 1],
            false,
        );
    }
    // …then leftwards.
    for i in (0..best).rev() {
        emit_expand(
            ctx,
            &node_cols[i + 1],
            &rel_cols[i],
            &node_cols[i],
            rel_pats[i],
            node_pats[i],
            true,
        );
    }

    emit_path_bind(ctx, pat, &node_cols, &rel_cols);
}

fn plan_path_cartesian(ctx: &mut PlanCtx<'_>, pat: &PathPattern) {
    let (node_cols, rel_cols) = path_columns(ctx, pat);
    let node_pats: Vec<&NodePattern> = pat.node_patterns().collect();
    let rel_pats: Vec<&RelPattern> = pat.rel_patterns().collect();

    // Scan every node position…
    for (col, chi) in node_cols.iter().zip(&node_pats) {
        emit_start(ctx, col, chi);
    }
    // …scan every relationship position and filter endpoints.
    for (i, rho) in rel_pats.iter().enumerate() {
        let rel_col = &rel_cols[i];
        if !ctx.is_bound(rel_col) {
            ctx.est_rows *= ctx.graph.rel_count().max(1) as f64;
            ctx.emit(PlanStep::RelScan {
                var: rel_col.clone(),
            });
            ctx.bind(rel_col);
        }
        ctx.emit(PlanStep::FilterEndpoints {
            rel: rel_col.clone(),
            from: node_cols[i].clone(),
            to: node_cols[i + 1].clone(),
            dir: rho.dir,
            types: rho.types.clone(),
            exclude: ctx.rel_cols.clone(),
        });
        ctx.rel_cols.push(rel_col.clone());
        if !rho.props.is_empty() {
            ctx.emit(PlanStep::FilterProps {
                var: rel_col.clone(),
                props: rho.props.clone(),
            });
        }
    }

    emit_path_bind(ctx, pat, &node_cols, &rel_cols);
}

fn emit_path_bind(
    ctx: &mut PlanCtx<'_>,
    pat: &PathPattern,
    node_cols: &[String],
    rel_cols: &[String],
) {
    let Some(path_name) = &pat.name else { return };
    let mut elements = vec![PathElem::Node(node_cols[0].clone())];
    for (i, (rho, _)) in pat.steps.iter().enumerate() {
        if rho.range.is_single() {
            elements.push(PathElem::Rel(rel_cols[i].clone()));
        } else {
            elements.push(PathElem::RelList(rel_cols[i].clone()));
        }
        elements.push(PathElem::Node(node_cols[i + 1].clone()));
    }
    ctx.emit(PlanStep::PathBind {
        var: path_name.clone(),
        elements,
    });
    ctx.bind(path_name);
}

// ---------------------------------------------------------------------------
// Worst-case-optimal planning (cyclic patterns)
// ---------------------------------------------------------------------------

/// One variable of the pattern join graph: its output column and every
/// node pattern occurrence that constrains it (a named variable may
/// appear in several paths; anonymous nodes are always fresh vertices and
/// therefore can never close a cycle).
struct WcoVertex<'p> {
    col: String,
    pats: Vec<&'p NodePattern>,
}

/// One relationship of the pattern join graph, written `(u)-rho-(v)` —
/// `rho.dir` is relative to `u`.
struct WcoEdge<'p> {
    u: usize,
    v: usize,
    rel_col: String,
    rho: &'p RelPattern,
}

/// Loop-free union-find lookup with halving.
fn uf_find(parent: &mut [usize], mut x: usize) -> usize {
    while parent[x] != x {
        parent[x] = parent[parent[x]];
        x = parent[x];
    }
    x
}

/// Builds the join graph of a whole `MATCH` clause and checks it is
/// *eligible* for worst-case-optimal planning: every relationship
/// single-hop with a fresh unique name, no named paths, no variables
/// pre-bound by the driving table, only constant (literal/parameter)
/// property maps — and, after merging repeated node variables, at least
/// one cycle (an edge whose endpoints are already connected; self-loops
/// don't count, expand-into closes those fine). Returns `None` when any
/// condition fails, which sends the caller back to the chain plan.
fn wco_join_graph<'p>(
    ctx: &mut PlanCtx<'_>,
    patterns: &'p [PathPattern],
) -> Option<(Vec<WcoVertex<'p>>, Vec<WcoEdge<'p>>)> {
    let constant = |e: &Expr| matches!(e, Expr::Lit(_) | Expr::Param(_));
    let mut node_names: Vec<&str> = Vec::new();
    let mut rel_names: Vec<&str> = Vec::new();
    for pat in patterns {
        if pat.name.is_some() {
            return None; // named paths keep the chain plan's bind order
        }
        for chi in pat.node_patterns() {
            if !chi.props.iter().all(|(_, e)| constant(e)) {
                return None;
            }
            if let Some(n) = &chi.name {
                if ctx.is_bound(n) {
                    return None;
                }
                if !node_names.contains(&n.as_str()) {
                    node_names.push(n);
                }
            }
        }
        for rho in pat.rel_patterns() {
            if !rho.range.is_single() || !rho.props.iter().all(|(_, e)| constant(e)) {
                return None;
            }
            if let Some(n) = &rho.name {
                // A repeated relationship variable (or one shadowing a
                // node variable or driving column) pins bindings across
                // steps — the chain plan's rel_bound machinery handles
                // those.
                if ctx.is_bound(n) || rel_names.contains(&n.as_str()) {
                    return None;
                }
                rel_names.push(n);
            }
        }
    }
    if rel_names.iter().any(|r| node_names.contains(r)) {
        return None;
    }

    let mut vertices: Vec<WcoVertex<'p>> = Vec::new();
    let mut edges: Vec<WcoEdge<'p>> = Vec::new();
    for pat in patterns {
        let mut prev = intern_vertex(ctx, &mut vertices, &pat.start);
        for (rho, chi) in &pat.steps {
            let cur = intern_vertex(ctx, &mut vertices, chi);
            let rel_col = match &rho.name {
                Some(n) => n.clone(),
                None => ctx.fresh_anon(),
            };
            edges.push(WcoEdge {
                u: prev,
                v: cur,
                rel_col,
                rho,
            });
            prev = cur;
        }
    }

    let mut parent: Vec<usize> = (0..vertices.len()).collect();
    let mut cyclic = false;
    for e in &edges {
        if e.u == e.v {
            continue;
        }
        let (ru, rv) = (uf_find(&mut parent, e.u), uf_find(&mut parent, e.v));
        if ru == rv {
            cyclic = true;
        } else {
            parent[ru] = rv;
        }
    }
    cyclic.then_some((vertices, edges))
}

/// Looks up (by name) or creates the join-graph vertex of one node
/// pattern occurrence.
fn intern_vertex<'p>(
    ctx: &mut PlanCtx<'_>,
    vertices: &mut Vec<WcoVertex<'p>>,
    chi: &'p NodePattern,
) -> usize {
    if let Some(name) = &chi.name {
        if let Some(i) = vertices.iter().position(|v| &v.col == name) {
            vertices[i].pats.push(chi);
            return i;
        }
        vertices.push(WcoVertex {
            col: name.clone(),
            pats: vec![chi],
        });
    } else {
        let col = ctx.fresh_anon();
        vertices.push(WcoVertex {
            col,
            pats: vec![chi],
        });
    }
    vertices.len() - 1
}

/// Plans an eligible cyclic `MATCH` by greedy variable elimination: each
/// round binds the unbound vertex with the most edges into the bound set
/// (ties keep pattern order; a fresh component anchors at its cheapest
/// scan). One such edge is a plain `Expand`; two or more become a single
/// `MultiwayIntersect` that binds the variable worst-case-optimally.
/// Edges left between two bound vertices (self-loops included) close as
/// expand-into, exactly like the chain plan's cycle closing.
///
/// Costing: an intersection's output estimate multiplies the guards'
/// fan-outs and divides by `n^(k-1)` (independent-edge selectivity), then
/// clamps to the running AGM bound `∏ card(e)^{w(e)}` with `w(e) = ½` for
/// edges between two cycle vertices (join-graph degree ≥ 2) and `1`
/// otherwise — the fractional edge cover that prices a triangle at
/// `|E|^{3/2}` rather than `|E|³`.
fn plan_wco(ctx: &mut PlanCtx<'_>, vertices: &[WcoVertex<'_>], edges: &[WcoEdge<'_>]) {
    let nverts = vertices.len();
    let mut vbound = vec![false; nverts];
    let mut done = vec![false; edges.len()];
    let mut degree = vec![0usize; nverts];
    for e in edges {
        degree[e.u] += 1;
        degree[e.v] += 1;
    }
    let n = ctx.graph.node_count().max(1) as f64;
    let mut agm = 1.0f64;

    for _ in 0..nverts {
        // Edges joining each unbound vertex to the bound set.
        let incident_of = |v: usize, vbound: &[bool], done: &[bool]| -> Vec<usize> {
            edges
                .iter()
                .enumerate()
                .filter(|(i, e)| {
                    !done[*i]
                        && ((e.u == v && e.v != v && vbound[e.v])
                            || (e.v == v && e.u != v && vbound[e.u]))
                })
                .map(|(i, _)| i)
                .collect()
        };
        let mut pick = None;
        let mut pick_incident: Vec<usize> = Vec::new();
        for v in 0..nverts {
            if vbound[v] {
                continue;
            }
            let inc = incident_of(v, &vbound, &done);
            if pick.is_none() || inc.len() > pick_incident.len() {
                pick = Some(v);
                pick_incident = inc;
            }
        }
        let v = pick.expect("unbound vertex remains");

        if pick_incident.is_empty() {
            // Fresh component: re-anchor at the cheapest unbound vertex.
            let mut anchor = v;
            let mut anchor_cost = f64::INFINITY;
            for (cand, vx) in vertices.iter().enumerate() {
                if vbound[cand] {
                    continue;
                }
                let cost = vx
                    .pats
                    .iter()
                    .map(|chi| ctx.start_cost(chi))
                    .fold(f64::INFINITY, f64::min);
                if cost < anchor_cost {
                    anchor_cost = cost;
                    anchor = cand;
                }
            }
            let vx = &vertices[anchor];
            let mut best = 0;
            let mut best_cost = f64::INFINITY;
            for (i, chi) in vx.pats.iter().enumerate() {
                let cost = ctx.start_cost(chi);
                if cost < best_cost {
                    best_cost = cost;
                    best = i;
                }
            }
            emit_start(ctx, &vx.col, vx.pats[best]);
            for (i, chi) in vx.pats.iter().enumerate() {
                if i != best {
                    emit_node_filters(ctx, &vx.col, chi, None);
                }
            }
            vbound[anchor] = true;
            close_bound_edges(ctx, vertices, edges, &vbound, &mut done, &degree, &mut agm);
            continue;
        }

        let vx = &vertices[v];
        if pick_incident.len() == 1 {
            let e = &edges[pick_incident[0]];
            let reversed = e.u == v; // expanding against the written side
            let from_col = if reversed {
                &vertices[e.v].col
            } else {
                &vertices[e.u].col
            };
            let from_col = from_col.clone();
            agm *= ctx.edge_cardinality(e.rho).powf(edge_weight(e, &degree));
            emit_expand(
                ctx, &from_col, &e.rel_col, &vx.col, e.rho, vx.pats[0], reversed,
            );
            for chi in &vx.pats[1..] {
                emit_node_filters(ctx, &vx.col, chi, None);
            }
            done[pick_incident[0]] = true;
        } else {
            let mut guards = Vec::with_capacity(pick_incident.len());
            let mut factor = 1.0f64;
            for &ei in &pick_incident {
                let e = &edges[ei];
                let flip = e.u == v; // guard hangs off the bound endpoint
                let from = if flip { e.v } else { e.u };
                let dir = if flip {
                    match e.rho.dir {
                        Dir::Out => Dir::In,
                        Dir::In => Dir::Out,
                        Dir::Both => Dir::Both,
                    }
                } else {
                    e.rho.dir
                };
                guards.push(IntersectGuard {
                    from: vertices[from].col.clone(),
                    rel: e.rel_col.clone(),
                    dir,
                    types: e.rho.types.clone(),
                    props: e.rho.props.clone(),
                });
                factor *= ctx.expand_factor(e.rho).max(0.1);
                agm *= ctx.edge_cardinality(e.rho).powf(edge_weight(e, &degree));
                done[ei] = true;
            }
            // Union of every occurrence's labels, checked inside the
            // operator (candidates are filtered before relationship
            // enumeration).
            let mut labels: Vec<String> = Vec::new();
            for chi in &vx.pats {
                for l in &chi.labels {
                    if !labels.contains(l) {
                        labels.push(l.clone());
                    }
                }
            }
            let k = pick_incident.len() as i32;
            ctx.est_rows *= (factor / n.powi(k - 1)).max(0.001);
            ctx.est_rows = ctx.est_rows.min(agm);
            ctx.emit(PlanStep::MultiwayIntersect {
                to: vx.col.clone(),
                guards,
                labels,
                exclude: ctx.rel_cols.clone(),
            });
            for &ei in &pick_incident {
                ctx.rel_cols.push(edges[ei].rel_col.clone());
                ctx.bind(&edges[ei].rel_col);
            }
            ctx.bind(&vx.col);
            // Node labels were folded into the step; property maps become
            // residual filters (as everywhere else in the planner).
            for chi in &vx.pats {
                if !chi.props.is_empty() {
                    ctx.emit(PlanStep::FilterProps {
                        var: vx.col.clone(),
                        props: chi.props.clone(),
                    });
                }
            }
        }
        vbound[v] = true;
        close_bound_edges(ctx, vertices, edges, &vbound, &mut done, &degree, &mut agm);
    }
}

/// AGM exponent of one edge: ½ inside a cycle, 1 on a tree edge.
fn edge_weight(e: &WcoEdge<'_>, degree: &[usize]) -> f64 {
    if degree[e.u] >= 2 && degree[e.v] >= 2 {
        0.5
    } else {
        1.0
    }
}

/// Emits expand-into steps for every remaining edge whose endpoints are
/// both bound (cycle-closing edges the greedy pick didn't consume, and
/// self-loops).
#[allow(clippy::too_many_arguments)]
fn close_bound_edges(
    ctx: &mut PlanCtx<'_>,
    vertices: &[WcoVertex<'_>],
    edges: &[WcoEdge<'_>],
    vbound: &[bool],
    done: &mut [bool],
    degree: &[usize],
    agm: &mut f64,
) {
    let empty = NodePattern {
        name: None,
        labels: Vec::new(),
        props: Vec::new(),
    };
    for (i, e) in edges.iter().enumerate() {
        if done[i] || !vbound[e.u] || !vbound[e.v] {
            continue;
        }
        *agm *= ctx.edge_cardinality(e.rho).powf(edge_weight(e, degree));
        let from_col = vertices[e.u].col.clone();
        // Node filters were emitted when the endpoints were bound; the
        // empty pattern adds none.
        emit_expand(
            ctx,
            &from_col,
            &e.rel_col,
            &vertices[e.v].col,
            e.rho,
            &empty,
            false,
        );
        done[i] = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cypher_graph::Value;
    use cypher_parser::parse_pattern;

    fn sample_graph() -> PropertyGraph {
        let mut g = PropertyGraph::new();
        // 100 Person nodes, 3 Admin nodes, chain of KNOWS.
        let mut prev = None;
        for i in 0..100 {
            let labels: &[&str] = if i < 3 {
                &["Person", "Admin"]
            } else {
                &["Person"]
            };
            let n = g.add_node(labels, [("i", Value::int(i))]);
            if let Some(p) = prev {
                g.add_rel(p, n, "KNOWS", []).unwrap();
            }
            prev = Some(n);
        }
        g
    }

    #[test]
    fn anchors_on_most_selective_label() {
        let g = sample_graph();
        let p = parse_pattern("(a:Person)-[:KNOWS]->(b:Admin)").unwrap();
        let planned = plan_match(&g, &[], &[p], PlannerMode::ExpandBased);
        // The Admin side has 3 nodes vs 100 Person: anchor must be b.
        match &planned.plan.steps[0] {
            PlanStep::NodeIndexScan { var, label } => {
                assert_eq!(var, "b");
                assert_eq!(label, "Admin");
            }
            other => panic!("expected label scan, got {other}"),
        }
        // And the expand runs right-to-left (reversed direction).
        assert!(planned
            .plan
            .steps
            .iter()
            .any(|s| matches!(s, PlanStep::Expand { from, to, dir: Dir::In, .. } if from == "b" && to == "a")));
        // Binding order follows the traversal (anchor first).
        assert_eq!(planned.new_vars, vec!["b", "a"]);
    }

    #[test]
    fn bound_variable_becomes_argument() {
        let g = sample_graph();
        let p = parse_pattern("(a)-[:KNOWS]->(b)").unwrap();
        let planned = plan_match(&g, &["a".to_string()], &[p], PlannerMode::ExpandBased);
        assert!(matches!(
            &planned.plan.steps[0],
            PlanStep::Argument { var } if var == "a"
        ));
        assert_eq!(planned.new_vars, vec!["b"]);
    }

    #[test]
    fn anonymous_elements_get_hidden_columns() {
        let g = sample_graph();
        let p = parse_pattern("()-[:KNOWS]->()").unwrap();
        let planned = plan_match(&g, &[], &[p], PlannerMode::ExpandBased);
        assert!(planned.new_vars.is_empty());
        let PlanStep::Expand { rel, .. } = &planned.plan.steps[1] else {
            panic!("expected expand")
        };
        assert!(rel.starts_with(' '), "anonymous rel column is hidden");
    }

    #[test]
    fn cartesian_mode_uses_rel_scans() {
        let g = sample_graph();
        let p = parse_pattern("(a:Admin)-[r:KNOWS]->(b)").unwrap();
        let planned = plan_match(&g, &[], &[p], PlannerMode::CartesianJoin);
        assert!(planned
            .plan
            .steps
            .iter()
            .any(|s| matches!(s, PlanStep::RelScan { .. })));
        assert!(planned
            .plan
            .steps
            .iter()
            .any(|s| matches!(s, PlanStep::FilterEndpoints { .. })));
        assert!(!planned
            .plan
            .steps
            .iter()
            .any(|s| matches!(s, PlanStep::Expand { .. })));
    }

    #[test]
    fn cartesian_mode_falls_back_for_var_length() {
        let g = sample_graph();
        let p = parse_pattern("(a)-[:KNOWS*1..3]->(b)").unwrap();
        let planned = plan_match(&g, &[], &[p], PlannerMode::CartesianJoin);
        assert!(planned
            .plan
            .steps
            .iter()
            .any(|s| matches!(s, PlanStep::Expand { .. })));
    }

    #[test]
    fn exclusion_lists_grow_along_the_chain() {
        let g = sample_graph();
        let p = parse_pattern("(a)-[r1]->(b)-[r2]->(c)").unwrap();
        let planned = plan_match(&g, &[], &[p], PlannerMode::ExpandBased);
        let expands: Vec<&PlanStep> = planned
            .plan
            .steps
            .iter()
            .filter(|s| matches!(s, PlanStep::Expand { .. }))
            .collect();
        assert_eq!(expands.len(), 2);
        let PlanStep::Expand { exclude, .. } = expands[1] else {
            unreachable!()
        };
        assert_eq!(exclude.len(), 1, "second expand excludes the first rel");
    }

    #[test]
    fn constant_property_uses_index_scan() {
        let g = sample_graph();
        let p = parse_pattern("(a:Person {i: 5})-[:KNOWS]->(b)").unwrap();
        let planned = plan_match(&g, &[], &[p], PlannerMode::ExpandBased);
        match &planned.plan.steps[0] {
            PlanStep::PropertyIndexSeek {
                var, label, key, ..
            } => {
                assert_eq!(var, "a");
                assert_eq!(label.as_deref(), Some("Person"), "composite index used");
                assert_eq!(key, "i");
            }
            other => panic!("expected property seek, got {other}"),
        }
        // The residual property filter keeps `=` semantics exact.
        assert!(planned
            .plan
            .steps
            .iter()
            .any(|s| matches!(s, PlanStep::FilterProps { .. })));
    }

    #[test]
    fn property_anchor_beats_label_anchor() {
        let g = sample_graph();
        // Anchor must move to b: {i: 7} pins a single node even though
        // Admin is a small label on the other side.
        let p = parse_pattern("(a:Admin)-[:KNOWS]->(b {i: 7})").unwrap();
        let planned = plan_match(&g, &[], &[p], PlannerMode::ExpandBased);
        assert!(
            matches!(&planned.plan.steps[0], PlanStep::PropertyIndexSeek { var, .. } if var == "b"),
            "plan: {}",
            planned.plan
        );
    }

    #[test]
    fn statistics_pick_the_more_selective_key() {
        let mut g = PropertyGraph::new();
        // `kind` has 2 distinct values over 100 nodes (est. 50 rows per
        // seek); `serial` is unique (est. 1 row). The planner must seek
        // on `serial`.
        for i in 0..100 {
            g.add_node(
                &["Device"],
                [("kind", Value::int(i % 2)), ("serial", Value::int(i))],
            );
        }
        let p = parse_pattern("(d:Device {kind: 1, serial: 37})").unwrap();
        let planned = plan_match(&g, &[], &[p], PlannerMode::ExpandBased);
        match &planned.plan.steps[0] {
            PlanStep::PropertyIndexSeek { key, label, .. } => {
                assert_eq!(key, "serial");
                assert_eq!(label.as_deref(), Some("Device"));
            }
            other => panic!("expected property seek, got {other}"),
        }
        assert!(planned.plan.estimated_rows <= 2.0, "{}", planned.plan);
    }

    #[test]
    fn disabling_property_index_falls_back_to_label_scan() {
        let g = sample_graph();
        let p = parse_pattern("(a:Person {i: 5})").unwrap();
        let opts = PlannerOptions {
            use_property_index: false,
            ..PlannerOptions::default()
        };
        let planned = plan_match(&g, &[], &[p], opts);
        assert!(
            matches!(&planned.plan.steps[0], PlanStep::NodeIndexScan { .. }),
            "plan: {}",
            planned.plan
        );
        // Property conditions survive as residual filters.
        assert!(planned
            .plan
            .steps
            .iter()
            .any(|s| matches!(s, PlanStep::FilterProps { .. })));
    }

    #[test]
    fn disabling_all_indexes_scans_everything() {
        let g = sample_graph();
        let p = parse_pattern("(a:Person {i: 5})").unwrap();
        let opts = PlannerOptions {
            use_label_index: false,
            use_property_index: false,
            ..PlannerOptions::default()
        };
        let planned = plan_match(&g, &[], &[p], opts);
        assert!(
            matches!(&planned.plan.steps[0], PlanStep::AllNodesScan { .. }),
            "plan: {}",
            planned.plan
        );
        assert!(planned
            .plan
            .steps
            .iter()
            .any(|s| matches!(s, PlanStep::FilterLabels { .. })));
    }

    /// 100 nodes, 10 outgoing KNOWS each — dense enough that expand
    /// chains blow up quadratically on cyclic patterns.
    fn dense_graph() -> PropertyGraph {
        let mut g = PropertyGraph::new();
        let nodes: Vec<_> = (0..100)
            .map(|i| g.add_node(&["N"], [("i", Value::int(i))]))
            .collect();
        for i in 0..100usize {
            for j in 1..=10usize {
                let t = (i * 7 + j * 13) % 100;
                g.add_rel(nodes[i], nodes[t], "KNOWS", []).unwrap();
            }
        }
        g
    }

    fn triangle() -> Vec<PathPattern> {
        vec![
            parse_pattern("(a)-[r1:KNOWS]->(b)-[r2:KNOWS]->(c)").unwrap(),
            parse_pattern("(a)-[r3:KNOWS]->(c)").unwrap(),
        ]
    }

    #[test]
    fn force_plans_cyclic_match_with_intersection() {
        let g = sample_graph();
        let opts = PlannerOptions {
            wco_join: WcoJoinMode::Force,
            ..PlannerOptions::default()
        };
        let planned = plan_match(&g, &[], &triangle(), opts);
        let isect: Vec<&PlanStep> = planned
            .plan
            .steps
            .iter()
            .filter(|s| matches!(s, PlanStep::MultiwayIntersect { .. }))
            .collect();
        assert_eq!(isect.len(), 1, "plan: {}", planned.plan);
        let PlanStep::MultiwayIntersect { to, guards, .. } = isect[0] else {
            unreachable!()
        };
        // The cycle-closing variable is bound last, by intersecting the
        // adjacencies of both already-bound neighbours.
        assert_eq!(to, "c");
        assert_eq!(guards.len(), 2);
        assert_eq!(guards[0].from, "b");
        assert_eq!(guards[1].from, "a");
        assert!(guards.iter().all(|g| g.dir == Dir::Out));
        assert_eq!(planned.new_vars, vec!["a", "r1", "b", "r2", "r3", "c"]);
    }

    #[test]
    fn off_never_plans_intersection() {
        let g = dense_graph();
        let opts = PlannerOptions {
            wco_join: WcoJoinMode::Off,
            ..PlannerOptions::default()
        };
        let planned = plan_match(&g, &[], &triangle(), opts);
        assert!(!planned
            .plan
            .steps
            .iter()
            .any(|s| matches!(s, PlanStep::MultiwayIntersect { .. })));
    }

    #[test]
    fn auto_intersects_on_dense_graphs_and_chains_on_sparse() {
        // Dense (avg degree 10): the chain's intermediate result dwarfs
        // the intersection's, so Auto flips to the intersect plan.
        let planned = plan_match(&dense_graph(), &[], &triangle(), PlannerOptions::default());
        assert!(
            planned
                .plan
                .steps
                .iter()
                .any(|s| matches!(s, PlanStep::MultiwayIntersect { .. })),
            "plan: {}",
            planned.plan
        );
        // Sparse (a chain, avg degree ≈ 1): estimates tie at the anchor
        // scan, and ties keep the expand chain.
        let planned = plan_match(&sample_graph(), &[], &triangle(), PlannerOptions::default());
        assert!(
            !planned
                .plan
                .steps
                .iter()
                .any(|s| matches!(s, PlanStep::MultiwayIntersect { .. })),
            "plan: {}",
            planned.plan
        );
    }

    #[test]
    fn ineligible_patterns_keep_the_chain_plan_even_forced() {
        let g = dense_graph();
        let opts = PlannerOptions {
            wco_join: WcoJoinMode::Force,
            ..PlannerOptions::default()
        };
        let no_isect = |pats: Vec<PathPattern>| {
            let planned = plan_match(&g, &[], &pats, opts);
            assert!(
                !planned
                    .plan
                    .steps
                    .iter()
                    .any(|s| matches!(s, PlanStep::MultiwayIntersect { .. })),
                "plan: {}",
                planned.plan
            );
        };
        // Acyclic.
        no_isect(vec![
            parse_pattern("(a)-[r1:KNOWS]->(b)-[r2:KNOWS]->(c)").unwrap()
        ]);
        // Repeated relationship variable.
        no_isect(vec![
            parse_pattern("(a)-[r:KNOWS]->(b)-[r2:KNOWS]->(c)").unwrap(),
            parse_pattern("(a)-[r:KNOWS]->(c)").unwrap(),
        ]);
        // Variable-length step in the cycle.
        no_isect(vec![
            parse_pattern("(a)-[r1:KNOWS*1..2]->(b)-[r2:KNOWS]->(c)").unwrap(),
            parse_pattern("(a)-[r3:KNOWS]->(c)").unwrap(),
        ]);
        // Named path.
        no_isect(vec![
            parse_pattern("p = (a)-[r1:KNOWS]->(b)-[r2:KNOWS]->(c)").unwrap(),
            parse_pattern("(a)-[r3:KNOWS]->(c)").unwrap(),
        ]);
        // A self-loop alone is not a cycle the intersection can exploit.
        no_isect(vec![parse_pattern("(a)-[r1:KNOWS]->(a)").unwrap()]);
    }

    #[test]
    fn two_cycle_flips_the_closing_guard_direction() {
        let g = dense_graph();
        let opts = PlannerOptions {
            wco_join: WcoJoinMode::Force,
            ..PlannerOptions::default()
        };
        let p = parse_pattern("(a)-[r1:KNOWS]->(b)<-[r2:KNOWS]-(a)").unwrap();
        let planned = plan_match(&g, &[], &[p], opts);
        let Some(PlanStep::MultiwayIntersect { to, guards, .. }) = planned
            .plan
            .steps
            .iter()
            .find(|s| matches!(s, PlanStep::MultiwayIntersect { .. }))
        else {
            panic!("expected intersection, plan: {}", planned.plan)
        };
        assert_eq!(to, "b");
        // Both guards hang off `a`; directions follow the pattern as
        // seen from `a`.
        assert!(guards.iter().all(|g| g.from == "a"));
        assert_eq!(guards.len(), 2);
    }

    #[test]
    fn named_path_emits_path_bind() {
        let g = sample_graph();
        let p = parse_pattern("p = (a)-[:KNOWS*]->(b)").unwrap();
        let planned = plan_match(&g, &[], &[p], PlannerMode::ExpandBased);
        assert!(planned
            .plan
            .steps
            .iter()
            .any(|s| matches!(s, PlanStep::PathBind { var, .. } if var == "p")));
        assert!(planned.new_vars.contains(&"p".to_string()));
    }
}
