//! Graph generators. Every generator takes explicit size parameters and a
//! seed, and produces the same graph for the same inputs on every run.

use cypher_graph::{NodeId, PropertyGraph, Value};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The data graph of **Figure 1**: researchers Nils, Elin and Thor,
/// students Sten and Linda, five publications, and the `AUTHORS` /
/// `SUPERVISES` / `CITES` relationships exactly as drawn (r1–r11).
pub fn figure1() -> PropertyGraph {
    let mut g = PropertyGraph::new();
    let n1 = g.add_node(&["Researcher"], [("name", Value::str("Nils"))]);
    let n2 = g.add_node(&["Publication"], [("acmid", Value::int(220))]);
    let n3 = g.add_node(&["Publication"], [("acmid", Value::int(190))]);
    let n4 = g.add_node(&["Publication"], [("acmid", Value::int(235))]);
    let n5 = g.add_node(&["Publication"], [("acmid", Value::int(240))]);
    let n6 = g.add_node(&["Researcher"], [("name", Value::str("Elin"))]);
    let n7 = g.add_node(&["Student"], [("name", Value::str("Sten"))]);
    let n8 = g.add_node(&["Student"], [("name", Value::str("Linda"))]);
    let n9 = g.add_node(&["Publication"], [("acmid", Value::int(269))]);
    let n10 = g.add_node(&["Researcher"], [("name", Value::str("Thor"))]);
    g.add_rel(n1, n2, "AUTHORS", []).unwrap(); // r1
    g.add_rel(n2, n3, "CITES", []).unwrap(); // r2
    g.add_rel(n4, n2, "CITES", []).unwrap(); // r3
    g.add_rel(n5, n2, "CITES", []).unwrap(); // r4
    g.add_rel(n6, n5, "AUTHORS", []).unwrap(); // r5
    g.add_rel(n6, n7, "SUPERVISES", []).unwrap(); // r6
    g.add_rel(n6, n8, "SUPERVISES", []).unwrap(); // r7
    g.add_rel(n10, n7, "SUPERVISES", []).unwrap(); // r8
    g.add_rel(n9, n4, "CITES", []).unwrap(); // r9
    g.add_rel(n6, n9, "AUTHORS", []).unwrap(); // r10
    g.add_rel(n9, n5, "CITES", []).unwrap(); // r11
    g
}

/// The property graph of **Figure 4**: teachers n1, n3, n4, student n2,
/// with `KNOWS` relationships n1→n2→n3→n4.
pub fn figure4() -> PropertyGraph {
    let mut g = PropertyGraph::new();
    let n1 = g.add_node(&["Teacher"], []);
    let n2 = g.add_node(&["Student"], []);
    let n3 = g.add_node(&["Teacher"], []);
    let n4 = g.add_node(&["Teacher"], []);
    g.add_rel(n1, n2, "KNOWS", []).unwrap();
    g.add_rel(n2, n3, "KNOWS", []).unwrap();
    g.add_rel(n3, n4, "KNOWS", []).unwrap();
    g
}

/// A data-center dependency graph for the Section 3 network-management
/// query: `services` nodes labelled `Service`, arranged in layers, each
/// depending (`DEPENDS_ON`, pointing *at* the dependency) on `deps_per`
/// services from lower layers. The lowest layer contains shared
/// infrastructure that accumulates the most transitive dependents.
pub fn datacenter(services: usize, layers: usize, deps_per: usize, seed: u64) -> PropertyGraph {
    assert!(layers >= 1, "need at least one layer");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut g = PropertyGraph::new();
    let mut by_layer: Vec<Vec<NodeId>> = vec![Vec::new(); layers];
    for i in 0..services {
        // Exponentially fewer nodes in lower (more fundamental) layers.
        let layer = (i * layers) / services;
        let kind = match layer {
            0 => "core-switch",
            1 => "database",
            2 => "backend",
            _ => "frontend",
        };
        let n = g.add_node(
            &["Service"],
            [
                ("name", Value::str(format!("{kind}-{i}"))),
                ("layer", Value::int(layer as i64)),
            ],
        );
        by_layer[layer].push(n);
    }
    for layer in 1..layers {
        for &svc in &by_layer[layer].clone() {
            for _ in 0..deps_per {
                let target_layer = rng.gen_range(0..layer);
                if by_layer[target_layer].is_empty() {
                    continue;
                }
                let dep = by_layer[target_layer][rng.gen_range(0..by_layer[target_layer].len())];
                g.add_rel(svc, dep, "DEPENDS_ON", []).unwrap();
            }
        }
    }
    g
}

/// A fraud-detection graph for the Section 3 fraud query: `holders`
/// account holders each `HAS` personal-information nodes (`SSN`,
/// `PhoneNumber`, `Address`); `rings` groups of `ring_size` holders share
/// a single piece of information — the rings the query must surface.
pub fn fraud_rings(holders: usize, rings: usize, ring_size: usize, seed: u64) -> PropertyGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut g = PropertyGraph::new();
    let holder_ids: Vec<NodeId> = (0..holders)
        .map(|i| {
            g.add_node(
                &["AccountHolder"],
                [("uniqueId", Value::str(format!("acct-{i}")))],
            )
        })
        .collect();
    // Honest holders: personal info of their own.
    for (i, &h) in holder_ids.iter().enumerate() {
        let ssn = g.add_node(&["SSN"], [("value", Value::str(format!("ssn-{i}")))]);
        g.add_rel(h, ssn, "HAS", []).unwrap();
        let phone = g.add_node(
            &["PhoneNumber"],
            [("value", Value::str(format!("phone-{i}")))],
        );
        g.add_rel(h, phone, "HAS", []).unwrap();
    }
    // Fraud rings: `ring_size` distinct holders share one address or SSN.
    for ring in 0..rings {
        let label = if ring % 2 == 0 { "Address" } else { "SSN" };
        let shared = g.add_node(&[label], [("value", Value::str(format!("shared-{ring}")))]);
        let mut members = Vec::new();
        while members.len() < ring_size.min(holders) {
            let h = holder_ids[rng.gen_range(0..holder_ids.len())];
            if !members.contains(&h) {
                members.push(h);
            }
        }
        for h in members {
            g.add_rel(h, shared, "HAS", []).unwrap();
        }
    }
    g
}

/// A social network for the Cypher 10 composition example (Example 6.1):
/// `persons` nodes labelled `Person` living in `cities` cities (`IN`
/// edges), with roughly `avg_friends` undirected `FRIEND` relationships
/// each, carrying a `since` year.
pub fn social_network(
    persons: usize,
    cities: usize,
    avg_friends: usize,
    seed: u64,
) -> PropertyGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut g = PropertyGraph::new();
    let city_ids: Vec<NodeId> = (0..cities.max(1))
        .map(|i| g.add_node(&["City"], [("name", Value::str(format!("city-{i}")))]))
        .collect();
    let person_ids: Vec<NodeId> = (0..persons)
        .map(|i| {
            let p = g.add_node(&["Person"], [("name", Value::str(format!("p{i}")))]);
            let c = city_ids[rng.gen_range(0..city_ids.len())];
            g.add_rel(p, c, "IN", []).unwrap();
            p
        })
        .collect();
    let total_friend_edges = persons * avg_friends / 2;
    for _ in 0..total_friend_edges {
        let a = person_ids[rng.gen_range(0..person_ids.len())];
        let b = person_ids[rng.gen_range(0..person_ids.len())];
        if a != b {
            let since = 1990 + rng.gen_range(0..30);
            g.add_rel(a, b, "FRIEND", [("since", Value::int(since))])
                .unwrap();
        }
    }
    g
}

/// A citation network scaling up Figure 1: `researchers` researchers,
/// `pubs` publications authored by random researchers, students supervised
/// by researchers, and a citation DAG where each publication cites up to
/// `cites_per` strictly older publications (so `CITES*` terminates).
pub fn citation_network(
    researchers: usize,
    pubs: usize,
    cites_per: usize,
    seed: u64,
) -> PropertyGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut g = PropertyGraph::new();
    let researcher_ids: Vec<NodeId> = (0..researchers)
        .map(|i| g.add_node(&["Researcher"], [("name", Value::str(format!("r{i}")))]))
        .collect();
    // Students: one per two researchers.
    for (i, chunk) in researcher_ids.chunks(2).enumerate() {
        let s = g.add_node(&["Student"], [("name", Value::str(format!("s{i}")))]);
        g.add_rel(chunk[0], s, "SUPERVISES", []).unwrap();
    }
    let mut pub_ids: Vec<NodeId> = Vec::with_capacity(pubs);
    for i in 0..pubs {
        let p = g.add_node(&["Publication"], [("acmid", Value::int(i as i64))]);
        let author = researcher_ids[rng.gen_range(0..researcher_ids.len().max(1))];
        g.add_rel(author, p, "AUTHORS", []).unwrap();
        // Cite older publications only: acyclic by construction.
        if !pub_ids.is_empty() {
            for _ in 0..rng.gen_range(0..=cites_per) {
                let older = pub_ids[rng.gen_range(0..pub_ids.len())];
                g.add_rel(p, older, "CITES", []).unwrap();
            }
        }
        pub_ids.push(p);
    }
    g
}

/// A preferential-attachment ("rich get richer") social graph: `persons`
/// nodes labelled `Person` (every seventh also `Bot`), each following
/// `edges_per` earlier accounts with probability proportional to current
/// degree — the classic Barabási–Albert construction, yielding a
/// power-law degree distribution whose dense, triangle-rich core is the
/// worst case for binary expand chains and the showcase for multiway
/// intersection joins. Nodes carry the differential substrate's integer
/// properties (`i` unique, `v` collision-heavy); `FOLLOWS` edges carry
/// `w`.
pub fn powerlaw_social(persons: usize, edges_per: usize, seed: u64) -> PropertyGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut g = PropertyGraph::new();
    let mut ids: Vec<NodeId> = Vec::with_capacity(persons);
    // One entry per edge endpoint: drawing uniformly from this list is
    // drawing nodes proportional to their degree.
    let mut endpoints: Vec<NodeId> = Vec::new();
    for i in 0..persons {
        let labels: &[&str] = if i % 7 == 0 {
            &["Person", "Bot"]
        } else {
            &["Person"]
        };
        let n = g.add_node(
            labels,
            [
                ("name", Value::str(format!("u{i}"))),
                ("v", Value::int(rng.gen_range(0..10))),
                ("i", Value::int(i as i64)),
            ],
        );
        for _ in 0..edges_per {
            if ids.is_empty() {
                break;
            }
            // Uniform until enough degree mass exists to attach to.
            let target = if endpoints.is_empty() {
                ids[rng.gen_range(0..ids.len())]
            } else {
                endpoints[rng.gen_range(0..endpoints.len())]
            };
            g.add_rel(
                n,
                target,
                "FOLLOWS",
                [("w", Value::int(rng.gen_range(0..100)))],
            )
            .unwrap();
            endpoints.push(n);
            endpoints.push(target);
        }
        ids.push(n);
    }
    g
}

/// A simple directed chain of `n` nodes (`NEXT` edges), the worst case for
/// deep variable-length traversal benchmarks.
pub fn chain(n: usize) -> PropertyGraph {
    let mut g = PropertyGraph::new();
    let mut prev: Option<NodeId> = None;
    for i in 0..n {
        let node = g.add_node(&["Item"], [("i", Value::int(i as i64))]);
        if let Some(p) = prev {
            g.add_rel(p, node, "NEXT", []).unwrap();
        }
        prev = Some(node);
    }
    g
}

/// A uniformly random directed graph with `n` nodes and `m` edges over
/// `labels` node labels and `types` relationship types — the fuzzing
/// substrate for the differential property tests.
pub fn random_graph(
    n: usize,
    m: usize,
    labels: &[&str],
    types: &[&str],
    seed: u64,
) -> PropertyGraph {
    assert!(!types.is_empty());
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut g = PropertyGraph::new();
    let ids: Vec<NodeId> = (0..n)
        .map(|i| {
            let mut node_labels: Vec<&str> = Vec::new();
            for l in labels {
                if rng.gen_bool(0.4) {
                    node_labels.push(l);
                }
            }
            g.add_node(
                &node_labels,
                [
                    ("v", Value::int(rng.gen_range(0..10))),
                    ("i", Value::int(i as i64)),
                ],
            )
        })
        .collect();
    if n == 0 {
        return g;
    }
    for _ in 0..m {
        let a = ids[rng.gen_range(0..ids.len())];
        let b = ids[rng.gen_range(0..ids.len())];
        let t = types[rng.gen_range(0..types.len())];
        g.add_rel(a, b, t, [("w", Value::int(rng.gen_range(0..100)))])
            .unwrap();
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_shape() {
        let g = figure1();
        assert_eq!(g.node_count(), 10);
        assert_eq!(g.rel_count(), 11);
        let researcher = g.interner().get("Researcher").unwrap();
        assert_eq!(g.label_cardinality(researcher), 3);
        let cites = g.interner().get("CITES").unwrap();
        assert_eq!(g.type_cardinality(cites), 5);
    }

    #[test]
    fn figure4_shape() {
        let g = figure4();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.rel_count(), 3);
    }

    #[test]
    fn generators_are_deterministic() {
        let a = datacenter(100, 4, 2, 42);
        let b = datacenter(100, 4, 2, 42);
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.rel_count(), b.rel_count());
        let ra: Vec<_> = a.rels().map(|r| (a.src(r), a.tgt(r))).collect();
        let rb: Vec<_> = b.rels().map(|r| (b.src(r), b.tgt(r))).collect();
        assert_eq!(ra, rb);
        // Different seed, different wiring.
        let c = datacenter(100, 4, 2, 43);
        let rc: Vec<_> = c.rels().map(|r| (c.src(r), c.tgt(r))).collect();
        assert_ne!(ra, rc);
    }

    #[test]
    fn datacenter_is_layered_dag() {
        let g = datacenter(200, 4, 3, 7);
        assert_eq!(g.node_count(), 200);
        let layer_key = g.interner().get("layer").unwrap();
        for r in g.rels() {
            let src_layer = g
                .node_prop(g.src(r).unwrap(), layer_key)
                .and_then(|v| v.as_int())
                .unwrap();
            let tgt_layer = g
                .node_prop(g.tgt(r).unwrap(), layer_key)
                .and_then(|v| v.as_int())
                .unwrap();
            assert!(tgt_layer < src_layer, "dependencies point downwards");
        }
    }

    #[test]
    fn fraud_rings_share_info() {
        let g = fraud_rings(50, 3, 4, 1);
        // Each ring's shared node has ring_size HAS edges pointing at it.
        let mut shared_with_many = 0;
        for n in g.nodes() {
            let incoming = g.in_rels(n).len();
            if incoming >= 4 {
                shared_with_many += 1;
            }
        }
        assert_eq!(shared_with_many, 3);
    }

    #[test]
    fn citation_network_is_acyclic() {
        let g = citation_network(10, 100, 3, 9);
        let cites = g.interner().get("CITES").unwrap();
        for r in g.rels() {
            if g.rel_type(r) == Some(cites) {
                // Citations point from newer (higher id) to older.
                assert!(g.src(r).unwrap() > g.tgt(r).unwrap());
            }
        }
    }

    #[test]
    fn chain_shape() {
        let g = chain(10);
        assert_eq!(g.node_count(), 10);
        assert_eq!(g.rel_count(), 9);
    }

    #[test]
    fn social_network_shape() {
        let g = social_network(100, 5, 4, 3);
        let person = g.interner().get("Person").unwrap();
        assert_eq!(g.label_cardinality(person), 100);
        let friend = g.interner().get("FRIEND").unwrap();
        assert!(g.type_cardinality(friend) > 100);
    }

    #[test]
    fn powerlaw_social_is_deterministic_and_skewed() {
        let a = powerlaw_social(300, 3, 11);
        let b = powerlaw_social(300, 3, 11);
        let ra: Vec<_> = a.rels().map(|r| (a.src(r), a.tgt(r))).collect();
        let rb: Vec<_> = b.rels().map(|r| (b.src(r), b.tgt(r))).collect();
        assert_eq!(ra, rb);
        assert_eq!(a.node_count(), 300);
        // Every node after the first creates exactly `edges_per` edges.
        assert_eq!(a.rel_count(), 299 * 3);
        // Preferential attachment concentrates degree: the most-followed
        // node collects far more than its fair share.
        let max_in = a.nodes().map(|n| a.in_rels(n).len()).max().unwrap();
        let avg = a.rel_count() as f64 / a.node_count() as f64;
        assert!(
            max_in as f64 > 3.0 * avg,
            "max in-degree {max_in} not skewed over average {avg:.1}"
        );
        // Both labels exist for mixed-label cyclic queries.
        let person = a.interner().get("Person").unwrap();
        let bot = a.interner().get("Bot").unwrap();
        assert_eq!(a.label_cardinality(person), 300);
        assert!(a.label_cardinality(bot) > 0);
    }

    #[test]
    fn random_graph_bounds() {
        let g = random_graph(50, 200, &["A", "B"], &["X", "Y"], 5);
        assert_eq!(g.node_count(), 50);
        assert_eq!(g.rel_count(), 200);
    }
}
