//! # cypher-workload
//!
//! Deterministic synthetic graph generators for the application domains
//! the paper draws its examples from (Sections 1 and 3): the Figure 1
//! citation graph and Figure 4 teacher graph used by the formal examples,
//! plus scaled-up generators for the industry queries — data-center
//! dependency networks, fraud rings sharing personal information, social
//! networks, and citation networks.
//!
//! All generators are seeded and reproducible; they substitute for the
//! production datasets the paper's deployments run on (see DESIGN.md,
//! "Simulated / substituted components").
//!
//! Besides graphs, [`queries`] generates random *queries* from a small
//! grammar — the workload side of the parallel differential harness
//! (`tests/parallel_differential.rs`), which replays each one at several
//! thread counts and against the reference oracle.

#![warn(missing_docs)]

pub mod generators;
pub mod queries;

pub use generators::*;
pub use queries::{
    random_cyclic_queries, random_queries, random_updates, QueryGenerator, QueryVocabulary,
};
