//! Grammar-driven random Cypher query generator — the workload half of the
//! parallel differential test harness.
//!
//! Queries are drawn from a small grammar covering the read surface the
//! engine parallelizes: linear `MATCH` patterns (with optional second
//! paths, shared variables, variable-length hops), `WHERE` predicates over
//! the integer properties the [`crate::random_graph`] substrate guarantees
//! (`v`, `i`), and the full family of pipeline breakers — aggregation,
//! `DISTINCT`, `ORDER BY`, `SKIP`/`LIMIT`.
//!
//! Two invariants keep every generated query *differentially comparable*
//! (equal as a sorted multiset across evaluators and thread counts):
//!
//! * every variable referenced by `WHERE` or `RETURN` is bound by the
//!   `MATCH`, so no query errors;
//! * `SKIP`/`LIMIT` only follow an `ORDER BY` whose key is the query's
//!   single projected column, so the kept multiset is fully determined
//!   even when the sort has ties (tied rows are then indistinguishable).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The vocabulary a [`QueryGenerator`] draws from. The default matches the
/// `random_graph(_, _, &["A", "B"], &["X", "Y"], _)` substrate of the
/// differential suites: labels `A`/`B`, relationship types `X`/`Y`, and
/// integer node properties `v` (small, collision-heavy) and `i` (unique).
#[derive(Debug, Clone)]
pub struct QueryVocabulary {
    /// Node labels patterns and predicates may mention.
    pub labels: Vec<String>,
    /// Relationship types patterns may mention.
    pub types: Vec<String>,
    /// Integer-valued node property keys.
    pub int_props: Vec<String>,
}

impl Default for QueryVocabulary {
    fn default() -> Self {
        QueryVocabulary {
            labels: vec!["A".into(), "B".into()],
            types: vec!["X".into(), "Y".into()],
            int_props: vec!["v".into(), "i".into()],
        }
    }
}

/// A deterministic stream of random read queries: same seed, same
/// queries, on every run and platform (the RNG is the workspace's own
/// [`rand::rngs::SmallRng`] shim).
#[derive(Debug)]
pub struct QueryGenerator {
    rng: SmallRng,
    vocab: QueryVocabulary,
    /// Counter behind the fresh `i` values update statements assign, so
    /// generated `CREATE`s never collide with the substrate's unique ids.
    fresh: i64,
}

impl QueryGenerator {
    /// A generator over the default vocabulary.
    pub fn new(seed: u64) -> QueryGenerator {
        QueryGenerator::with_vocabulary(seed, QueryVocabulary::default())
    }

    /// A generator over an explicit vocabulary.
    pub fn with_vocabulary(seed: u64, vocab: QueryVocabulary) -> QueryGenerator {
        QueryGenerator {
            rng: SmallRng::seed_from_u64(seed),
            vocab,
            fresh: 1_000,
        }
    }

    /// Draws the next query.
    pub fn next_query(&mut self) -> String {
        let mut vars: Vec<String> = Vec::new();
        let mut rel_vars: Vec<String> = Vec::new();

        let mut pattern = self.gen_path(&mut vars, &mut rel_vars);
        if self.rng.gen_bool(0.2) {
            let second = self.gen_path(&mut vars, &mut rel_vars);
            pattern.push_str(", ");
            pattern.push_str(&second);
        }

        let mut q = format!("MATCH {pattern}");
        if self.rng.gen_bool(0.45) {
            q.push_str(" WHERE ");
            q.push_str(&self.gen_predicate(&vars));
        }
        q.push(' ');
        q.push_str(&self.gen_return(&vars, &rel_vars));
        q
    }

    /// Draws the next **update** statement: `CREATE`, `SET` (property,
    /// map-replace, map-merge, label), `REMOVE` (property, label),
    /// `DELETE`/`DETACH DELETE`, or `MERGE` with `ON CREATE`/`ON MATCH`.
    ///
    /// Every statement is total over any graph shaped by the vocabulary —
    /// deletions always detach, matches that bind nothing make the update
    /// a no-op — so a generated stream never errors and is exactly
    /// reproducible: the substrate the recovery and parallel differential
    /// harnesses replay against their oracles.
    pub fn next_update(&mut self) -> String {
        let label = pick(&mut self.rng, &self.vocab.labels).clone();
        let label2 = pick(&mut self.rng, &self.vocab.labels).clone();
        let ty = pick(&mut self.rng, &self.vocab.types).clone();
        let k = self.rng.gen_range(0..10);
        let k2 = self.rng.gen_range(0..10);
        match self.rng.gen_range(0..10) {
            // Grow the graph: CREATE dominates so workloads stay dense.
            0 | 1 => {
                let (i1, i2) = (self.fresh, self.fresh + 1);
                self.fresh += 2;
                format!(
                    "CREATE (:{label} {{v: {k}, i: {i1}}})-[:{ty} {{w: {k2}}}]->\
                     (:{label2} {{v: {k2}, i: {i2}}})"
                )
            }
            2 => {
                let i1 = self.fresh;
                self.fresh += 1;
                format!("CREATE (:{label} {{v: {k}, i: {i1}}})")
            }
            // Point and predicate SETs.
            3 => format!("MATCH (n:{label}) WHERE n.v = {k} SET n.v = {k2}"),
            4 => {
                let i1 = self.fresh;
                self.fresh += 1;
                if self.rng.gen_bool(0.5) {
                    format!("MATCH (n:{label} {{v: {k}}}) SET n += {{u: {i1}}}")
                } else {
                    format!("MATCH (n:{label} {{v: {k}}}) SET n = {{v: {k2}, i: {i1}}}")
                }
            }
            // Relationship property churn.
            5 => format!("MATCH (a:{label})-[r:{ty}]->(b) SET r.w = {k2}"),
            // Label churn (exercises the composite-index backfill).
            6 => {
                if self.rng.gen_bool(0.5) {
                    format!("MATCH (n:{label}) WHERE n.v = {k} SET n:{label2}")
                } else {
                    format!("MATCH (n:{label}) WHERE n.v = {k} REMOVE n:{label2}")
                }
            }
            // Property removal.
            7 => format!("MATCH (n:{label} {{v: {k}}}) REMOVE n.v"),
            // Deletions: relationships alone, or detach-delete nodes.
            8 => {
                if self.rng.gen_bool(0.6) {
                    format!("MATCH (a)-[r:{ty}]->(b:{label}) WHERE b.v = {k} DELETE r")
                } else {
                    format!("MATCH (n:{label}) WHERE n.v = {k} DETACH DELETE n")
                }
            }
            // MERGE, with and without conditional SETs.
            _ => {
                let i1 = self.fresh;
                self.fresh += 1;
                match self.rng.gen_range(0..3) {
                    0 => format!("MERGE (n:{label} {{v: {k}}})"),
                    1 => format!(
                        "MERGE (n:{label} {{v: {k}}}) \
                         ON CREATE SET n.i = {i1} ON MATCH SET n.u = {k2}"
                    ),
                    _ => format!(
                        "MERGE (a:{label} {{v: {k}}})-[:{ty}]->(b:{label2} {{v: {k2}}}) \
                         ON CREATE SET a.i = {i1}"
                    ),
                }
            }
        }
    }

    /// Draws the next **churn** update: the delete/retraction-heavy
    /// mirror of [`QueryGenerator::next_update`]. Deletions, property
    /// and label removals, and overwrites dominate; creations still
    /// appear (3 in 10) so the graph never empties and the destructive
    /// statements keep finding targets. This is the workload that
    /// exercises incremental-view **retraction** paths: most statements
    /// shrink or rewrite rows a standing query already materialized.
    ///
    /// The same totality invariant as `next_update` holds — deletions
    /// always detach, empty matches are no-ops — so a churn stream
    /// never errors and replays exactly.
    pub fn next_churn_update(&mut self) -> String {
        let label = pick(&mut self.rng, &self.vocab.labels).clone();
        let label2 = pick(&mut self.rng, &self.vocab.labels).clone();
        let ty = pick(&mut self.rng, &self.vocab.types).clone();
        let k = self.rng.gen_range(0..10);
        let k2 = self.rng.gen_range(0..10);
        match self.rng.gen_range(0..10) {
            // Keep some inflow so there is always something to retract.
            0 | 1 => {
                let (i1, i2) = (self.fresh, self.fresh + 1);
                self.fresh += 2;
                format!(
                    "CREATE (:{label} {{v: {k}, i: {i1}}})-[:{ty} {{w: {k2}}}]->\
                     (:{label2} {{v: {k2}, i: {i2}}})"
                )
            }
            2 => {
                let i1 = self.fresh;
                self.fresh += 1;
                format!("CREATE (:{label} {{v: {k}, i: {i1}}})")
            }
            // Relationship deletions.
            3 | 4 => format!("MATCH (a)-[r:{ty}]->(b:{label}) WHERE b.v = {k} DELETE r"),
            // Node deletions.
            5 | 6 => format!("MATCH (n:{label}) WHERE n.v = {k} DETACH DELETE n"),
            // Property retraction: the grouping key itself disappears.
            7 => format!("MATCH (n:{label} {{v: {k}}}) REMOVE n.v"),
            // Label retraction: rows leave label-filtered views.
            8 => format!("MATCH (n:{label}) WHERE n.v = {k} REMOVE n:{label2}"),
            // Overwrite: retraction + insertion in one statement.
            _ => format!("MATCH (n:{label}) WHERE n.v = {k} SET n.v = {k2}"),
        }
    }

    /// Draws the next **aggregation-heavy** query: implicit grouping
    /// keys, `count`/`sum`/`min`/`max`/`avg`/`collect(DISTINCT …)`,
    /// `DISTINCT` projections, `ORDER BY … LIMIT` (top-k shaped), and
    /// `WITH`-chained aggregates — the workload the partial-aggregation
    /// pushdown must get bit-identical across thread counts and morsel
    /// sizes.
    ///
    /// Differential-comparability invariants on top of the base grammar's:
    ///
    /// * every `ORDER BY` sorts by a **total** order — the leading sort
    ///   key is either a grouping key (distinct per output row), a
    ///   `DISTINCT` output column, or the substrate's unique `i`
    ///   property — so even row-for-row comparison against the reference
    ///   oracle is well-defined;
    /// * `collect` is the only order-sensitive aggregate emitted, and the
    ///   harness canonicalizes list cells before comparing against the
    ///   oracle (engines feed rows in a different order than the
    ///   reference matcher; engine-vs-engine stays exact).
    pub fn next_aggregate_query(&mut self) -> String {
        let mut vars: Vec<String> = Vec::new();
        let mut rel_vars: Vec<String> = Vec::new();
        let mut pattern = self.gen_path(&mut vars, &mut rel_vars);
        if self.rng.gen_bool(0.15) {
            let second = self.gen_path(&mut vars, &mut rel_vars);
            pattern.push_str(", ");
            pattern.push_str(&second);
        }
        let mut q = format!("MATCH {pattern}");
        if self.rng.gen_bool(0.4) {
            q.push_str(" WHERE ");
            q.push_str(&self.gen_predicate(&vars));
        }
        q.push(' ');
        q.push_str(&self.gen_aggregate_return(&vars));
        q
    }

    /// Draws the next **cyclic-pattern** query: a triangle, diamond or
    /// 4-cycle over named node variables — the shapes the worst-case-
    /// optimal multiway intersection join targets — with mixed labels,
    /// directions, relationship types and literal property predicates.
    ///
    /// Every step is single-hop and every relationship variable is
    /// fresh, so the patterns stay eligible for the intersection plan
    /// (the planner may still choose the expand chain; both enumerate
    /// the same bag). Intersection and expand plans bind variables in
    /// different orders, so harnesses compare these queries row-for-row
    /// only *within* one plan policy (across thread counts) and as
    /// sorted multisets across policies.
    pub fn next_cyclic_query(&mut self) -> String {
        let mut rel_idx = 0usize;
        let mut rel = |rng: &mut SmallRng, vocab: &QueryVocabulary| -> String {
            let var = if rng.gen_bool(0.5) {
                let v = format!("e{rel_idx}");
                rel_idx += 1;
                v
            } else {
                String::new()
            };
            let ty = if rng.gen_bool(0.5) {
                format!(":{}", pick(rng, &vocab.types))
            } else {
                String::new()
            };
            let props = if rng.gen_bool(0.15) {
                format!(" {{w: {}}}", rng.gen_range(0..100))
            } else {
                String::new()
            };
            let body = format!("[{var}{ty}{props}]");
            match rng.gen_range(0..3) {
                0 => format!("-{body}->"),
                1 => format!("<-{body}-"),
                _ => format!("-{body}-"),
            }
        };
        let node = |rng: &mut SmallRng, vocab: &QueryVocabulary, var: &str| -> String {
            let label = if rng.gen_bool(0.35) {
                format!(":{}", pick(rng, &vocab.labels))
            } else {
                String::new()
            };
            let props = if rng.gen_bool(0.15) {
                format!(" {{v: {}}}", rng.gen_range(0..10))
            } else {
                String::new()
            };
            format!("({var}{label}{props})")
        };
        let rng = &mut self.rng;
        let vocab = &self.vocab;
        let (vars, pattern): (&[&str], String) = match rng.gen_range(0..3) {
            // Triangle: a–b–c plus the closing a–c edge.
            0 => {
                let p = format!(
                    "{}{}{}{}{}, {}{}{}",
                    node(rng, vocab, "a"),
                    rel(rng, vocab),
                    node(rng, vocab, "b"),
                    rel(rng, vocab),
                    node(rng, vocab, "c"),
                    node(rng, vocab, "a"),
                    rel(rng, vocab),
                    node(rng, vocab, "c"),
                );
                (&["a", "b", "c"], p)
            }
            // Diamond: two length-2 paths a→…→d through b and c.
            1 => {
                let p = format!(
                    "{}{}{}{}{}, {}{}{}{}{}",
                    node(rng, vocab, "a"),
                    rel(rng, vocab),
                    node(rng, vocab, "b"),
                    rel(rng, vocab),
                    node(rng, vocab, "d"),
                    node(rng, vocab, "a"),
                    rel(rng, vocab),
                    node(rng, vocab, "c"),
                    rel(rng, vocab),
                    node(rng, vocab, "d"),
                );
                (&["a", "b", "c", "d"], p)
            }
            // 4-cycle: a–b–c–d plus the closing a–d edge.
            _ => {
                let p = format!(
                    "{}{}{}{}{}{}{}, {}{}{}",
                    node(rng, vocab, "a"),
                    rel(rng, vocab),
                    node(rng, vocab, "b"),
                    rel(rng, vocab),
                    node(rng, vocab, "c"),
                    rel(rng, vocab),
                    node(rng, vocab, "d"),
                    node(rng, vocab, "a"),
                    rel(rng, vocab),
                    node(rng, vocab, "d"),
                );
                (&["a", "b", "c", "d"], p)
            }
        };
        let mut q = format!("MATCH {pattern}");
        if rng.gen_bool(0.3) {
            let x = *pick(rng, vars);
            let y = *pick(rng, vars);
            q.push_str(&match rng.gen_range(0..3) {
                0 => format!(" WHERE {x}.v > {}", rng.gen_range(0..10)),
                1 => format!(" WHERE {x}.v = {y}.v"),
                _ => format!(" WHERE {x}.v < {} AND {y}.v > 0", rng.gen_range(1..10)),
            });
        }
        match rng.gen_range(0..3) {
            0 => {
                let items: Vec<String> = vars.iter().map(|v| format!("{v}.i AS {v}0")).collect();
                q.push_str(&format!(" RETURN {}", items.join(", ")));
            }
            1 => q.push_str(" RETURN count(*) AS c"),
            _ => {
                let x = *pick(rng, vars);
                q.push_str(&format!(" RETURN DISTINCT {x}.v AS d"));
            }
        }
        q
    }

    /// The projection half of [`QueryGenerator::next_aggregate_query`].
    fn gen_aggregate_return(&mut self, vars: &[String]) -> String {
        let g = pick(&mut self.rng, vars).clone();
        let a = pick(&mut self.rng, vars).clone();
        let dir = if self.rng.gen_bool(0.5) { " DESC" } else { "" };
        let limit = self.rng.gen_range(1..6);
        match self.rng.gen_range(0..9) {
            // Grouped count, optionally ordered by the (distinct) key.
            0 => {
                if self.rng.gen_bool(0.5) {
                    format!("RETURN {g}.v AS g, count(*) AS c")
                } else {
                    format!("RETURN {g}.v AS g, count(*) AS c ORDER BY g{dir} LIMIT {limit}")
                }
            }
            // A fuller aggregate battery over one grouping key.
            1 => format!(
                "RETURN {g}.v AS g, count({a}.i) AS c, sum({a}.v) AS s, \
                 min({a}.i) AS mn, max({a}.i) AS mx"
            ),
            // Exact float aggregation (avg is float-valued).
            2 => {
                if self.rng.gen_bool(0.5) {
                    format!("RETURN {g}.v AS g, avg({a}.i) AS m ORDER BY g{dir}")
                } else {
                    format!("RETURN {g}.v AS g, sum({a}.i) AS s, avg({a}.v) AS m")
                }
            }
            // Keyless (single-group) aggregates, incl. DISTINCT variants.
            3 => match self.rng.gen_range(0..4) {
                0 => "RETURN count(*) AS c".to_string(),
                1 => format!("RETURN count(DISTINCT {a}.v) AS c"),
                2 => format!("RETURN sum(DISTINCT {a}.v) AS s, count(*) AS c"),
                _ => format!("RETURN min({a}.v) AS mn, max({a}.v) AS mx, avg({a}.i) AS m"),
            },
            // collect(DISTINCT …): order-sensitive value, distinct set.
            4 => format!("RETURN {g}.v AS g, collect(DISTINCT {a}.v) AS xs"),
            // DISTINCT projections (ordered and truncated variants).
            5 => {
                let key = pick(&mut self.rng, &self.vocab.int_props).clone();
                match self.rng.gen_range(0..3) {
                    0 => format!("RETURN DISTINCT {a}.{key} AS d"),
                    1 => format!("RETURN DISTINCT {a}.{key} AS d ORDER BY d{dir}"),
                    _ => format!("RETURN DISTINCT {a}.{key} AS d ORDER BY d{dir} LIMIT {limit}"),
                }
            }
            // Top-k: ORDER BY the unique `i`, so the kept rows are exact.
            6 => {
                let skip = if self.rng.gen_bool(0.4) {
                    format!(" SKIP {}", self.rng.gen_range(0..3))
                } else {
                    String::new()
                };
                if self.rng.gen_bool(0.5) {
                    format!("RETURN {a}.i AS k ORDER BY k{dir}{skip} LIMIT {limit}")
                } else {
                    // Multi-key sort: ties on v broken by the unique i.
                    format!(
                        "RETURN {a}.i AS k, {a}.v AS w \
                         ORDER BY w{dir}, k{skip} LIMIT {limit}"
                    )
                }
            }
            // WITH-chained aggregates: aggregate over aggregates.
            7 => {
                if self.rng.gen_bool(0.5) {
                    format!(
                        "WITH {g}.v AS g, count(*) AS c \
                         RETURN g, sum(c) AS s ORDER BY g{dir}"
                    )
                } else {
                    format!(
                        "WITH {g}.v AS g, count(*) AS c WHERE c > 1 \
                         RETURN count(*) AS groups, sum(c) AS rows"
                    )
                }
            }
            // Aggregates combined with scalar arithmetic on the key.
            _ => format!("RETURN {g}.v + 1 AS g1, count(*) AS c, sum({a}.i) AS s"),
        }
    }

    /// `path := node (rel node){0..2}`, binding fresh (or occasionally
    /// shared) node variables.
    fn gen_path(&mut self, vars: &mut Vec<String>, rel_vars: &mut Vec<String>) -> String {
        let hops = self.rng.gen_range(0..3);
        let mut s = self.gen_node(vars);
        for _ in 0..hops {
            s.push_str(&self.gen_rel(rel_vars));
            s.push_str(&self.gen_node(vars));
        }
        s
    }

    /// `node := '(' var (':' label)? ('{v: k}')? ')'`. One time in ten the
    /// variable is a re-used earlier binding (a join / shared endpoint).
    fn gen_node(&mut self, vars: &mut Vec<String>) -> String {
        let var = if !vars.is_empty() && self.rng.gen_bool(0.1) {
            vars[self.rng.gen_range(0..vars.len())].clone()
        } else {
            let v = format!("n{}", vars.len());
            vars.push(v.clone());
            v
        };
        let label = if self.rng.gen_bool(0.5) {
            format!(":{}", pick(&mut self.rng, &self.vocab.labels))
        } else {
            String::new()
        };
        let props = if self.rng.gen_bool(0.3) {
            format!(" {{v: {}}}", self.rng.gen_range(0..10))
        } else {
            String::new()
        };
        format!("({var}{label}{props})")
    }

    /// `rel := '-[' var? (':' type)? range? ']-'` with a direction.
    fn gen_rel(&mut self, rel_vars: &mut Vec<String>) -> String {
        let var = if self.rng.gen_bool(0.25) {
            let v = format!("r{}", rel_vars.len());
            rel_vars.push(v.clone());
            v
        } else {
            String::new()
        };
        let ty = if self.rng.gen_bool(0.6) {
            format!(":{}", pick(&mut self.rng, &self.vocab.types))
        } else {
            String::new()
        };
        let range = if self.rng.gen_bool(0.2) {
            *pick(&mut self.rng, &["*0..1", "*1..2", "*1..3"])
        } else {
            ""
        };
        let body = format!("[{var}{ty}{range}]");
        match self.rng.gen_range(0..3) {
            0 => format!("-{body}->"),
            1 => format!("<-{body}-"),
            _ => format!("-{body}-"),
        }
    }

    /// `pred := cmp ((AND|OR) cmp)?` over bound node variables.
    fn gen_predicate(&mut self, vars: &[String]) -> String {
        let first = self.gen_comparison(vars);
        if self.rng.gen_bool(0.3) {
            let op = if self.rng.gen_bool(0.5) { "AND" } else { "OR" };
            let second = self.gen_comparison(vars);
            format!("{first} {op} {second}")
        } else {
            first
        }
    }

    fn gen_comparison(&mut self, vars: &[String]) -> String {
        let var = pick(&mut self.rng, vars).clone();
        match self.rng.gen_range(0..5) {
            0 => format!("{var}.v > {}", self.rng.gen_range(0..10)),
            1 => format!("{var}.v < {}", self.rng.gen_range(0..10)),
            2 => format!("{var}.v = {}", self.rng.gen_range(0..10)),
            3 => {
                let other = pick(&mut self.rng, vars).clone();
                format!("{var}.v = {other}.v")
            }
            _ => format!("{var}:{}", pick(&mut self.rng, &self.vocab.labels)),
        }
    }

    /// `ret := RETURN (DISTINCT)? items (ORDER BY …)? (SKIP/LIMIT)?`.
    fn gen_return(&mut self, vars: &[String], rel_vars: &[String]) -> String {
        match self.rng.gen_range(0..7) {
            // Entity values (nodes, occasionally a relationship binding).
            0 => {
                let mut items: Vec<String> = Vec::new();
                items.push(pick(&mut self.rng, vars).clone());
                if !rel_vars.is_empty() && self.rng.gen_bool(0.5) {
                    items.push(pick(&mut self.rng, rel_vars).clone());
                } else if vars.len() > 1 && self.rng.gen_bool(0.5) {
                    items.push(pick(&mut self.rng, vars).clone());
                }
                items.sort();
                items.dedup();
                format!("RETURN {}", items.join(", "))
            }
            // Property projections.
            1 => {
                let a = pick(&mut self.rng, vars).clone();
                if vars.len() > 1 && self.rng.gen_bool(0.5) {
                    let b = pick(&mut self.rng, vars).clone();
                    format!("RETURN {a}.v AS a0, {b}.i AS a1")
                } else {
                    format!("RETURN {a}.v AS a0")
                }
            }
            // Bare and grouped aggregation.
            2 => "RETURN count(*) AS c".to_string(),
            3 => {
                let g = pick(&mut self.rng, vars).clone();
                format!("RETURN {g}.v AS g, count(*) AS c")
            }
            // DISTINCT (a pipeline breaker with per-worker duplicates).
            4 => {
                let a = pick(&mut self.rng, vars).clone();
                let key = pick(&mut self.rng, &self.vocab.int_props).clone();
                format!("RETURN DISTINCT {a}.{key} AS d")
            }
            // ORDER BY without truncation: any projection may ride along.
            5 => {
                let a = pick(&mut self.rng, vars).clone();
                let dir = if self.rng.gen_bool(0.5) { " DESC" } else { "" };
                format!("RETURN {a}.v AS s ORDER BY s{dir}")
            }
            // ORDER BY + SKIP/LIMIT: single projected column == sort key,
            // so ties cannot make the kept multiset ambiguous.
            _ => {
                let a = pick(&mut self.rng, vars).clone();
                let key = pick(&mut self.rng, &self.vocab.int_props).clone();
                let dir = if self.rng.gen_bool(0.5) { " DESC" } else { "" };
                let skip = if self.rng.gen_bool(0.4) {
                    format!(" SKIP {}", self.rng.gen_range(0..3))
                } else {
                    String::new()
                };
                format!(
                    "RETURN {a}.{key} AS k ORDER BY k{dir}{skip} LIMIT {}",
                    self.rng.gen_range(1..6)
                )
            }
        }
    }
}

/// Uniform draw from a slice, free-standing so callers can borrow the
/// vocabulary and the RNG at the same time.
fn pick<'v, T>(rng: &mut SmallRng, options: &'v [T]) -> &'v T {
    &options[rng.gen_range(0..options.len())]
}

/// Draws `n` queries from a fresh generator — convenience for test
/// harnesses.
pub fn random_queries(n: usize, seed: u64) -> Vec<String> {
    let mut gen = QueryGenerator::new(seed);
    (0..n).map(|_| gen.next_query()).collect()
}

/// Draws `n` update statements from a fresh generator.
pub fn random_updates(n: usize, seed: u64) -> Vec<String> {
    let mut gen = QueryGenerator::new(seed);
    (0..n).map(|_| gen.next_update()).collect()
}

/// Draws `n` churn (delete/retraction-heavy) update statements from a
/// fresh generator.
pub fn random_churn_updates(n: usize, seed: u64) -> Vec<String> {
    let mut gen = QueryGenerator::new(seed);
    (0..n).map(|_| gen.next_churn_update()).collect()
}

/// Draws `n` aggregation-heavy queries from a fresh generator.
pub fn random_aggregate_queries(n: usize, seed: u64) -> Vec<String> {
    let mut gen = QueryGenerator::new(seed);
    (0..n).map(|_| gen.next_aggregate_query()).collect()
}

/// Draws `n` cyclic-pattern queries from a fresh generator.
pub fn random_cyclic_queries(n: usize, seed: u64) -> Vec<String> {
    let mut gen = QueryGenerator::new(seed);
    (0..n).map(|_| gen.next_cyclic_query()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic() {
        assert_eq!(random_queries(50, 7), random_queries(50, 7));
        assert_ne!(random_queries(50, 7), random_queries(50, 8));
    }

    #[test]
    fn queries_are_well_formed_enough() {
        for q in random_queries(300, 42) {
            assert!(q.starts_with("MATCH ("), "{q}");
            assert!(q.contains("RETURN"), "{q}");
            // SKIP/LIMIT only ever follow an ORDER BY (determinism rule).
            if q.contains("LIMIT") || q.contains("SKIP") {
                assert!(q.contains("ORDER BY"), "{q}");
            }
        }
    }

    #[test]
    fn update_generator_is_deterministic_and_covers_the_clauses() {
        assert_eq!(random_updates(80, 7), random_updates(80, 7));
        assert_ne!(random_updates(80, 7), random_updates(80, 8));
        let us = random_updates(400, 3).join("\n");
        for needle in [
            "CREATE",
            "SET",
            "REMOVE n.v",
            "REMOVE n:",
            "SET n:",
            "DELETE r",
            "DETACH DELETE",
            "MERGE",
            "ON CREATE",
            "ON MATCH",
            "SET n += {",
            "SET n = {",
            "SET r.w",
        ] {
            assert!(us.contains(needle), "400 updates never produced {needle}");
        }
    }

    #[test]
    fn churn_generator_is_deterministic_and_retraction_heavy() {
        assert_eq!(random_churn_updates(80, 7), random_churn_updates(80, 7));
        assert_ne!(random_churn_updates(80, 7), random_churn_updates(80, 8));
        let us = random_churn_updates(400, 3);
        let joined = us.join("\n");
        for needle in [
            "CREATE",
            "DELETE r",
            "DETACH DELETE",
            "REMOVE n.v",
            "REMOVE n:",
            "SET n.v",
        ] {
            assert!(
                joined.contains(needle),
                "400 churn updates never produced {needle}"
            );
        }
        // The preset's point: destructive/rewriting statements dominate.
        let destructive = us.iter().filter(|u| !u.starts_with("CREATE")).count();
        assert!(
            destructive * 2 > us.len(),
            "only {destructive}/{} churn statements were non-CREATE",
            us.len()
        );
    }

    #[test]
    fn fresh_ids_never_repeat() {
        let mut gen = QueryGenerator::new(11);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..300 {
            let u = gen.next_update();
            for part in u.split("i: ") {
                if let Some(num) = part.split(['}', ',']).next() {
                    if let Ok(i) = num.trim().parse::<i64>() {
                        if i >= 1_000 {
                            assert!(seen.insert(i), "fresh id {i} repeated in {u}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn aggregate_grammar_is_deterministic_and_covers_the_features() {
        assert_eq!(
            random_aggregate_queries(60, 5),
            random_aggregate_queries(60, 5)
        );
        assert_ne!(
            random_aggregate_queries(60, 5),
            random_aggregate_queries(60, 6)
        );
        let qs = random_aggregate_queries(400, 2).join("\n");
        for needle in [
            "count(*)",
            "count(DISTINCT",
            "sum(",
            "sum(DISTINCT",
            "min(",
            "max(",
            "avg(",
            "collect(DISTINCT",
            "RETURN DISTINCT",
            "ORDER BY",
            "LIMIT",
            "SKIP",
            "WITH",
            "WHERE",
        ] {
            assert!(
                qs.contains(needle),
                "400 agg queries never produced {needle}"
            );
        }
        // Truncation only ever follows a total-order ORDER BY.
        for q in random_aggregate_queries(400, 2) {
            if q.contains("LIMIT") || q.contains("SKIP") {
                assert!(q.contains("ORDER BY"), "{q}");
            }
        }
    }

    #[test]
    fn cyclic_grammar_is_deterministic_and_covers_the_shapes() {
        assert_eq!(random_cyclic_queries(60, 5), random_cyclic_queries(60, 5));
        assert_ne!(random_cyclic_queries(60, 5), random_cyclic_queries(60, 6));
        let qs = random_cyclic_queries(400, 2);
        let all = qs.join("\n");
        for needle in [
            "(c), (a)", // triangle: closing edge back to a
            "(d), (a)", // diamond / 4-cycle second path
            "count(*)",
            "RETURN DISTINCT",
            "WHERE",
            ":X",
            ":Y",
            ":A",
            "{v:",
            "{w:",
            "]->",
            "<-[",
            "]-(", // undirected steps appear
        ] {
            assert!(
                all.contains(needle),
                "400 cyclic queries never produced {needle}"
            );
        }
        for q in &qs {
            // Every pattern has two comma-joined paths sharing endpoints,
            // single-hop steps only, and fully named node variables.
            assert!(q.starts_with("MATCH (a"), "{q}");
            assert!(q.contains(", (a"), "{q}");
            let pattern = q.split(" RETURN").next().unwrap();
            assert!(!pattern.contains("count"), "{q}");
            assert!(!pattern.contains('*'), "variable-length hop in {q}");
        }
    }

    #[test]
    fn grammar_covers_the_breakers() {
        let qs = random_queries(400, 1).join("\n");
        for needle in [
            "count(*)", "DISTINCT", "ORDER BY", "LIMIT", "WHERE", "*1..2",
        ] {
            assert!(qs.contains(needle), "400 queries never produced {needle}");
        }
    }
}
