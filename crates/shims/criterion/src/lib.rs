//! Offline stand-in for the `criterion` crate (0.5 API subset).
//!
//! Real wall-clock measurement with a much simpler methodology: each
//! benchmark warms up, auto-calibrates an iteration count so one sample
//! lasts roughly `measurement_time / sample_size`, then takes
//! `sample_size` samples and reports the median, minimum and maximum
//! per-iteration time. No plots, no statistical regression — just honest
//! numbers on stdout in a stable, grep-friendly format:
//!
//! ```text
//! bench: e19_index_seek/full_scan/100000  median 1.234 ms  min 1.201 ms  max 1.299 ms  (20 samples x 8 iters)
//! ```

#![warn(missing_docs)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity function, re-exported from `std`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifies one benchmark within a group: a function name and an
/// optional parameter rendered as `name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A benchmark id `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// A benchmark identified by its parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher<'a> {
    cfg: &'a Config,
    label: String,
}

impl Bencher<'_> {
    /// Runs `f` repeatedly, measuring wall-clock time per call, and prints
    /// a summary line for the enclosing benchmark.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up & calibration: find an iteration count whose batch takes
        // roughly one sample's worth of time.
        let mut one = Duration::ZERO;
        for _ in 0..3 {
            let t = Instant::now();
            std_black_box(f());
            one = t.elapsed().max(Duration::from_nanos(1));
        }
        let per_sample = self.cfg.measurement_time / self.cfg.sample_size.max(1) as u32;
        let iters = (per_sample.as_nanos() / one.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut samples: Vec<Duration> = Vec::with_capacity(self.cfg.sample_size);
        for _ in 0..self.cfg.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                std_black_box(f());
            }
            samples.push(t.elapsed() / iters as u32);
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        let min = samples[0];
        let max = samples[samples.len() - 1];
        println!(
            "bench: {}  median {}  min {}  max {}  ({} samples x {} iters)",
            self.label,
            fmt_duration(median),
            fmt_duration(min),
            fmt_duration(max),
            samples.len(),
            iters
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

#[derive(Debug, Clone)]
struct Config {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            sample_size: 20,
            measurement_time: Duration::from_secs(1),
        }
    }
}

/// The benchmark harness entry point.
#[derive(Debug, Clone, Default)]
pub struct Criterion {
    cfg: Config,
}

impl Criterion {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.cfg.sample_size = n;
        self
    }

    /// Sets the total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.cfg.measurement_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            cfg: self.cfg.clone(),
            name: name.into(),
            _parent: std::marker::PhantomData,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F)
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let label = id.into().id;
        let mut b = Bencher {
            cfg: &self.cfg,
            label,
        };
        f(&mut b);
    }
}

/// A group of benchmarks sharing a name prefix and configuration.
pub struct BenchmarkGroup<'a> {
    cfg: Config,
    name: String,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the group's sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.cfg.sample_size = n;
        self
    }

    /// Overrides the group's measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.cfg.measurement_time = d;
        self
    }

    /// Benchmarks `f` under `group_name/id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F)
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let label = format!("{}/{}", self.name, id.into().id);
        let mut b = Bencher {
            cfg: &self.cfg,
            label,
        };
        f(&mut b);
    }

    /// Benchmarks `f` with a borrowed input under `group_name/id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let label = format!("{}/{}", self.name, id.into().id);
        let mut b = Bencher {
            cfg: &self.cfg,
            label,
        };
        f(&mut b, input);
    }

    /// Ends the group (kept for API compatibility; no-op).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(10));
        let mut group = c.benchmark_group("shim");
        let mut calls = 0u64;
        group.bench_function("noop", |b| b.iter(|| calls += 1));
        group.finish();
        assert!(calls > 3, "timing loop actually ran the closure");
    }
}
