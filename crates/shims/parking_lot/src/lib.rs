//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps [`std::sync::RwLock`] and exposes the non-poisoning `read` /
//! `write` API of the real crate: a panic while a guard is held does not
//! poison the lock for later readers. Only the surface this workspace
//! uses is provided.

#![warn(missing_docs)]

use std::sync::PoisonError;

/// The guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// The guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A reader-writer lock with `parking_lot` semantics: acquiring never
/// returns a `Result`, and poisoning is ignored.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock holding `t`.
    pub fn new(t: T) -> Self {
        RwLock(std::sync::RwLock::new(t))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
        assert_eq!(l.into_inner(), 2);
    }
}
