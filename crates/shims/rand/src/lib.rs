//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! Provides [`rngs::SmallRng`] (a splitmix64-seeded xorshift64* generator),
//! the [`SeedableRng`] and [`Rng`] traits, and integer range sampling via
//! [`Rng::gen_range`] / [`Rng::gen_bool`]. The workload generators only
//! need determinism for a given seed — not statistical quality — and this
//! shim delivers exactly that: the same seed always produces the same
//! sequence, on every platform.

#![warn(missing_docs)]

/// A source of random `u64`s.
pub trait RngCore {
    /// Returns the next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Creates an RNG deterministically derived from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that a range can sample into. Implemented for the primitive
/// integer types the workspace uses.
pub trait SampleUniform: Sized {
    /// Samples uniformly from `[lo, hi)`; `hi > lo` must hold.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Samples uniformly from `[lo, hi]`; `hi >= lo` must hold.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(hi > lo, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(hi >= lo, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range form accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from a range (`0..n` or `0..=n` forms).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p` (`0.0 ..= 1.0`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        // 53 bits of mantissa is plenty for workload probabilities.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xorshift64* over a
    /// splitmix64-expanded seed). Not cryptographic; matches the role of
    /// `rand::rngs::SmallRng`.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // splitmix64 scramble so that small/sequential seeds diverge.
            let mut z = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            SmallRng {
                state: (z ^ (z >> 31)) | 1, // non-zero
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            // xorshift64*
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let w = r.gen_range(0..=3usize);
            assert!(w <= 3);
        }
        let mut heads = 0;
        for _ in 0..1000 {
            if r.gen_bool(0.5) {
                heads += 1;
            }
        }
        assert!(
            (300..700).contains(&heads),
            "gen_bool badly skewed: {heads}"
        );
    }
}
