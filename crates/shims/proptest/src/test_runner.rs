//! The minimal test-runner state: configuration and the deterministic RNG
//! driving value generation.

/// Per-`proptest!` configuration. Only the `cases` knob is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated inputs per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` inputs.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A deterministic xorshift64* generator seeded from the test name.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from an arbitrary string (FNV-1a hash).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h | 1 }
    }

    /// Returns the next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}
