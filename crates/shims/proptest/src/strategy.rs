//! The [`Strategy`] trait and its combinators.
//!
//! A strategy here is simply a cloneable generator: `generate` draws one
//! value from the deterministic [`TestRng`]. Combinators mirror the real
//! crate's names (`prop_map`, `prop_recursive`, `boxed`) so test code is
//! source-compatible.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::rc::Rc;

/// A generator of test values.
pub trait Strategy: Clone {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U + Clone,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `f` receives the strategy for the
    /// *inner* (shallower) levels and returns the strategy for one level
    /// up. `depth` bounds the nesting; `_desired_size` and
    /// `_expected_branch_size` are accepted for API compatibility and
    /// ignored.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let base = self.clone().boxed();
        let mut current = self.boxed();
        for _ in 0..depth {
            let deeper = f(current).boxed();
            let leaf = base.clone();
            current = BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
                // Mix leaves back in at every level so sizes vary and
                // generation of deep values stays cheap.
                if rng.below(4) == 0 {
                    leaf.generate(rng)
                } else {
                    deeper.generate(rng)
                }
            }));
        }
        current
    }

    /// Type-erases the strategy behind a cheap, cloneable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        let s = self;
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| s.generate(rng)))
    }
}

/// A type-erased strategy handle (`Rc`-shared, cheaply cloneable).
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U + Clone,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives (built by `prop_oneof!`).
pub struct OneOf<T> {
    alts: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// Builds the choice from at least one alternative.
    pub fn new(alts: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!alts.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { alts }
    }
}

impl<T> Clone for OneOf<T> {
    fn clone(&self) -> Self {
        OneOf {
            alts: self.alts.clone(),
        }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.alts.len() as u64) as usize;
        self.alts[i].generate(rng)
    }
}

/// Values with a canonical "any value of this type" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the canonical unconstrained strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.end > self.start, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_from_pattern(self, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_name("strategy-tests")
    }

    #[test]
    fn ranges_and_maps() {
        let mut r = rng();
        let s = (-5i64..5).prop_map(|v| v * 2);
        for _ in 0..100 {
            let v = s.generate(&mut r);
            assert!((-10..10).contains(&v) && v % 2 == 0);
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut r = rng();
        let s = crate::prop_oneof![Just(0u8), Just(1u8), Just(2u8)];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[s.generate(&mut r) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn recursion_terminates() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(i64),
            Node(Vec<Tree>),
        }
        let mut r = rng();
        let s = (0i64..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 16, 3, |inner| {
                crate::collection::vec(inner, 0..3).prop_map(Tree::Node)
            });
        for _ in 0..100 {
            let _ = s.generate(&mut r); // must not hang or overflow
        }
    }
}
