//! Collection strategies: `vec` and `btree_map`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeMap;
use std::ops::Range;

/// A strategy producing `Vec`s with lengths drawn from `len`.
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.len.end - self.len.start).max(1) as u64;
        let n = self.len.start + rng.below(span) as usize;
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Vectors of `element` values with length in `len` (half-open).
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.end > len.start, "empty length range");
    VecStrategy { element, len }
}

/// A strategy producing `BTreeMap`s with sizes drawn from `len`.
#[derive(Clone)]
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    len: Range<usize>,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    type Value = BTreeMap<K::Value, V::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
        let span = (self.len.end - self.len.start).max(1) as u64;
        let n = self.len.start + rng.below(span) as usize;
        let mut out = BTreeMap::new();
        // Key collisions may make the map smaller than n — acceptable for
        // the size ranges the tests use.
        for _ in 0..n {
            out.insert(self.key.generate(rng), self.value.generate(rng));
        }
        out
    }
}

/// Maps from `key` to `value` with size in `len` (half-open; duplicate
/// generated keys may shrink the result).
pub fn btree_map<K, V>(key: K, value: V, len: Range<usize>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    assert!(len.end > len.start, "empty length range");
    BTreeMapStrategy { key, value, len }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn vec_respects_bounds() {
        let mut rng = TestRng::from_name("vec");
        let s = vec(0i64..5, 1..4);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((1..4).contains(&v.len()));
        }
    }

    #[test]
    fn btree_map_generates() {
        let mut rng = TestRng::from_name("map");
        let s = btree_map(0u8..10, 0i64..5, 0..3);
        for _ in 0..50 {
            let m = s.generate(&mut rng);
            assert!(m.len() < 3);
        }
    }
}
