//! Regex-lite string generation.
//!
//! The real crate generates `String`s matching a full regex. The patterns
//! used in this workspace are all concatenations of character classes
//! with optional bounded repetitions — e.g. `"[a-z][a-z0-9]{0,4}"` — so
//! this module implements exactly that subset:
//!
//! * `[...]` character classes with literal characters and `a-z` ranges,
//! * a literal character as an atom,
//! * `{n}` / `{n,m}` repetition suffixes (default: exactly once).
//!
//! Unsupported syntax panics at generation time with the offending
//! pattern, so a silently-wrong generator can't mask a test.

use crate::test_runner::TestRng;

enum Atom {
    /// One of these characters, uniformly.
    Class(Vec<char>),
    /// Exactly this character.
    Lit(char),
}

struct Piece {
    atom: Atom,
    min: u32,
    max: u32,
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut pieces = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"))
                    + i;
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j], chars[j + 2]);
                        assert!(lo <= hi, "bad range in pattern {pattern:?}");
                        for c in lo..=hi {
                            set.push(c);
                        }
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                assert!(!set.is_empty(), "empty class in pattern {pattern:?}");
                i = close + 1;
                Atom::Class(set)
            }
            c if c == '{'
                || c == '}'
                || c == ']'
                || c == '('
                || c == ')'
                || c == '|'
                || c == '*'
                || c == '+'
                || c == '?'
                || c == '\\'
                || c == '.' =>
            {
                panic!("unsupported regex syntax {c:?} in pattern {pattern:?}")
            }
            c => {
                i += 1;
                Atom::Lit(c)
            }
        };
        // Optional {n} / {n,m} repetition suffix.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("repetition lower bound"),
                    hi.trim().parse().expect("repetition upper bound"),
                ),
                None => {
                    let n: u32 = body.trim().parse().expect("repetition count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

/// Generates one string matching `pattern` (see module docs for the
/// supported subset).
pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for piece in parse(pattern) {
        let span = (piece.max - piece.min + 1) as u64;
        let reps = piece.min + rng.below(span) as u32;
        for _ in 0..reps {
            match &piece.atom {
                Atom::Lit(c) => out.push(*c),
                Atom::Class(set) => {
                    out.push(set[rng.below(set.len() as u64) as usize]);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_with_repetition() {
        let mut rng = TestRng::from_name("string");
        for _ in 0..200 {
            let s = generate_from_pattern("[a-z][a-z0-9]{0,4}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 5, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
    }

    #[test]
    fn space_in_class() {
        let mut rng = TestRng::from_name("string2");
        for _ in 0..100 {
            let s = generate_from_pattern("[a-z ]{0,6}", &mut rng);
            assert!(s.len() <= 6);
            assert!(s.chars().all(|c| c == ' ' || c.is_ascii_lowercase()));
        }
    }

    #[test]
    #[should_panic(expected = "unsupported regex syntax")]
    fn rejects_unsupported() {
        let mut rng = TestRng::from_name("string3");
        generate_from_pattern("a+", &mut rng);
    }
}
