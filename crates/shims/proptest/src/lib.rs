//! Offline stand-in for the `proptest` crate (1.x API subset).
//!
//! Implements the strategy combinators, macros and collection helpers the
//! workspace's property tests use, over a deterministic per-test RNG.
//! Each `proptest!` test runs `ProptestConfig::cases` generated inputs
//! (default 256). **Shrinking is intentionally not implemented**: a
//! failing case panics with the ordinary assertion message instead of a
//! minimized counterexample.
//!
//! Determinism: the RNG is seeded from the test function's name, so a
//! failure reproduces exactly by re-running the same test binary — there
//! is no persistence file.

#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// The glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Picks uniformly between alternative strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        $crate::strategy::OneOf::new(vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    }};
}

/// Declares property tests: each `#[test] fn name(arg in strategy, ..)`
/// becomes an ordinary `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ config = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        #[test]
        fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block
    )*) => {
        $(
            #[test]
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::from_name(stringify!($name));
                for __case in 0..__cfg.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )*
                    $body
                }
            }
        )*
    };
}
