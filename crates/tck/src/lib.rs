//! # cypher-tck
//!
//! A miniature Technology Compatibility Kit in the spirit of the
//! openCypher TCK the paper describes (Section 5: "a Technology
//! Compatibility Kit (TCK), designed using a language neutral framework
//! (Cucumber)").
//!
//! Scenarios are written in a small given/when/then text DSL:
//!
//! ```text
//! SCENARIO: count supervised students
//! GIVEN
//!   CREATE (r:Researcher {name: 'Elin'})-[:SUPERVISES]->(:Student)
//! WHEN
//!   MATCH (r:Researcher)-[:SUPERVISES]->(s) RETURN r.name AS n, count(s) AS c
//! THEN
//!   | n | c |
//!   | 'Elin' | 1 |
//! ```
//!
//! `GIVEN` is a Cypher update statement building the graph, `WHEN` the
//! query under test, and `THEN` the expected table (bag equality; cells
//! are Cypher literal expressions). `THEN ORDERED` demands the rows
//! *in the given order* — the determinism obligation of `ORDER BY` (and
//! of `SKIP`/`LIMIT` after it). `THEN ERROR` asserts that evaluation
//! fails. Every scenario is run against **three** evaluators — the
//! sequential planner engine, the same engine under a 4-thread
//! morsel-parallel configuration (2-row morsels, so even tiny graphs
//! split), and the reference semantics — so the corpus doubles as a
//! differential suite for both the planner and the parallel runtime; the
//! parallel run must additionally reproduce the sequential row sequence
//! exactly, whatever the expectation style.

#![warn(missing_docs)]

pub mod runner;

pub use runner::{parse_scenarios, run_scenario, run_scenarios, Scenario, TckError};
