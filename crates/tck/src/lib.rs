//! # cypher-tck
//!
//! A miniature Technology Compatibility Kit in the spirit of the
//! openCypher TCK the paper describes (Section 5: "a Technology
//! Compatibility Kit (TCK), designed using a language neutral framework
//! (Cucumber)").
//!
//! Scenarios are written in a small given/when/then text DSL:
//!
//! ```text
//! SCENARIO: count supervised students
//! GIVEN
//!   CREATE (r:Researcher {name: 'Elin'})-[:SUPERVISES]->(:Student)
//! WHEN
//!   MATCH (r:Researcher)-[:SUPERVISES]->(s) RETURN r.name AS n, count(s) AS c
//! THEN
//!   | n | c |
//!   | 'Elin' | 1 |
//! ```
//!
//! `GIVEN` is a Cypher update statement building the graph, `WHEN` the
//! query under test, and `THEN` the expected table (bag equality; cells
//! are Cypher literal expressions). `THEN ERROR` asserts that evaluation
//! fails. Every scenario is run against **both** evaluators — the planner
//! engine and the reference semantics — so the corpus doubles as a
//! differential suite.

#![warn(missing_docs)]

pub mod runner;

pub use runner::{parse_scenarios, run_scenario, run_scenarios, Scenario, TckError};
