//! Scenario parser and runner.

use cypher::{
    parse_expression, run, run_read, run_read_with, run_reference, EngineConfig, EvalContext,
    Params, PropertyGraph, Record, Schema, Table,
};
use cypher_core::expr::NoVars;
use std::fmt;

/// A single given/when/then scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The scenario title.
    pub name: String,
    /// Cypher update statements (one per line group) building the graph.
    pub given: Vec<String>,
    /// The query under test.
    pub when: String,
    /// The expected table, or `None` when an error is expected.
    pub then: Option<ExpectedTable>,
    /// True for `THEN ORDERED` scenarios: results must match the expected
    /// table *row for row*, not merely as a bag — the determinism
    /// obligation of `ORDER BY` (and of `SKIP`/`LIMIT` after it), which
    /// must hold identically under parallel execution.
    pub ordered: bool,
}

/// An expected result table: header plus rows of literal expressions.
#[derive(Debug, Clone)]
pub struct ExpectedTable {
    /// Column names.
    pub header: Vec<String>,
    /// Rows of Cypher literal expressions (unevaluated text).
    pub rows: Vec<Vec<String>>,
}

/// A scenario failure.
#[derive(Debug)]
pub struct TckError {
    /// The failing scenario.
    pub scenario: String,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for TckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scenario '{}': {}", self.scenario, self.message)
    }
}

impl std::error::Error for TckError {}

/// Parses a scenario corpus from its textual form.
pub fn parse_scenarios(src: &str) -> Result<Vec<Scenario>, String> {
    #[derive(PartialEq)]
    enum Section {
        None,
        Given,
        When,
        Then,
    }
    let mut out: Vec<Scenario> = Vec::new();
    let mut current: Option<Scenario> = None;
    let mut section = Section::None;
    let mut expect_error = false;

    for raw in src.lines() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(name) = line.strip_prefix("SCENARIO:") {
            if let Some(mut s) = current.take() {
                if expect_error {
                    s.then = None;
                }
                out.push(s);
            }
            current = Some(Scenario {
                name: name.trim().to_string(),
                given: Vec::new(),
                when: String::new(),
                then: Some(ExpectedTable {
                    header: Vec::new(),
                    rows: Vec::new(),
                }),
                ordered: false,
            });
            section = Section::None;
            expect_error = false;
            continue;
        }
        let Some(s) = current.as_mut() else {
            return Err(format!("content before first SCENARIO: {line}"));
        };
        match line {
            "GIVEN" => {
                section = Section::Given;
                continue;
            }
            "WHEN" => {
                section = Section::When;
                continue;
            }
            "THEN" => {
                section = Section::Then;
                continue;
            }
            "THEN ERROR" => {
                section = Section::Then;
                expect_error = true;
                continue;
            }
            "THEN ORDERED" => {
                section = Section::Then;
                s.ordered = true;
                continue;
            }
            _ => {}
        }
        match section {
            Section::Given => s.given.push(line.to_string()),
            Section::When => {
                if !s.when.is_empty() {
                    s.when.push(' ');
                }
                s.when.push_str(line);
            }
            Section::Then => {
                if expect_error {
                    return Err(format!("rows after THEN ERROR in '{}'", s.name));
                }
                let cells: Vec<String> = line
                    .trim_matches('|')
                    .split('|')
                    .map(|c| c.trim().to_string())
                    .collect();
                let table = s.then.as_mut().expect("then table present");
                if table.header.is_empty() {
                    table.header = cells;
                } else {
                    if cells.len() != table.header.len() {
                        return Err(format!("row width mismatch in '{}': {line}", s.name));
                    }
                    table.rows.push(cells);
                }
            }
            _ => return Err(format!("line outside any section in '{}': {line}", s.name)),
        }
    }
    if let Some(mut s) = current.take() {
        if expect_error {
            s.then = None;
        }
        out.push(s);
    }
    Ok(out)
}

fn expected_to_table(exp: &ExpectedTable) -> Result<Table, String> {
    let schema = Schema::new(exp.header.clone());
    let g = PropertyGraph::new();
    let params = Params::new();
    let ctx = EvalContext::new(&g, &params);
    let mut rows = Vec::with_capacity(exp.rows.len());
    for r in &exp.rows {
        let mut vals = Vec::with_capacity(r.len());
        for cell in r {
            let e = parse_expression(cell).map_err(|e| format!("bad cell '{cell}': {e}"))?;
            let v = cypher_core::eval_expr(&ctx, &NoVars, &e)
                .map_err(|e| format!("bad cell '{cell}': {e}"))?;
            vals.push(v);
        }
        rows.push(Record::new(vals));
    }
    Ok(Table::new(schema, rows))
}

/// The parallel configuration every scenario is additionally run under: a
/// 4-thread pool with deliberately tiny (2-row) morsels, so even the small
/// TCK graphs split into several units of parallel work.
fn parallel_config() -> EngineConfig {
    EngineConfig::default().with_threads(4).with_morsel_size(2)
}

/// Runs one scenario against the sequential engine, the morsel-parallel
/// engine, and the reference evaluator. Returns `Err` on the first
/// divergence from the expectation (row-for-row for `THEN ORDERED`
/// scenarios, bag equality otherwise). The parallel run must always
/// reproduce the sequential row sequence exactly.
pub fn run_scenario(s: &Scenario) -> Result<(), TckError> {
    let fail = |message: String| TckError {
        scenario: s.name.clone(),
        message,
    };
    let params = Params::new();
    let mut g = PropertyGraph::new();
    for stmt in &s.given {
        run(&mut g, stmt, &params).map_err(|e| fail(format!("GIVEN failed: {e}")))?;
    }
    let engine_result = run_read(&g, &s.when, &params);
    let parallel_result = run_read_with(&g, &s.when, &params, &parallel_config());
    let reference_result = run_reference(&g, &s.when, &params);
    match &s.then {
        None => {
            if engine_result.is_ok() {
                return Err(fail("expected an error from the engine".into()));
            }
            if parallel_result.is_ok() {
                return Err(fail("expected an error from the parallel engine".into()));
            }
            if reference_result.is_ok() {
                return Err(fail("expected an error from the reference".into()));
            }
            Ok(())
        }
        Some(exp) => {
            let want = expected_to_table(exp).map_err(&fail)?;
            let engine = engine_result.map_err(|e| fail(format!("engine failed: {e}")))?;
            let parallel =
                parallel_result.map_err(|e| fail(format!("parallel engine failed: {e}")))?;
            let reference = reference_result.map_err(|e| fail(format!("reference failed: {e}")))?;
            let matches = |got: &Table| {
                if s.ordered {
                    got.ordered_eq(&want)
                } else {
                    got.bag_eq(&want)
                }
            };
            let mode = if s.ordered { " (ordered)" } else { "" };
            if !matches(&engine) {
                return Err(fail(format!(
                    "engine result differs{mode}\nexpected:\n{want}\ngot:\n{engine}"
                )));
            }
            if !matches(&parallel) {
                return Err(fail(format!(
                    "parallel engine result differs{mode}\nexpected:\n{want}\ngot:\n{parallel}"
                )));
            }
            if !matches(&reference) {
                return Err(fail(format!(
                    "reference result differs{mode}\nexpected:\n{want}\ngot:\n{reference}"
                )));
            }
            // Independent of the expectation style, parallel execution
            // must reproduce the sequential row sequence exactly.
            if !parallel.ordered_eq(&engine) {
                return Err(fail(format!(
                    "parallel row order drifted from sequential\nsequential:\n{engine}\
                     parallel:\n{parallel}"
                )));
            }
            Ok(())
        }
    }
}

/// Parses and runs a whole corpus, returning the number of scenarios on
/// success.
pub fn run_scenarios(src: &str) -> Result<usize, TckError> {
    let scenarios = parse_scenarios(src).map_err(|message| TckError {
        scenario: "<corpus>".into(),
        message,
    })?;
    for s in &scenarios {
        run_scenario(s)?;
    }
    Ok(scenarios.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_run_minimal() {
        let n = run_scenarios(
            "SCENARIO: simple count
             GIVEN
               CREATE (r:Researcher {name: 'Elin'})-[:SUPERVISES]->(:Student)
             WHEN
               MATCH (r:Researcher)-[:SUPERVISES]->(s) RETURN r.name AS n, count(s) AS c
             THEN
               | n | c |
               | 'Elin' | 1 |",
        )
        .unwrap();
        assert_eq!(n, 1);
    }

    #[test]
    fn failing_expectation_reports() {
        let err = run_scenarios(
            "SCENARIO: wrong expectation
             WHEN
               RETURN 1 AS x
             THEN
               | x |
               | 2 |",
        )
        .unwrap_err();
        assert!(err.message.contains("differs"));
    }

    #[test]
    fn expected_error_scenario() {
        run_scenarios(
            "SCENARIO: slice of integer is an error
             WHEN
               RETURN 1[0] AS x
             THEN ERROR",
        )
        .unwrap();
    }

    #[test]
    fn then_ordered_checks_row_order() {
        // Correct order passes…
        run_scenarios(
            "SCENARIO: ordered ok
             GIVEN
               CREATE (:N {v: 2}), (:N {v: 1}), (:N {v: 3})
             WHEN
               MATCH (n:N) RETURN n.v AS v ORDER BY v
             THEN ORDERED
               | v |
               | 1 |
               | 2 |
               | 3 |",
        )
        .unwrap();
        // …the same rows in the wrong order fail, though they bag-match.
        let err = run_scenarios(
            "SCENARIO: ordered violation
             GIVEN
               CREATE (:N {v: 2}), (:N {v: 1})
             WHEN
               MATCH (n:N) RETURN n.v AS v ORDER BY v
             THEN ORDERED
               | v |
               | 2 |
               | 1 |",
        )
        .unwrap_err();
        assert!(err.message.contains("ordered"), "{err}");
    }

    #[test]
    fn multiline_when_and_comments() {
        let n = run_scenarios(
            "# a comment
             SCENARIO: multiline
             GIVEN
               CREATE (:A {v: 1})
               CREATE (:A {v: 2})
             WHEN
               MATCH (a:A)
               RETURN sum(a.v) AS s
             THEN
               | s |
               | 3 |",
        )
        .unwrap();
        assert_eq!(n, 1);
    }
}
