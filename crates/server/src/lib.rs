//! # cypher-server
//!
//! A concurrent TCP front-end over the [`cypher`] engine: one OS thread
//! per connection, each owning its own [`Session`] onto one shared
//! [`Database`] — so the engine's whole concurrency story (lock-free
//! snapshot reads, group-committed writes, the shared plan cache)
//! carries over to remote clients unchanged.
//!
//! ## Protocol
//!
//! The wire format lives in [`cypher_wire`]: an 8-byte handshake, then
//! length-framed, CRC-checked request/response payloads. Per connection
//! the server offers:
//!
//! * `Query` — auto-commit execution, exactly [`Session::query`];
//! * `Prepare`/`Execute`/`Deallocate` — **prepared statements**: prepare
//!   parses (and so validates) the text once and returns a
//!   connection-scoped id; every execution binds a fresh parameter map
//!   and rides the server-wide plan cache (plans embed parameter
//!   *expressions*, so one cached plan serves every binding, across all
//!   connections);
//! * `BeginRead`/`CommitRead` — a pinned read transaction mapped 1:1
//!   onto [`Session::begin_read`]/[`Session::commit`]: repeatable reads
//!   at one frozen version, however many remote writers commit
//!   in between;
//! * `CreateView`/`DropView`/`ReadView` — **standing queries**: a view
//!   registered by any connection is delta-maintained on every commit
//!   and readable by every connection; `ReadView` inside a pinned read
//!   transaction answers the view as of the pinned version;
//! * `Subscribe` — turns the connection into a **push stream**: after
//!   `Subscribed`, the server sends one `ViewChange` frame (bag deltas
//!   `added`/`removed`) per committed version that changed the view's
//!   rows, in version order, and closes the stream when the view is
//!   dropped or the server stops;
//! * `Ping`/`Stats`/`Goodbye` — liveness, observability, clean close.
//!
//! ## Error discipline (the hardening contract)
//!
//! A client can never take the server down, and a *statement* failure
//! can never take its *connection* down:
//!
//! * every engine error maps to a structured [`ErrorCode`] + the
//!   engine's own message ([`classify_error`]) — including the
//!   poisoned-write-path and database-closed cases
//!   ([`cypher::Error::Unavailable`]) and the update-inside-a-pinned-
//!   read refusal;
//! * every request handler runs under `catch_unwind`: a panic answers
//!   `ErrorCode::Internal` and the connection lives on;
//! * hostile bytes are rejected by the total [`cypher_wire`] decoder; a
//!   malformed *message* in a valid frame answers
//!   `ErrorCode::Protocol` (framing is still trusted), while a broken
//!   *frame* (bad CRC, over-cap length, torn header) gets a best-effort
//!   error and a dropped connection (framing is not);
//! * a dropped connection — abrupt or graceful — runs the same cleanup:
//!   the session (and any pinned snapshot version) is released, the
//!   gauges fall, nothing leaks.

#![warn(missing_docs)]

use cypher::{Database, Error, Params, Session, SubscriptionPoll, ViewSubscription};
use cypher_wire::{
    read_exact_frame, server_handshake, write_frame, ErrorCode, Request, Response, ServerStats,
    WireError, DEFAULT_MAX_FRAME_BYTES,
};
use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Server-side resource knobs (the engine's own knobs live in
/// [`cypher::EngineConfig`]).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Connections served concurrently; one past the cap is answered
    /// with `ErrorCode::Limit` and closed. Default 64
    /// (`CYPHER_MAX_CONNS`).
    pub max_connections: usize,
    /// Frame payload cap, enforced before allocation on both receive
    /// and send. Default 8 MiB (`CYPHER_MAX_FRAME_BYTES`).
    pub max_frame_bytes: u32,
    /// Prepared statements held per connection; `Prepare` past the cap
    /// answers `ErrorCode::Limit`. Default 1024.
    pub max_prepared: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            max_connections: 64,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            max_prepared: 1024,
        }
    }
}

impl ServerConfig {
    /// Defaults overlaid with the `CYPHER_MAX_CONNS` and
    /// `CYPHER_MAX_FRAME_BYTES` environment variables (ignored when
    /// unparsable or zero — the server must not start wide open because
    /// of a typo).
    pub fn from_env() -> ServerConfig {
        let mut cfg = ServerConfig::default();
        if let Some(n) = parse_env("CYPHER_MAX_CONNS") {
            cfg.max_connections = n;
        }
        if let Some(n) = parse_env::<u32>("CYPHER_MAX_FRAME_BYTES") {
            cfg.max_frame_bytes = n;
        }
        cfg
    }
}

fn parse_env<T: std::str::FromStr + PartialOrd + Default>(key: &str) -> Option<T> {
    let v = std::env::var(key).ok()?.parse::<T>().ok()?;
    (v > T::default()).then_some(v)
}

/// Maps an engine error onto its wire error code. The message sent to
/// the client is always the engine's own rendering (`Error::to_string`).
pub fn classify_error(e: &Error) -> ErrorCode {
    match e {
        Error::Parse(_) => ErrorCode::Parse,
        Error::Eval(_) => ErrorCode::Eval,
        Error::Storage(_) => ErrorCode::Storage,
        Error::Unavailable(_) => ErrorCode::Unavailable,
    }
}

/// State shared by the accept loop, every connection thread, and the
/// [`Server`] handle.
struct ServerShared {
    db: Database,
    cfg: ServerConfig,
    stop: AtomicBool,
    connections: AtomicUsize,
    pinned: AtomicUsize,
    requests: AtomicU64,
    conn_seq: AtomicU64,
    /// Requests by type: `Query`, `Prepare`, `Execute`, everything else
    /// (control traffic: pings, stats, transaction brackets, goodbyes).
    requests_query: AtomicU64,
    requests_prepare: AtomicU64,
    requests_execute: AtomicU64,
    requests_control: AtomicU64,
    /// Frame payload bytes received from / sent to clients (framing
    /// overhead excluded).
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    /// Broken frames and malformed messages rejected by the total
    /// decoder.
    frame_errors: AtomicU64,
    /// Duplicate handles of every live connection's stream, so shutdown
    /// can force blocked reads to return.
    open_streams: Mutex<HashMap<u64, TcpStream>>,
}

impl ServerShared {
    fn stats(&self) -> ServerStats {
        let plan = self.db.plan_cache_stats();
        ServerStats {
            version: self.db.version(),
            connections: self.connections.load(Ordering::Relaxed) as u32,
            pinned: self.pinned.load(Ordering::Relaxed) as u32,
            requests: self.requests.load(Ordering::Relaxed),
            plan_hits: plan.hits,
            plan_misses: plan.misses,
            plan_invalidations: plan.invalidations,
            plan_evictions: plan.evictions,
        }
    }

    /// The full metrics page: the database's own exposition plus the
    /// server-level instruments appended, so one request observes every
    /// layer.
    fn metrics(&self) -> Response {
        use cypher::metrics::{fmt_counter, fmt_gauge};
        let snap = self.db.metrics_snapshot();
        let mut text = snap.text;
        fmt_gauge(
            &mut text,
            "cypher_server_connections",
            "connections currently served",
            self.connections.load(Ordering::Relaxed) as i64,
        );
        fmt_gauge(
            &mut text,
            "cypher_server_pinned_connections",
            "connections inside a pinned read transaction",
            self.pinned.load(Ordering::Relaxed) as i64,
        );
        fmt_counter(
            &mut text,
            "cypher_server_requests_total",
            "requests answered over the server's lifetime",
            self.requests.load(Ordering::Relaxed),
        );
        fmt_counter(
            &mut text,
            "cypher_server_requests_query_total",
            "Query requests",
            self.requests_query.load(Ordering::Relaxed),
        );
        fmt_counter(
            &mut text,
            "cypher_server_requests_prepare_total",
            "Prepare requests",
            self.requests_prepare.load(Ordering::Relaxed),
        );
        fmt_counter(
            &mut text,
            "cypher_server_requests_execute_total",
            "Execute requests",
            self.requests_execute.load(Ordering::Relaxed),
        );
        fmt_counter(
            &mut text,
            "cypher_server_requests_control_total",
            "control requests (ping/stats/metrics/transactions/goodbye)",
            self.requests_control.load(Ordering::Relaxed),
        );
        fmt_counter(
            &mut text,
            "cypher_server_bytes_in_total",
            "request payload bytes received",
            self.bytes_in.load(Ordering::Relaxed),
        );
        fmt_counter(
            &mut text,
            "cypher_server_bytes_out_total",
            "response payload bytes sent",
            self.bytes_out.load(Ordering::Relaxed),
        );
        fmt_counter(
            &mut text,
            "cypher_server_frame_errors_total",
            "broken frames and malformed messages rejected",
            self.frame_errors.load(Ordering::Relaxed),
        );
        Response::Metrics {
            uptime_ms: snap.uptime_ms,
            version: snap.version,
            wal_generation: snap.wal_generation,
            text,
        }
    }
}

/// A running TCP server; dropping the handle does **not** stop it — call
/// [`Server::shutdown`] (tests) or [`Server::run`] (the binary).
pub struct Server {
    shared: Arc<ServerShared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `listen` (e.g. `"127.0.0.1:0"` for an ephemeral test port)
    /// and starts accepting connections against `db`.
    pub fn bind(db: Database, listen: &str, cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(listen)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(ServerShared {
            db,
            cfg,
            stop: AtomicBool::new(false),
            connections: AtomicUsize::new(0),
            pinned: AtomicUsize::new(0),
            requests: AtomicU64::new(0),
            conn_seq: AtomicU64::new(0),
            requests_query: AtomicU64::new(0),
            requests_prepare: AtomicU64::new(0),
            requests_execute: AtomicU64::new(0),
            requests_control: AtomicU64::new(0),
            bytes_in: AtomicU64::new(0),
            bytes_out: AtomicU64::new(0),
            frame_errors: AtomicU64::new(0),
            open_streams: Mutex::new(HashMap::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("cypher-accept".to_string())
            .spawn(move || accept_loop(accept_shared, listener))?;
        Ok(Server {
            shared,
            addr,
            accept: Some(accept),
        })
    }

    /// The bound address (resolves the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The database this server fronts (shared — in-process sessions and
    /// remote connections see the same versions and plan cache).
    pub fn db(&self) -> &Database {
        &self.shared.db
    }

    /// Connections currently served.
    pub fn active_connections(&self) -> usize {
        self.shared.connections.load(Ordering::Relaxed)
    }

    /// Connections currently inside a pinned read transaction.
    pub fn pinned_connections(&self) -> usize {
        self.shared.pinned.load(Ordering::Relaxed)
    }

    /// Requests answered over the server's lifetime.
    pub fn requests_served(&self) -> u64 {
        self.shared.requests.load(Ordering::Relaxed)
    }

    /// The same counters a remote `Stats` request returns.
    pub fn stats(&self) -> ServerStats {
        self.shared.stats()
    }

    /// Serves until the accept loop exits (it never does on its own —
    /// this is the binary's "run forever").
    pub fn run(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }

    /// Stops accepting, force-closes every live connection (their
    /// sessions — and pinned versions — are released by the connection
    /// threads' cleanup), and returns the database handle.
    pub fn shutdown(mut self) -> Database {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // Force blocked per-connection reads to return.
        for (_, s) in self
            .shared
            .open_streams
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
        {
            let _ = s.shutdown(Shutdown::Both);
        }
        // Wait for the connection threads' cleanup to run.
        while self.shared.connections.load(Ordering::Relaxed) > 0 {
            std::thread::yield_now();
        }
        // The accept loop and all connections are gone: this handle
        // holds the last strong reference besides ours.
        let shared = Arc::clone(&self.shared);
        drop(self);
        match Arc::try_unwrap(shared) {
            Ok(s) => s.db,
            Err(_) => unreachable!("all server threads have exited"),
        }
    }
}

fn accept_loop(shared: Arc<ServerShared>, listener: TcpListener) {
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => {
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        // Over-cap connections are refused politely — but never on the
        // accept thread, where a slow client could stall every accept.
        if shared.connections.load(Ordering::Relaxed) >= shared.cfg.max_connections {
            let _ = std::thread::Builder::new()
                .name("cypher-conn-refuse".to_string())
                .spawn(move || refuse_connection(stream));
            continue;
        }
        shared.connections.fetch_add(1, Ordering::Relaxed);
        let conn_id = shared.conn_seq.fetch_add(1, Ordering::Relaxed);
        if let Ok(dup) = stream.try_clone() {
            shared
                .open_streams
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .insert(conn_id, dup);
        }
        let conn_shared = Arc::clone(&shared);
        let spawned = std::thread::Builder::new()
            .name(format!("cypher-conn-{conn_id}"))
            .spawn(move || serve_connection(conn_shared, stream, conn_id));
        if spawned.is_err() {
            // Could not spawn: roll the registration back.
            shared.connections.fetch_sub(1, Ordering::Relaxed);
            shared
                .open_streams
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .remove(&conn_id);
        }
    }
}

fn refuse_connection(mut stream: TcpStream) {
    if server_handshake(&mut stream).is_ok() {
        let resp = Response::Error {
            code: ErrorCode::Limit,
            message: "connection limit reached".to_string(),
        };
        let _ = write_frame(&mut stream, &resp.encode());
        let _ = stream.flush();
    }
}

/// Everything one connection owns: its session, its prepared-statement
/// registry, and whether it currently holds a read-transaction pin
/// (mirrored into the server-wide gauge).
struct ConnState {
    session: Session,
    statements: HashMap<u32, Arc<str>>,
    next_statement: u32,
    pinned: bool,
    /// Connection id and per-connection request sequence, combined into
    /// the trace id `(conn_id << 32) | req_seq` stamped on every
    /// statement this connection runs — the same id the slow-query log
    /// and the WAL seal witness report, so one grep correlates a wire
    /// request with its durability record.
    conn_id: u64,
    req_seq: u64,
}

/// Gauge/registry cleanup that must run however the connection ends —
/// clean `Goodbye`, peer reset, handshake garbage, or a bug in the serve
/// loop itself.
struct ConnGuard<'a> {
    shared: &'a ServerShared,
    conn_id: u64,
    state: Option<ConnState>,
}

impl Drop for ConnGuard<'_> {
    fn drop(&mut self) {
        // Dropping the state drops the Session, which releases any
        // pinned snapshot version.
        if let Some(state) = self.state.take() {
            if state.pinned {
                self.shared.pinned.fetch_sub(1, Ordering::Relaxed);
            }
        }
        self.shared
            .open_streams
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&self.conn_id);
        self.shared.connections.fetch_sub(1, Ordering::Relaxed);
    }
}

fn serve_connection(shared: Arc<ServerShared>, mut stream: TcpStream, conn_id: u64) {
    let mut guard = ConnGuard {
        shared: &shared,
        conn_id,
        state: None,
    };
    let _ = stream.set_nodelay(true);
    if server_handshake(&mut stream).is_err() {
        return; // wrong protocol: drop without answering
    }
    let reader_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = BufReader::new(reader_stream);
    let mut writer = BufWriter::new(stream);
    guard.state = Some(ConnState {
        session: shared.db.session(),
        statements: HashMap::new(),
        next_statement: 1,
        pinned: false,
        conn_id,
        req_seq: 0,
    });
    let state = guard.state.as_mut().expect("state was just installed");
    loop {
        let payload = match read_exact_frame(&mut reader, shared.cfg.max_frame_bytes) {
            Ok(p) => p,
            Err(WireError::Io(_)) => return, // peer gone (abrupt or EOF)
            Err(e) => {
                // Framing can no longer be trusted: answer once (best
                // effort) and drop the connection.
                shared.frame_errors.fetch_add(1, Ordering::Relaxed);
                let resp = Response::Error {
                    code: ErrorCode::Protocol,
                    message: e.to_string(),
                };
                let _ = write_frame(&mut writer, &resp.encode());
                let _ = writer.flush();
                return;
            }
        };
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        shared.requests.fetch_add(1, Ordering::Relaxed);
        shared
            .bytes_in
            .fetch_add(payload.len() as u64, Ordering::Relaxed);
        state.req_seq += 1;
        let (resp, goodbye) = match Request::decode(&payload) {
            Err(e) => {
                // The frame was intact (length + CRC), only the message
                // inside was malformed: answer and keep serving.
                shared.frame_errors.fetch_add(1, Ordering::Relaxed);
                (
                    Response::Error {
                        code: ErrorCode::Protocol,
                        message: e.to_string(),
                    },
                    false,
                )
            }
            Ok(Request::Subscribe { name }) => {
                // Mode switch: this connection stops answering requests
                // and becomes a push stream of the view's change frames.
                shared.requests_control.fetch_add(1, Ordering::Relaxed);
                match shared.db.subscribe(&name) {
                    Err(e) => (
                        Response::Error {
                            code: classify_error(&e),
                            message: e.to_string(),
                        },
                        false,
                    ),
                    Ok(sub) => {
                        let encoded = Response::Subscribed.encode();
                        shared
                            .bytes_out
                            .fetch_add(encoded.len() as u64, Ordering::Relaxed);
                        if write_frame(&mut writer, &encoded).is_err() || writer.flush().is_err() {
                            return;
                        }
                        stream_view_changes(&shared, &mut writer, sub);
                        return;
                    }
                }
            }
            Ok(req) => {
                let goodbye = matches!(req, Request::Goodbye);
                match &req {
                    Request::Query { .. } => &shared.requests_query,
                    Request::Prepare { .. } => &shared.requests_prepare,
                    Request::Execute { .. } => &shared.requests_execute,
                    _ => &shared.requests_control,
                }
                .fetch_add(1, Ordering::Relaxed);
                let resp = catch_unwind(AssertUnwindSafe(|| handle_request(&shared, state, req)))
                    .unwrap_or_else(|panic| Response::Error {
                        code: ErrorCode::Internal,
                        message: format!("request handler panicked: {}", panic_message(&panic)),
                    });
                (resp, goodbye)
            }
        };
        let encoded = resp.encode();
        shared
            .bytes_out
            .fetch_add(encoded.len() as u64, Ordering::Relaxed);
        if write_frame(&mut writer, &encoded).is_err() || writer.flush().is_err() {
            return;
        }
        if goodbye {
            return;
        }
    }
}

fn panic_message(panic: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn handle_request(shared: &ServerShared, state: &mut ConnState, req: Request) -> Response {
    match req {
        Request::Query { text, params } => run_statement(shared, state, &text, &params),
        Request::Prepare { text } => {
            if state.statements.len() >= shared.cfg.max_prepared {
                return Response::Error {
                    code: ErrorCode::Limit,
                    message: format!(
                        "connection holds {} prepared statements (the cap)",
                        state.statements.len()
                    ),
                };
            }
            // Parse now: a statement that cannot parse fails at PREPARE
            // time, and honest EXECUTEs never pay a parse-error path.
            // (Planning stays lazy — it depends on the statistics of the
            // snapshot each execution runs against.)
            if let Err(e) = cypher::parse_query(&text) {
                let e = Error::from(e);
                return Response::Error {
                    code: classify_error(&e),
                    message: e.to_string(),
                };
            }
            let id = state.next_statement;
            state.next_statement += 1;
            state.statements.insert(id, Arc::from(text.as_str()));
            Response::Prepared { id }
        }
        Request::Execute { id, params } => match state.statements.get(&id) {
            Some(text) => {
                let text = Arc::clone(text);
                run_statement(shared, state, &text, &params)
            }
            None => Response::Error {
                code: ErrorCode::UnknownStatement,
                message: format!("no prepared statement with id {id} on this connection"),
            },
        },
        Request::Deallocate { id } => match state.statements.remove(&id) {
            Some(_) => Response::Deallocated,
            None => Response::Error {
                code: ErrorCode::UnknownStatement,
                message: format!("no prepared statement with id {id} on this connection"),
            },
        },
        Request::BeginRead => {
            let version = state.session.begin_read();
            if !state.pinned {
                state.pinned = true;
                shared.pinned.fetch_add(1, Ordering::Relaxed);
            }
            Response::BeganRead { version }
        }
        Request::CommitRead => {
            state.session.commit();
            if state.pinned {
                state.pinned = false;
                shared.pinned.fetch_sub(1, Ordering::Relaxed);
            }
            Response::ReadCommitted
        }
        Request::Ping => Response::Pong,
        Request::Stats => Response::Stats(shared.stats()),
        Request::Metrics => shared.metrics(),
        Request::Goodbye => Response::Bye,
        Request::CreateView { name, query } => match shared.db.create_view(&name, &query) {
            Ok(version) => Response::ViewCreated { version },
            Err(e) => Response::Error {
                code: classify_error(&e),
                message: e.to_string(),
            },
        },
        Request::DropView { name } => match shared.db.drop_view(&name) {
            Ok(()) => Response::ViewDropped,
            Err(e) => Response::Error {
                code: classify_error(&e),
                message: e.to_string(),
            },
        },
        Request::ReadView { name } => match state.session.view_versioned(&name) {
            Ok((version, table)) => Response::ViewRows { version, table },
            Err(e) => Response::Error {
                code: classify_error(&e),
                message: e.to_string(),
            },
        },
        // Subscribe switches the connection into push mode, which owns
        // the writer — the serve loop intercepts it before dispatching
        // here. Reaching this arm means the loop's intercept is broken.
        Request::Subscribe { .. } => Response::Error {
            code: ErrorCode::Protocol,
            message: "Subscribe must be handled by the connection loop".to_string(),
        },
    }
}

/// The push half of a `Subscribe`d connection: forwards every change
/// frame until the view is dropped, the server stops, or the peer goes
/// away (detected at the next write). The 100 ms poll bounds how long a
/// stopping server waits on an idle stream.
fn stream_view_changes(
    shared: &ServerShared,
    writer: &mut BufWriter<TcpStream>,
    sub: ViewSubscription,
) {
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        match sub.poll(std::time::Duration::from_millis(100)) {
            SubscriptionPoll::Idle => {}
            SubscriptionPoll::Closed => return,
            SubscriptionPoll::Frame(c) => {
                let resp = Response::ViewChange {
                    name: c.name,
                    version: c.version,
                    added: c.added,
                    removed: c.removed,
                };
                let encoded = resp.encode();
                shared
                    .bytes_out
                    .fetch_add(encoded.len() as u64, Ordering::Relaxed);
                if write_frame(writer, &encoded).is_err() || writer.flush().is_err() {
                    return;
                }
            }
        }
    }
}

fn run_statement(
    shared: &ServerShared,
    state: &mut ConnState,
    text: &str,
    params: &Params,
) -> Response {
    let _ = shared;
    // Test hook for the catch_unwind path, inert without the
    // fault-injection env guard (mirrors Database::inject_fsync_failures).
    if text == "__CYPHER_TEST_PANIC__" && std::env::var_os("CYPHER_TEST_FAULTS").is_some() {
        panic!("injected test panic");
    }
    let trace = (state.conn_id << 32) | (state.req_seq & 0xffff_ffff);
    match state.session.query_traced(text, params, trace) {
        Ok(table) => Response::Rows {
            committed: state.session.last_commit_version(),
            table,
        },
        Err(e) => Response::Error {
            code: classify_error(&e),
            message: e.to_string(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_covers_every_error_shape() {
        let parse = Error::from(cypher::parse_query("MATCH (").unwrap_err());
        assert_eq!(classify_error(&parse), ErrorCode::Parse);
        let unavailable = Error::Unavailable("closed".to_string());
        assert_eq!(classify_error(&unavailable), ErrorCode::Unavailable);
    }

    #[test]
    fn server_config_env_ignores_garbage() {
        std::env::set_var("CYPHER_MAX_CONNS", "not-a-number");
        assert_eq!(ServerConfig::from_env().max_connections, 64);
        std::env::set_var("CYPHER_MAX_CONNS", "0");
        assert_eq!(ServerConfig::from_env().max_connections, 64);
        std::env::set_var("CYPHER_MAX_CONNS", "7");
        assert_eq!(ServerConfig::from_env().max_connections, 7);
        std::env::remove_var("CYPHER_MAX_CONNS");
    }
}
