//! The `cypher-server` binary: opens a database (durable when
//! `CYPHER_DATA_DIR` is set, in-memory otherwise), binds the address in
//! `CYPHER_LISTEN` (default `127.0.0.1:7474`), and serves the wire
//! protocol until killed. `CYPHER_MAX_CONNS` and
//! `CYPHER_MAX_FRAME_BYTES` bound each client's footprint.

use cypher::{Database, EngineConfig};
use cypher_server::{Server, ServerConfig};

fn main() {
    let listen = std::env::var("CYPHER_LISTEN").unwrap_or_else(|_| "127.0.0.1:7474".to_string());
    for issue in cypher::env_config_issues() {
        eprintln!("cypher-server: {issue}");
    }
    let engine_cfg = EngineConfig::default();
    let durable = engine_cfg
        .persistence
        .as_ref()
        .map(|p| format!("durable at {}", p.display()));
    let db = match Database::open_with(engine_cfg) {
        Ok(db) => db,
        Err(e) => {
            eprintln!("cypher-server: failed to open database: {e}");
            std::process::exit(1);
        }
    };
    let cfg = ServerConfig::from_env();
    let max_conns = cfg.max_connections;
    let server = match Server::bind(db, &listen, cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cypher-server: failed to bind {listen}: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "cypher-server listening on {} ({}, max {} connections)",
        server.local_addr(),
        durable.as_deref().unwrap_or("in-memory"),
        max_conns,
    );
    server.run();
}
