//! # cypher-client
//!
//! A small, dependency-free TCP client for `cypher-server`: it speaks
//! the [`cypher_wire`] protocol (handshake, length-framed CRC-checked
//! messages) over one blocking connection, and exposes the server's
//! request surface as typed methods — `query`, prepared statements
//! (`prepare`/`execute`/`deallocate`), pinned read transactions
//! (`begin_read`/`commit_read`), and the observability calls
//! (`ping`/`stats`).
//!
//! Results come back as the engine's own [`Table`], so client-side
//! assertions can use the same `ordered_eq`/`bag_eq`/`cell` helpers as
//! in-process tests — which is exactly how the differential harness
//! compares remote observations with the in-process `Session` oracle.

#![warn(missing_docs)]

use cypher_core::{Params, Table};
use cypher_wire::{
    client_handshake, read_exact_frame, write_frame, ErrorCode, Request, Response, ServerStats,
    WireError, DEFAULT_MAX_FRAME_BYTES,
};
use std::fmt;
use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Anything that can go wrong on a client call.
#[derive(Debug)]
pub enum ClientError {
    /// Transport- or codec-level failure (I/O, framing, CRC, decode).
    Wire(WireError),
    /// The server answered with a structured protocol error.
    Server {
        /// The machine-readable error class.
        code: ErrorCode,
        /// The engine's (or server's) human-readable message.
        message: String,
    },
    /// The server answered with a well-formed response of the wrong
    /// kind for the request (a server bug, not a transport fault).
    Unexpected(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "wire error: {e}"),
            ClientError::Server { code, message } => {
                write!(f, "server error ({code:?}): {message}")
            }
            ClientError::Unexpected(m) => write!(f, "unexpected response: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Wire(WireError::Io(e))
    }
}

impl ClientError {
    /// The server's error code, when this is a structured server error.
    pub fn code(&self) -> Option<ErrorCode> {
        match self {
            ClientError::Server { code, .. } => Some(*code),
            _ => None,
        }
    }
}

/// The full metrics page of a server, as returned by a `Metrics`
/// request: a few headline fields decoded for programmatic use, plus
/// the complete Prometheus-style text exposition.
#[derive(Debug, Clone)]
pub struct MetricsPage {
    /// Milliseconds since the served database was opened.
    pub uptime_ms: u64,
    /// The currently committed graph version.
    pub version: u64,
    /// The WAL generation (bumps on every compaction).
    pub wal_generation: u64,
    /// Every instrument of every layer — engine, commit pipeline,
    /// storage, sessions, server — rendered as `# HELP`/`# TYPE` +
    /// sample lines.
    pub text: String,
}

/// A successful statement execution: the result table plus the version
/// the statement committed at, if it wrote.
#[derive(Debug, Clone)]
pub struct Rows {
    /// `Some(version)` when the statement contained update clauses and
    /// committed; `None` for pure reads.
    pub committed: Option<u64>,
    /// The result rows, in the engine's own representation.
    pub table: Table,
}

/// One blocking connection to a `cypher-server`.
///
/// The connection owns a server-side session: prepared-statement ids
/// and pinned read transactions are scoped to it and released when it
/// drops (gracefully via [`Client::goodbye`] or abruptly).
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    max_frame_bytes: u32,
}

impl Client {
    /// Connects and performs the protocol handshake.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client, ClientError> {
        let mut stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        client_handshake(&mut stream)?;
        let reader_stream = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(reader_stream),
            writer: BufWriter::new(stream),
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
        })
    }

    /// Caps the response frames this client will accept (mirrors the
    /// server's own receive cap; enforced before allocation).
    pub fn with_max_frame_bytes(mut self, n: u32) -> Client {
        self.max_frame_bytes = n;
        self
    }

    fn request(&mut self, req: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.writer, &req.encode())?;
        self.writer.flush().map_err(WireError::Io)?;
        let payload = read_exact_frame(&mut self.reader, self.max_frame_bytes)?;
        Ok(Response::decode(&payload)?)
    }

    fn expect_rows(resp: Response) -> Result<Rows, ClientError> {
        match resp {
            Response::Rows { committed, table } => Ok(Rows { committed, table }),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Unexpected(format!(
                "wanted Rows, got {other:?}"
            ))),
        }
    }

    /// Executes one statement (read or update) in auto-commit mode.
    pub fn query(&mut self, text: &str, params: &Params) -> Result<Rows, ClientError> {
        let resp = self.request(&Request::Query {
            text: text.to_string(),
            params: params.clone(),
        })?;
        Self::expect_rows(resp)
    }

    /// Parses and registers a statement on the server, returning its
    /// connection-scoped id.
    pub fn prepare(&mut self, text: &str) -> Result<u32, ClientError> {
        match self.request(&Request::Prepare {
            text: text.to_string(),
        })? {
            Response::Prepared { id } => Ok(id),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Unexpected(format!(
                "wanted Prepared, got {other:?}"
            ))),
        }
    }

    /// Executes a prepared statement with a fresh parameter binding.
    pub fn execute(&mut self, id: u32, params: &Params) -> Result<Rows, ClientError> {
        let resp = self.request(&Request::Execute {
            id,
            params: params.clone(),
        })?;
        Self::expect_rows(resp)
    }

    /// Releases a prepared statement's server-side registration.
    pub fn deallocate(&mut self, id: u32) -> Result<(), ClientError> {
        match self.request(&Request::Deallocate { id })? {
            Response::Deallocated => Ok(()),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Unexpected(format!(
                "wanted Deallocated, got {other:?}"
            ))),
        }
    }

    /// Pins a read transaction: every following read sees the returned
    /// version until [`Client::commit_read`], regardless of concurrent
    /// writers.
    pub fn begin_read(&mut self) -> Result<u64, ClientError> {
        match self.request(&Request::BeginRead)? {
            Response::BeganRead { version } => Ok(version),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Unexpected(format!(
                "wanted BeganRead, got {other:?}"
            ))),
        }
    }

    /// Releases the pinned read transaction.
    pub fn commit_read(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::CommitRead)? {
            Response::ReadCommitted => Ok(()),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Unexpected(format!(
                "wanted ReadCommitted, got {other:?}"
            ))),
        }
    }

    /// Round-trip liveness check.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Ping)? {
            Response::Pong => Ok(()),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Unexpected(format!(
                "wanted Pong, got {other:?}"
            ))),
        }
    }

    /// Server-wide counters: connections, pinned sessions, requests,
    /// and the shared plan cache's hit/miss statistics.
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        match self.request(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Unexpected(format!(
                "wanted Stats, got {other:?}"
            ))),
        }
    }

    /// The server's full metrics page: headline fields plus the
    /// Prometheus-style text exposition covering every layer.
    pub fn metrics(&mut self) -> Result<MetricsPage, ClientError> {
        match self.request(&Request::Metrics)? {
            Response::Metrics {
                uptime_ms,
                version,
                wal_generation,
                text,
            } => Ok(MetricsPage {
                uptime_ms,
                version,
                wal_generation,
                text,
            }),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Unexpected(format!(
                "wanted Metrics, got {other:?}"
            ))),
        }
    }

    /// Registers a standing query under `name`: the server plans it
    /// once, materializes it at the current version (returned), and
    /// keeps it delta-maintained on every commit.
    pub fn create_view(&mut self, name: &str, query: &str) -> Result<u64, ClientError> {
        match self.request(&Request::CreateView {
            name: name.to_string(),
            query: query.to_string(),
        })? {
            Response::ViewCreated { version } => Ok(version),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Unexpected(format!(
                "wanted ViewCreated, got {other:?}"
            ))),
        }
    }

    /// Unregisters a standing query (server-wide — any connection's
    /// readers and subscribers see it end).
    pub fn drop_view(&mut self, name: &str) -> Result<(), ClientError> {
        match self.request(&Request::DropView {
            name: name.to_string(),
        })? {
            Response::ViewDropped => Ok(()),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Unexpected(format!(
                "wanted ViewDropped, got {other:?}"
            ))),
        }
    }

    /// Reads a view's maintained contents and the version they are
    /// exact at. Inside [`Client::begin_read`] the rows are the view as
    /// of the pinned version.
    pub fn read_view(&mut self, name: &str) -> Result<(u64, Table), ClientError> {
        match self.request(&Request::ReadView {
            name: name.to_string(),
        })? {
            Response::ViewRows { version, table } => Ok((version, table)),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Unexpected(format!(
                "wanted ViewRows, got {other:?}"
            ))),
        }
    }

    /// Turns this connection into a push stream of `name`'s change
    /// frames. Consumes the client: after `Subscribed`, the server
    /// answers no further requests on this connection.
    pub fn subscribe(mut self, name: &str) -> Result<Subscription, ClientError> {
        match self.request(&Request::Subscribe {
            name: name.to_string(),
        })? {
            Response::Subscribed => Ok(Subscription {
                reader: self.reader,
                max_frame_bytes: self.max_frame_bytes,
            }),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Unexpected(format!(
                "wanted Subscribed, got {other:?}"
            ))),
        }
    }

    /// Graceful close: tells the server this connection is done and
    /// waits for its acknowledgement before dropping the socket.
    pub fn goodbye(mut self) -> Result<(), ClientError> {
        match self.request(&Request::Goodbye)? {
            Response::Bye => Ok(()),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Unexpected(format!(
                "wanted Bye, got {other:?}"
            ))),
        }
    }
}

/// One pushed change frame of a subscribed view: the bag delta a
/// committed version produced. Replaying frames in `version` order
/// against the subscribe-time contents reproduces every published state.
#[derive(Debug, Clone)]
pub struct ViewChangeFrame {
    /// The subscribed view's name.
    pub name: String,
    /// The version whose commit produced this delta.
    pub version: u64,
    /// Rows present after this version that were not before.
    pub added: Table,
    /// Rows present before this version that are gone after.
    pub removed: Table,
}

/// The receive half of a [`Client::subscribe`]d connection.
///
/// Dropping it closes the socket; the server notices at its next push.
pub struct Subscription {
    reader: BufReader<TcpStream>,
    max_frame_bytes: u32,
}

impl Subscription {
    /// Blocks for the next change frame. `Ok(None)` means the stream
    /// ended cleanly (the view was dropped or the server stopped).
    pub fn next(&mut self) -> Result<Option<ViewChangeFrame>, ClientError> {
        self.reader
            .get_ref()
            .set_read_timeout(None)
            .map_err(WireError::Io)?;
        self.read_frame()
    }

    /// Blocks up to `timeout` for the next change frame; `Ok(None)` on
    /// timeout **or** clean end of stream (poll again to distinguish —
    /// a dead stream keeps answering `None` immediately). Pick a
    /// timeout comfortably above the server's push cadence: a timeout
    /// firing mid-frame tears the stream's framing.
    pub fn next_timeout(
        &mut self,
        timeout: std::time::Duration,
    ) -> Result<Option<ViewChangeFrame>, ClientError> {
        self.reader
            .get_ref()
            .set_read_timeout(Some(timeout))
            .map_err(WireError::Io)?;
        match self.read_frame() {
            Err(ClientError::Wire(WireError::Io(e)))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                Ok(None)
            }
            other => other,
        }
    }

    fn read_frame(&mut self) -> Result<Option<ViewChangeFrame>, ClientError> {
        let payload = match read_exact_frame(&mut self.reader, self.max_frame_bytes) {
            Ok(p) => p,
            Err(WireError::Io(e)) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                return Ok(None)
            }
            Err(e) => return Err(e.into()),
        };
        match Response::decode(&payload)? {
            Response::ViewChange {
                name,
                version,
                added,
                removed,
            } => Ok(Some(ViewChangeFrame {
                name,
                version,
                added,
                removed,
            })),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Unexpected(format!(
                "wanted ViewChange, got {other:?}"
            ))),
        }
    }
}
