//! `cypher-load`: a saturation load generator for `cypher-server`.
//!
//! Seeds the server with `:Load {k, v}` nodes, then drives point reads
//! from N concurrent connections — each preparing
//! `MATCH (n:Load {k: $k}) RETURN n.v` once and executing it with fresh
//! parameter bindings — and reports per-connection-count throughput and
//! latency percentiles. Connection setup (TCP connect + handshake, and
//! the `PREPARE` round-trip) is timed and reported **separately** from
//! operation latency, so slow admission can't masquerade as slow reads.
//!
//! ```text
//! cypher-load [ADDR] [--conns N] [--ops N] [--rows N] [--seed N]
//!             [--no-prepare] [--metrics] [--subscribe]
//! ```
//!
//! `ADDR` defaults to `127.0.0.1:7474`; `--no-prepare` sends each point
//! read as a full `Query` instead of a prepared `Execute` (to measure
//! what prepared statements save); `--metrics` fetches and prints the
//! server's full metrics page after the run, so a load test doubles as
//! an exposition check.
//!
//! `--subscribe` switches to the standing-query drain mode: the tool
//! registers a maintained aggregate view over the seeded rows (if it
//! isn't registered already), attaches N subscriber connections, then
//! drives point `SET` updates from one writer connection while the
//! subscribers drain the pushed `ViewChange` frames. Reported: update
//! commits/s on the write side, and frames + delta rows drained per
//! subscriber. Note the updates mutate `v`, so a later point-read run
//! against the same durable server must reseed (the tool does this
//! automatically when the row count drifts).

use cypher_client::Client;
use cypher_core::Params;
use cypher_graph::Value;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const VIEW_NAME: &str = "load_totals";
const VIEW_QUERY: &str = "MATCH (n:Load) RETURN count(*) AS c, sum(n.v) AS s";

struct Args {
    addr: String,
    conns: usize,
    ops_per_conn: usize,
    rows: usize,
    seed: u64,
    prepare: bool,
    metrics: bool,
    subscribe: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7474".to_string(),
        conns: 4,
        ops_per_conn: 2000,
        rows: 1000,
        seed: 42,
        prepare: true,
        metrics: false,
        subscribe: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut take = |name: &str| -> Result<usize, String> {
            it.next()
                .ok_or_else(|| format!("{name} needs a value"))?
                .parse::<usize>()
                .map_err(|e| format!("{name}: {e}"))
        };
        match a.as_str() {
            "--conns" => args.conns = take("--conns")?.max(1),
            "--ops" => args.ops_per_conn = take("--ops")?.max(1),
            "--rows" => args.rows = take("--rows")?.max(1),
            "--seed" => args.seed = take("--seed")? as u64,
            "--no-prepare" => args.prepare = false,
            "--metrics" => args.metrics = true,
            "--subscribe" => args.subscribe = true,
            "--help" | "-h" => {
                return Err(
                    "usage: cypher-load [ADDR] [--conns N] [--ops N] [--rows N] [--seed N] \
                     [--no-prepare] [--metrics] [--subscribe]"
                        .to_string(),
                )
            }
            other if !other.starts_with('-') => args.addr = other.to_string(),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

/// SplitMix64: a tiny deterministic PRNG, enough to pick keys.
fn next_u64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

fn seed_rows(addr: &str, rows: usize) -> Result<(), Box<dyn std::error::Error>> {
    let mut admin = Client::connect(addr)?;
    let params = Params::new();
    let existing = admin.query("MATCH (n:Load) RETURN count(n) AS c", &params)?;
    if existing.table.cell(0, "c") == Some(&Value::int(rows as i64)) {
        // A prior `--subscribe` run mutates `v` in place, so a matching
        // count is not enough: every seeded row holds v = k², so the
        // whole set checks against one aggregate. Reseed on drift.
        let expected: i64 = (0..rows as i64).map(|i| i * i).sum();
        let sum = admin.query("MATCH (n:Load) RETURN sum(n.v) AS s", &params)?;
        if sum.table.cell(0, "s") == Some(&Value::int(expected)) {
            admin.goodbye()?;
            return Ok(());
        }
    }
    admin.query("MATCH (n:Load) DETACH DELETE n", &params)?;
    let mut k = 0usize;
    while k < rows {
        let batch = (rows - k).min(250);
        let stmt = (k..k + batch)
            .map(|i| format!("(:Load {{k: {i}, v: {}}})", (i * i) as i64))
            .collect::<Vec<_>>()
            .join(", ");
        admin.query(&format!("CREATE {stmt}"), &params)?;
        k += batch;
    }
    admin.goodbye()?;
    Ok(())
}

/// Per-connection timings: how long admission took vs how long the
/// operations themselves took.
struct WorkerReport {
    connect_ns: u64,
    prepare_ns: u64,
    op_latencies: Vec<u64>,
}

fn print_setup(label: &str, mut setup: Vec<u64>) {
    if setup.is_empty() {
        return;
    }
    setup.sort_unstable();
    println!(
        "cypher-load: {label} setup — p50 {}µs max {}µs over {} connections",
        setup[(setup.len() - 1) / 2] / 1_000,
        setup[setup.len() - 1] / 1_000,
        setup.len(),
    );
}

fn run_point_reads(args: &Args) -> Result<(), String> {
    let started = Instant::now();
    let workers: Vec<_> = (0..args.conns)
        .map(|w| {
            let addr = args.addr.clone();
            let ops = args.ops_per_conn;
            let rows = args.rows;
            let prepare = args.prepare;
            let mut rng = args.seed ^ (w as u64).wrapping_mul(0xA5A5_A5A5);
            std::thread::spawn(move || -> Result<WorkerReport, String> {
                let t_connect = Instant::now();
                let mut client = Client::connect(&addr).map_err(|e| e.to_string())?;
                let connect_ns = t_connect.elapsed().as_nanos() as u64;
                let text = "MATCH (n:Load {k: $k}) RETURN n.v AS v";
                let t_prepare = Instant::now();
                let stmt = if prepare {
                    Some(client.prepare(text).map_err(|e| e.to_string())?)
                } else {
                    None
                };
                let prepare_ns = t_prepare.elapsed().as_nanos() as u64;
                let mut op_latencies = Vec::with_capacity(ops);
                for _ in 0..ops {
                    let k = (next_u64(&mut rng) % rows as u64) as i64;
                    let mut params = Params::new();
                    params.insert("k".to_string(), Value::int(k));
                    let op_start = Instant::now();
                    let out = match stmt {
                        Some(id) => client.execute(id, &params),
                        None => client.query(text, &params),
                    }
                    .map_err(|e| e.to_string())?;
                    op_latencies.push(op_start.elapsed().as_nanos() as u64);
                    if out.table.cell(0, "v") != Some(&Value::int(k * k)) {
                        return Err(format!("wrong answer for k={k}: {:?}", out.table.rows()));
                    }
                }
                client.goodbye().map_err(|e| e.to_string())?;
                Ok(WorkerReport {
                    connect_ns,
                    prepare_ns,
                    op_latencies,
                })
            })
        })
        .collect();

    let mut all = Vec::with_capacity(args.conns * args.ops_per_conn);
    let mut connects = Vec::with_capacity(args.conns);
    let mut prepares = Vec::with_capacity(args.conns);
    for (w, h) in workers.into_iter().enumerate() {
        match h.join() {
            Ok(Ok(report)) => {
                all.extend(report.op_latencies);
                connects.push(report.connect_ns);
                if args.prepare {
                    prepares.push(report.prepare_ns);
                }
            }
            Ok(Err(msg)) => return Err(format!("worker {w} failed: {msg}")),
            Err(_) => return Err(format!("worker {w} panicked")),
        }
    }
    let wall = started.elapsed();
    print_setup("connect", connects);
    print_setup("prepare", prepares);
    all.sort_unstable();
    let pct = |p: f64| all[(((all.len() - 1) as f64) * p) as usize];
    let qps = all.len() as f64 / wall.as_secs_f64();
    println!(
        "cypher-load: conns={} ops={} mode={} qps={:.0} p50={}µs p99={}µs wall={:.2}s",
        args.conns,
        all.len(),
        if args.prepare { "prepared" } else { "query" },
        qps,
        pct(0.50) / 1_000,
        pct(0.99) / 1_000,
        wall.as_secs_f64(),
    );
    Ok(())
}

/// The `--subscribe` drain mode: N subscribers on a maintained view, one
/// writer churning the rows the view aggregates.
fn run_subscribe(args: &Args) -> Result<(), String> {
    // Register the standing query (idempotent: an existing registration
    // is fine as long as the view is readable).
    let mut admin = Client::connect(&args.addr).map_err(|e| e.to_string())?;
    if admin.create_view(VIEW_NAME, VIEW_QUERY).is_err() {
        admin
            .read_view(VIEW_NAME)
            .map_err(|e| format!("view {VIEW_NAME} neither creatable nor readable: {e}"))?;
    }

    let done = Arc::new(AtomicBool::new(false));
    let subscribers: Vec<_> = (0..args.conns)
        .map(|_| {
            let addr = args.addr.clone();
            let done = Arc::clone(&done);
            std::thread::spawn(move || -> Result<(u64, u64, u64, u64), String> {
                let t_connect = Instant::now();
                let client = Client::connect(&addr).map_err(|e| e.to_string())?;
                let mut sub = client.subscribe(VIEW_NAME).map_err(|e| e.to_string())?;
                let connect_ns = t_connect.elapsed().as_nanos() as u64;
                let (mut frames, mut added, mut removed) = (0u64, 0u64, 0u64);
                let mut idle = 0u32;
                loop {
                    match sub
                        .next_timeout(Duration::from_millis(250))
                        .map_err(|e| e.to_string())?
                    {
                        Some(frame) => {
                            idle = 0;
                            frames += 1;
                            added += frame.added.len() as u64;
                            removed += frame.removed.len() as u64;
                        }
                        // Idle: once the writer is done AND the stream
                        // has stayed quiet for two consecutive polls,
                        // stop — a single idle window can race the
                        // server's push loop delivering the last frame.
                        None => {
                            if done.load(Ordering::Acquire) {
                                idle += 1;
                                if idle >= 2 {
                                    break;
                                }
                            }
                        }
                    }
                }
                Ok((connect_ns, frames, added, removed))
            })
        })
        .collect();

    // The write side: point updates on random keys, one commit each.
    let mut writer = Client::connect(&args.addr).map_err(|e| e.to_string())?;
    let stmt = writer
        .prepare("MATCH (n:Load {k: $k}) SET n.v = n.v + 1")
        .map_err(|e| e.to_string())?;
    let total_ops = args.conns * args.ops_per_conn;
    let mut rng = args.seed;
    let t = Instant::now();
    for _ in 0..total_ops {
        let mut params = Params::new();
        params.insert(
            "k".to_string(),
            Value::int((next_u64(&mut rng) % args.rows as u64) as i64),
        );
        writer.execute(stmt, &params).map_err(|e| e.to_string())?;
    }
    let write_secs = t.elapsed().as_secs_f64();
    done.store(true, Ordering::Release);
    writer.goodbye().map_err(|e| e.to_string())?;

    let mut connects = Vec::new();
    let (mut frames, mut added, mut removed) = (0u64, 0u64, 0u64);
    for (s, h) in subscribers.into_iter().enumerate() {
        match h.join() {
            Ok(Ok((connect_ns, f, a, r))) => {
                connects.push(connect_ns);
                frames += f;
                added += a;
                removed += r;
            }
            Ok(Err(msg)) => return Err(format!("subscriber {s} failed: {msg}")),
            Err(_) => return Err(format!("subscriber {s} panicked")),
        }
    }
    print_setup("subscribe", connects);
    println!(
        "cypher-load: subscribe conns={} updates={} commits/s={:.0} \
         frames={frames} rows(+{added}/-{removed}) frames/s/conn={:.0}",
        args.conns,
        total_ops,
        total_ops as f64 / write_secs,
        frames as f64 / args.conns as f64 / write_secs,
    );
    if frames == 0 {
        return Err("no ViewChange frames drained — is the view maintained?".to_string());
    }
    Ok(())
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    if let Err(e) = seed_rows(&args.addr, args.rows) {
        eprintln!("cypher-load: seeding failed: {e}");
        std::process::exit(1);
    }

    let run = if args.subscribe {
        run_subscribe(&args)
    } else {
        run_point_reads(&args)
    };
    if let Err(msg) = run {
        eprintln!("cypher-load: {msg}");
        std::process::exit(1);
    }
    if args.metrics {
        match Client::connect(&args.addr).and_then(|mut c| {
            let page = c.metrics()?;
            let _ = c.goodbye();
            Ok(page)
        }) {
            Ok(page) => {
                println!(
                    "# server uptime_ms={} version={} wal_generation={}",
                    page.uptime_ms, page.version, page.wal_generation
                );
                print!("{}", page.text);
            }
            Err(e) => {
                eprintln!("cypher-load: metrics fetch failed: {e}");
                std::process::exit(1);
            }
        }
    }
}
