//! `cypher-load`: a saturation load generator for `cypher-server`.
//!
//! Seeds the server with `:Load {k, v}` nodes, then drives point reads
//! from N concurrent connections — each preparing
//! `MATCH (n:Load {k: $k}) RETURN n.v` once and executing it with fresh
//! parameter bindings — and reports per-connection-count throughput and
//! latency percentiles.
//!
//! ```text
//! cypher-load [ADDR] [--conns N] [--ops N] [--rows N] [--seed N] [--no-prepare] [--metrics]
//! ```
//!
//! `ADDR` defaults to `127.0.0.1:7474`; `--no-prepare` sends each point
//! read as a full `Query` instead of a prepared `Execute` (to measure
//! what prepared statements save); `--metrics` fetches and prints the
//! server's full metrics page after the run, so a load test doubles as
//! an exposition check.

use cypher_client::Client;
use cypher_core::Params;
use cypher_graph::Value;
use std::time::Instant;

struct Args {
    addr: String,
    conns: usize,
    ops_per_conn: usize,
    rows: usize,
    seed: u64,
    prepare: bool,
    metrics: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7474".to_string(),
        conns: 4,
        ops_per_conn: 2000,
        rows: 1000,
        seed: 42,
        prepare: true,
        metrics: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut take = |name: &str| -> Result<usize, String> {
            it.next()
                .ok_or_else(|| format!("{name} needs a value"))?
                .parse::<usize>()
                .map_err(|e| format!("{name}: {e}"))
        };
        match a.as_str() {
            "--conns" => args.conns = take("--conns")?.max(1),
            "--ops" => args.ops_per_conn = take("--ops")?.max(1),
            "--rows" => args.rows = take("--rows")?.max(1),
            "--seed" => args.seed = take("--seed")? as u64,
            "--no-prepare" => args.prepare = false,
            "--metrics" => args.metrics = true,
            "--help" | "-h" => {
                return Err(
                    "usage: cypher-load [ADDR] [--conns N] [--ops N] [--rows N] [--seed N] \
                     [--no-prepare] [--metrics]"
                        .to_string(),
                )
            }
            other if !other.starts_with('-') => args.addr = other.to_string(),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

/// SplitMix64: a tiny deterministic PRNG, enough to pick keys.
fn next_u64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

fn seed_rows(addr: &str, rows: usize) -> Result<(), Box<dyn std::error::Error>> {
    let mut admin = Client::connect(addr)?;
    let params = Params::new();
    let existing = admin.query("MATCH (n:Load) RETURN count(n) AS c", &params)?;
    if existing.table.cell(0, "c") == Some(&Value::int(rows as i64)) {
        admin.goodbye()?;
        return Ok(());
    }
    admin.query("MATCH (n:Load) DETACH DELETE n", &params)?;
    let mut k = 0usize;
    while k < rows {
        let batch = (rows - k).min(250);
        let stmt = (k..k + batch)
            .map(|i| format!("(:Load {{k: {i}, v: {}}})", (i * i) as i64))
            .collect::<Vec<_>>()
            .join(", ");
        admin.query(&format!("CREATE {stmt}"), &params)?;
        k += batch;
    }
    admin.goodbye()?;
    Ok(())
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    if let Err(e) = seed_rows(&args.addr, args.rows) {
        eprintln!("cypher-load: seeding failed: {e}");
        std::process::exit(1);
    }

    let started = Instant::now();
    let workers: Vec<_> = (0..args.conns)
        .map(|w| {
            let addr = args.addr.clone();
            let ops = args.ops_per_conn;
            let rows = args.rows;
            let prepare = args.prepare;
            let mut rng = args.seed ^ (w as u64).wrapping_mul(0xA5A5_A5A5);
            std::thread::spawn(move || -> Result<Vec<u64>, String> {
                let mut client = Client::connect(&addr).map_err(|e| e.to_string())?;
                let text = "MATCH (n:Load {k: $k}) RETURN n.v AS v";
                let stmt = if prepare {
                    Some(client.prepare(text).map_err(|e| e.to_string())?)
                } else {
                    None
                };
                let mut latencies = Vec::with_capacity(ops);
                for _ in 0..ops {
                    let k = (next_u64(&mut rng) % rows as u64) as i64;
                    let mut params = Params::new();
                    params.insert("k".to_string(), Value::int(k));
                    let op_start = Instant::now();
                    let out = match stmt {
                        Some(id) => client.execute(id, &params),
                        None => client.query(text, &params),
                    }
                    .map_err(|e| e.to_string())?;
                    latencies.push(op_start.elapsed().as_nanos() as u64);
                    if out.table.cell(0, "v") != Some(&Value::int(k * k)) {
                        return Err(format!("wrong answer for k={k}: {:?}", out.table.rows()));
                    }
                }
                client.goodbye().map_err(|e| e.to_string())?;
                Ok(latencies)
            })
        })
        .collect();

    let mut all = Vec::with_capacity(args.conns * args.ops_per_conn);
    for (w, h) in workers.into_iter().enumerate() {
        match h.join() {
            Ok(Ok(lat)) => all.extend(lat),
            Ok(Err(msg)) => {
                eprintln!("cypher-load: worker {w} failed: {msg}");
                std::process::exit(1);
            }
            Err(_) => {
                eprintln!("cypher-load: worker {w} panicked");
                std::process::exit(1);
            }
        }
    }
    let wall = started.elapsed();
    all.sort_unstable();
    let pct = |p: f64| all[(((all.len() - 1) as f64) * p) as usize];
    let qps = all.len() as f64 / wall.as_secs_f64();
    println!(
        "cypher-load: conns={} ops={} mode={} qps={:.0} p50={}µs p99={}µs wall={:.2}s",
        args.conns,
        all.len(),
        if args.prepare { "prepared" } else { "query" },
        qps,
        pct(0.50) / 1_000,
        pct(0.99) / 1_000,
        wall.as_secs_f64(),
    );
    if args.metrics {
        match Client::connect(&args.addr).and_then(|mut c| {
            let page = c.metrics()?;
            let _ = c.goodbye();
            Ok(page)
        }) {
            Ok(page) => {
                println!(
                    "# server uptime_ms={} version={} wal_generation={}",
                    page.uptime_ms, page.version, page.wal_generation
                );
                print!("{}", page.text);
            }
            Err(e) => {
                eprintln!("cypher-load: metrics fetch failed: {e}");
                std::process::exit(1);
            }
        }
    }
}
