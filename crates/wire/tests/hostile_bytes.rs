//! Decoder totality: no byte sequence — truncated, bit-flipped, or
//! random — may panic the wire decoders or make them allocate beyond
//! the declared caps. This is the storage codec's hostile-bytes
//! discipline ported to the wire layer, proven over **every** message
//! type in the protocol.

use cypher_core::Params;
use cypher_core::{Record, Schema, Table};
use cypher_graph::Value;
use cypher_wire::{
    read_exact_frame, write_frame, ErrorCode, Request, Response, ServerStats,
    DEFAULT_MAX_FRAME_BYTES,
};
use std::io::Cursor;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

fn sample_params() -> Params {
    let mut p = Params::new();
    p.insert("k".to_string(), Value::int(-7));
    p.insert("name".to_string(), Value::from("Nils"));
    p.insert(
        "list".to_string(),
        Value::List(vec![Value::int(1), Value::Bool(true), Value::Null]),
    );
    p
}

fn sample_table() -> Table {
    let mut t = Table::empty(Schema::new(vec!["a".to_string(), "b".to_string()]));
    t.push(Record::new(vec![Value::int(1), Value::from("x")]));
    t.push(Record::new(vec![Value::Float(f64::NAN), Value::Null]));
    t
}

/// One exemplar per request tag (params where the tag carries them).
fn every_request() -> Vec<Request> {
    vec![
        Request::Query {
            text: "MATCH (n:Load {k: $k}) RETURN n.v".to_string(),
            params: sample_params(),
        },
        Request::Prepare {
            text: "RETURN $name AS who".to_string(),
        },
        Request::Execute {
            id: 3,
            params: sample_params(),
        },
        Request::Deallocate { id: 3 },
        Request::BeginRead,
        Request::CommitRead,
        Request::Ping,
        Request::Stats,
        Request::Goodbye,
    ]
}

/// One exemplar per response tag.
fn every_response() -> Vec<Response> {
    vec![
        Response::Rows {
            committed: Some(17),
            table: sample_table(),
        },
        Response::Rows {
            committed: None,
            table: Table::empty(Schema::new(vec![])),
        },
        Response::Error {
            code: ErrorCode::Eval,
            message: "unknown variable".to_string(),
        },
        Response::Prepared { id: 9 },
        Response::Deallocated,
        Response::BeganRead { version: 41 },
        Response::ReadCommitted,
        Response::Pong,
        Response::Stats(ServerStats {
            version: 5,
            connections: 2,
            pinned: 1,
            requests: 99,
            plan_hits: 10,
            plan_misses: 3,
            plan_invalidations: 1,
            plan_evictions: 0,
        }),
        Response::Bye,
    ]
}

/// Every truncation of every message type must decode to an error —
/// never a panic, never a short success.
#[test]
fn truncation_sweep_over_every_message_type() {
    for req in every_request() {
        let bytes = req.encode();
        for cut in 0..bytes.len() {
            assert!(
                Request::decode(&bytes[..cut]).is_err(),
                "truncated request at {cut}/{} decoded: {req:?}",
                bytes.len()
            );
        }
        assert!(Request::decode(&bytes).is_ok(), "full request must decode");
    }
    for resp in every_response() {
        let bytes = resp.encode();
        for cut in 0..bytes.len() {
            assert!(
                Response::decode(&bytes[..cut]).is_err(),
                "truncated response at {cut}/{} decoded: {resp:?}",
                bytes.len()
            );
        }
        assert!(
            Response::decode(&bytes).is_ok(),
            "full response must decode"
        );
    }
}

/// Every single-byte corruption of every message type either decodes to
/// a value that re-encodes cleanly, or errors — it never panics. Swept
/// with several flip patterns per position.
#[test]
fn byte_flip_sweep_over_every_message_type() {
    let patterns: [u8; 4] = [0xFF, 0x80, 0x01, 0x55];
    for req in every_request() {
        let bytes = req.encode();
        for i in 0..bytes.len() {
            for pat in patterns {
                let mut mutated = bytes.clone();
                mutated[i] ^= pat;
                if let Ok(decoded) = Request::decode(&mutated) {
                    let _ = decoded.encode(); // must stay total
                }
            }
        }
    }
    for resp in every_response() {
        let bytes = resp.encode();
        for i in 0..bytes.len() {
            for pat in patterns {
                let mut mutated = bytes.clone();
                mutated[i] ^= pat;
                if let Ok(decoded) = Response::decode(&mutated) {
                    let _ = decoded.encode();
                }
            }
        }
    }
}

/// Random byte blobs: decoding must stay total, and claimed element
/// counts can never drive allocation past the input's own size class.
#[test]
fn random_blob_sweep_is_total() {
    let mut state = 0xD15EA5Eu64;
    for round in 0..2000 {
        let len = (splitmix(&mut state) % 128) as usize;
        let mut blob: Vec<u8> = (0..len).map(|_| splitmix(&mut state) as u8).collect();
        let _ = Request::decode(&blob);
        let _ = Response::decode(&blob);
        // Bias toward valid tags so the sweep reaches the body decoders.
        if !blob.is_empty() {
            blob[0] = 1 + (round % 9) as u8;
            let _ = Request::decode(&blob);
            blob[0] = 1 + (round % 10) as u8;
            let _ = Response::decode(&blob);
        }
    }
}

/// Frame-level hostility through the reader: hostile length prefixes
/// are rejected **before** any allocation, torn frames are I/O errors,
/// flipped payload bits are CRC errors.
#[test]
fn frame_reader_rejects_hostile_prefixes_tears_and_flips() {
    // A frame claiming u32::MAX bytes backed by 16 real ones.
    let mut hostile = vec![0xFF, 0xFF, 0xFF, 0xFF];
    hostile.extend_from_slice(&[0xAA; 16]);
    match read_exact_frame(&mut Cursor::new(&hostile), DEFAULT_MAX_FRAME_BYTES) {
        Err(e) => assert!(
            e.to_string().contains("frame"),
            "hostile prefix should be named: {e}"
        ),
        Ok(_) => panic!("4 GiB claim must be rejected before allocation"),
    }

    // A healthy frame, then every tear and every payload bit-flip.
    let mut healthy = Vec::new();
    write_frame(&mut healthy, &Request::Ping.encode()).unwrap();
    for cut in 0..healthy.len() {
        assert!(
            read_exact_frame(&mut Cursor::new(&healthy[..cut]), DEFAULT_MAX_FRAME_BYTES).is_err(),
            "torn frame at {cut} must error"
        );
    }
    for i in 0..healthy.len() {
        let mut mutated = healthy.clone();
        mutated[i] ^= 0x01;
        // Any single-bit flip changes the length, the payload, or the
        // CRC — all three must fail verification (or claim a length the
        // buffer cannot back).
        assert!(
            read_exact_frame(&mut Cursor::new(&mutated), DEFAULT_MAX_FRAME_BYTES).is_err(),
            "bit flip at {i} slipped through the CRC"
        );
    }
    let ok = read_exact_frame(&mut Cursor::new(&healthy), DEFAULT_MAX_FRAME_BYTES).unwrap();
    assert_eq!(ok, Request::Ping.encode());
}

/// The row-count claim in a `Rows` response cannot amplify allocation:
/// every row costs at least one marker byte on the wire, so a claimed
/// count beyond the payload size fails before any row materializes.
#[test]
fn row_count_claims_are_bounded_by_payload_size() {
    let resp = Response::Rows {
        committed: None,
        table: Table::empty(Schema::new(vec![])),
    };
    let mut bytes = resp.encode();
    // The trailing u32 row count in a zero-column, zero-row table.
    let n = bytes.len();
    bytes[n - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
    let err = Response::decode(&bytes).expect_err("row bomb must be rejected");
    assert!(
        err.to_string().contains("count"),
        "rejection should name the count: {err}"
    );
}
