//! The frame layer: handshake magic plus `len · payload · crc` framing
//! over any `Read`/`Write` pair.

use cypher_storage::codec::crc32;
use std::fmt;
use std::io::{Read, Write};

/// The 8-byte handshake each side sends on connect. The trailing `01` is
/// the protocol version: a server that reads any other `CYWIRE0x` magic
/// refuses the connection instead of misparsing frames.
pub const HANDSHAKE_MAGIC: &[u8; 8] = b"CYWIRE01";

/// Default cap on a frame's payload length (8 MiB). Both sides reject an
/// advertised length above their cap *before* allocating — the defense
/// against length-prefix allocation bombs.
pub const DEFAULT_MAX_FRAME_BYTES: u32 = 8 * 1024 * 1024;

/// Everything that can go wrong at the frame/message layer.
#[derive(Debug)]
pub enum WireError {
    /// The underlying socket failed (includes clean EOF mid-frame).
    Io(std::io::Error),
    /// The peer violated the protocol: bad handshake, CRC mismatch,
    /// unknown tag, truncated or trailing payload bytes.
    Protocol(String),
    /// The peer advertised a frame larger than the negotiated cap; the
    /// frame was rejected before any allocation.
    FrameTooLarge {
        /// The advertised payload length.
        len: u64,
        /// The refusing side's cap.
        max: u64,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire i/o: {e}"),
            WireError::Protocol(m) => write!(f, "wire protocol violation: {m}"),
            WireError::FrameTooLarge { len, max } => {
                write!(f, "frame length {len} exceeds the cap of {max} bytes")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

impl From<cypher_storage::StorageError> for WireError {
    fn from(e: cypher_storage::StorageError) -> Self {
        WireError::Protocol(e.to_string())
    }
}

/// Writes one frame: `len · payload · crc32(payload)`. The caller
/// flushes (frames are usually followed by a blocking read anyway).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), WireError> {
    let len = u32::try_from(payload.len()).map_err(|_| WireError::FrameTooLarge {
        len: payload.len() as u64,
        max: u32::MAX as u64,
    })?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.write_all(&crc32(payload).to_le_bytes())?;
    Ok(())
}

/// Reads one frame, enforcing the length cap **before** allocating the
/// payload buffer and verifying the trailing CRC after. A clean EOF at
/// the first length byte surfaces as `Io(UnexpectedEof)` — the caller
/// distinguishes "peer hung up between frames" from a torn frame by
/// whether any length bytes arrived.
pub fn read_exact_frame(r: &mut impl Read, max_len: u32) -> Result<Vec<u8>, WireError> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf);
    if len == 0 {
        return Err(WireError::Protocol("empty frame".to_string()));
    }
    if len > max_len {
        return Err(WireError::FrameTooLarge {
            len: len as u64,
            max: max_len as u64,
        });
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    let mut crc_buf = [0u8; 4];
    r.read_exact(&mut crc_buf)?;
    if u32::from_le_bytes(crc_buf) != crc32(&payload) {
        return Err(WireError::Protocol("frame crc mismatch".to_string()));
    }
    Ok(payload)
}

/// Client half of the handshake: send our magic, expect the server's.
pub fn client_handshake(stream: &mut (impl Read + Write)) -> Result<(), WireError> {
    stream.write_all(HANDSHAKE_MAGIC)?;
    stream.flush()?;
    let mut theirs = [0u8; 8];
    stream.read_exact(&mut theirs)?;
    if &theirs != HANDSHAKE_MAGIC {
        return Err(WireError::Protocol(format!(
            "server answered a different protocol ({theirs:02x?})"
        )));
    }
    Ok(())
}

/// Server half of the handshake: expect the client's magic, answer with
/// ours. A wrong magic is a protocol error — the server drops the
/// connection without answering (it cannot trust the peer's framing).
pub fn server_handshake(stream: &mut (impl Read + Write)) -> Result<(), WireError> {
    let mut theirs = [0u8; 8];
    stream.read_exact(&mut theirs)?;
    if &theirs != HANDSHAKE_MAGIC {
        return Err(WireError::Protocol(format!(
            "client spoke a different protocol ({theirs:02x?})"
        )));
    }
    stream.write_all(HANDSHAKE_MAGIC)?;
    stream.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(read_exact_frame(&mut r, 1024).unwrap(), b"hello");
    }

    #[test]
    fn hostile_length_prefix_rejected_before_allocation() {
        // A 4 GiB - 1 length prefix with nothing behind it: rejected from
        // the 4 header bytes alone.
        let mut r = Cursor::new(vec![0xFF, 0xFF, 0xFF, 0xFF]);
        match read_exact_frame(&mut r, DEFAULT_MAX_FRAME_BYTES) {
            Err(WireError::FrameTooLarge { len, max }) => {
                assert_eq!(len, u32::MAX as u64);
                assert_eq!(max, DEFAULT_MAX_FRAME_BYTES as u64);
            }
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_crc_detected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"payload").unwrap();
        let last = buf.len() - 1;
        buf[last] ^= 0x40;
        let mut r = Cursor::new(buf);
        assert!(matches!(
            read_exact_frame(&mut r, 1024),
            Err(WireError::Protocol(_))
        ));
    }

    #[test]
    fn truncated_frame_is_io_error_not_panic() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"payload").unwrap();
        for cut in 0..buf.len() {
            let mut r = Cursor::new(&buf[..cut]);
            assert!(
                read_exact_frame(&mut r, 1024).is_err(),
                "cut at {cut} must error"
            );
        }
    }

    #[test]
    fn handshake_rejects_wrong_magic() {
        struct Duplex {
            input: Cursor<Vec<u8>>,
            output: Vec<u8>,
        }
        impl Read for Duplex {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                self.input.read(buf)
            }
        }
        impl Write for Duplex {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.output.write(buf)
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut s = Duplex {
            input: Cursor::new(b"CYWAL002".to_vec()),
            output: Vec::new(),
        };
        assert!(matches!(
            server_handshake(&mut s),
            Err(WireError::Protocol(_))
        ));
        assert!(s.output.is_empty(), "no answer to a wrong-protocol peer");
    }
}
