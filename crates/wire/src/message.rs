//! Request/response messages and their binary encoding.
//!
//! Every payload begins with a one-byte tag; the body reuses the storage
//! codec's primitives (`put_str`/`put_value`, the bounds-checked
//! [`Reader`]) so values round-trip bit-exactly and decoding inherits the
//! codec's totality guarantees. One wire-specific addition: each result
//! row is prefixed with a `0x01` marker byte, so even a zero-column
//! table costs at least one payload byte per row — a hostile row count
//! can never make the decoder allocate more than a small constant
//! multiple of the bytes actually on the wire.

use crate::frame::WireError;
use cypher_core::{Params, Record, Schema, Table};
use cypher_storage::codec::{put_str, put_u32, put_u64, put_value, Reader};

/// Structured error classes a server reports to its clients. The numeric
/// value is the wire encoding and is stable across releases (new codes
/// append).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The query text did not parse.
    Parse = 1,
    /// Evaluation failed (type errors, delete-with-relationships,
    /// updating query inside a pinned read transaction, …).
    Eval = 2,
    /// The durable store failed; the statement may be partially durable.
    Storage = 3,
    /// The write path is unavailable (database closed, or read-only
    /// after a failed WAL commit). Reads still work.
    Unavailable = 4,
    /// The client violated the wire protocol (malformed frame or
    /// message). The server answers where framing is still trusted and
    /// drops the connection where it is not.
    Protocol = 5,
    /// `EXECUTE`/`DEALLOCATE` named a statement id this connection never
    /// prepared (or already deallocated).
    UnknownStatement = 6,
    /// A server-side resource cap: too many connections, or too many
    /// prepared statements on one connection.
    Limit = 7,
    /// The request handler panicked; the connection survives, the
    /// statement's effect on the database is whatever it had already
    /// committed.
    Internal = 8,
}

impl ErrorCode {
    /// Decodes a wire byte.
    pub fn from_u8(b: u8) -> Option<ErrorCode> {
        Some(match b {
            1 => ErrorCode::Parse,
            2 => ErrorCode::Eval,
            3 => ErrorCode::Storage,
            4 => ErrorCode::Unavailable,
            5 => ErrorCode::Protocol,
            6 => ErrorCode::UnknownStatement,
            7 => ErrorCode::Limit,
            8 => ErrorCode::Internal,
            _ => return None,
        })
    }
}

/// Snapshot of server-side counters, answered to a [`Request::Stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Latest published database version.
    pub version: u64,
    /// Connections currently served.
    pub connections: u32,
    /// Connections currently inside a pinned read transaction.
    pub pinned: u32,
    /// Requests answered over the server's lifetime.
    pub requests: u64,
    /// Plan-cache hits (shared across every connection's session).
    pub plan_hits: u64,
    /// Plan-cache misses.
    pub plan_misses: u64,
    /// Plan-cache invalidations (statistics drift re-plans).
    pub plan_invalidations: u64,
    /// Plan-cache LRU evictions.
    pub plan_evictions: u64,
}

/// A client→server message.
#[derive(Debug, Clone)]
pub enum Request {
    /// Parse, plan and execute one statement in auto-commit mode.
    Query {
        /// The Cypher text.
        text: String,
        /// Parameter bindings for `$name` expressions.
        params: Params,
    },
    /// Validate (parse) a statement and register it under a fresh id on
    /// this connection. Execution plans ride the server-wide plan cache.
    Prepare {
        /// The Cypher text to prepare.
        text: String,
    },
    /// Execute a prepared statement with fresh parameter bindings.
    Execute {
        /// Id returned by the `Prepared` response.
        id: u32,
        /// Parameter bindings for this execution.
        params: Params,
    },
    /// Forget a prepared statement.
    Deallocate {
        /// Id returned by the `Prepared` response.
        id: u32,
    },
    /// Pin the latest version: until `CommitRead`, every query of this
    /// connection reads that one frozen snapshot (repeatable reads).
    BeginRead,
    /// Release the pinned snapshot.
    CommitRead,
    /// Liveness probe.
    Ping,
    /// Ask for [`ServerStats`].
    Stats,
    /// Graceful goodbye; the server answers `Bye` and closes.
    Goodbye,
    /// Ask for the full metrics page ([`Response::Metrics`]): identity
    /// fields plus the Prometheus-style text exposition of every layer's
    /// instruments.
    Metrics,
    /// Register a standing query: plan it once, materialize it at the
    /// current version and keep it delta-maintained on every commit.
    CreateView {
        /// The view's name (server-wide namespace).
        name: String,
        /// The read-only Cypher statement the view materializes.
        query: String,
    },
    /// Unregister a standing query.
    DropView {
        /// Name passed to `CreateView`.
        name: String,
    },
    /// Read a view's maintained contents. Inside a pinned read
    /// transaction the rows are the view as of the pinned version.
    ReadView {
        /// Name passed to `CreateView`.
        name: String,
    },
    /// Turn this connection into a push stream: the server answers
    /// `Subscribed`, then sends one [`Response::ViewChange`] frame per
    /// committed version that changed the view's rows.
    Subscribe {
        /// Name passed to `CreateView`.
        name: String,
    },
}

/// A server→client message.
#[derive(Debug, Clone)]
pub enum Response {
    /// A statement's result table. `committed` carries the version id an
    /// updating statement committed at (`None` for reads and no-ops).
    Rows {
        /// Version the statement committed, if it committed one.
        committed: Option<u64>,
        /// The result rows.
        table: Table,
    },
    /// The statement (or the request itself) failed; the connection
    /// stays usable.
    Error {
        /// Structured error class.
        code: ErrorCode,
        /// Human-readable message (exactly the engine's error text for
        /// `Parse`/`Eval`/`Storage`/`Unavailable`).
        message: String,
    },
    /// Answer to `Prepare`.
    Prepared {
        /// The id `Execute` refers to, scoped to this connection.
        id: u32,
    },
    /// Answer to `Deallocate`.
    Deallocated,
    /// Answer to `BeginRead`.
    BeganRead {
        /// The pinned version id.
        version: u64,
    },
    /// Answer to `CommitRead`.
    ReadCommitted,
    /// Answer to `Ping`.
    Pong,
    /// Answer to `Stats`.
    Stats(ServerStats),
    /// Answer to `Goodbye`; the server closes after sending it.
    Bye,
    /// Answer to `Metrics`: headline identity fields as typed values,
    /// everything else as text exposition (new instruments append lines
    /// — no wire change needed).
    Metrics {
        /// Milliseconds since the served database handle was opened.
        uptime_ms: u64,
        /// Latest published database version.
        version: u64,
        /// Snapshot generation of the store (0 for in-memory).
        wal_generation: u64,
        /// Prometheus-style text exposition (database, executor,
        /// plan-cache, store and server-level instruments).
        text: String,
    },
    /// Answer to `CreateView`.
    ViewCreated {
        /// The version the view was materialized at.
        version: u64,
    },
    /// Answer to `DropView`.
    ViewDropped,
    /// Answer to `ReadView`.
    ViewRows {
        /// The published version the rows are exact at.
        version: u64,
        /// The view's maintained contents.
        table: Table,
    },
    /// Answer to `Subscribe`; [`Response::ViewChange`] frames follow.
    Subscribed,
    /// One committed version's effect on a subscribed view, pushed by
    /// the server (never answers a request directly). `added` and
    /// `removed` are bag deltas: replaying them in version order against
    /// the `Subscribe`-time contents reproduces every published state.
    ViewChange {
        /// The subscribed view's name.
        name: String,
        /// The version whose commit produced this delta.
        version: u64,
        /// Rows present after this version that were not before
        /// (with multiplicity).
        added: Table,
        /// Rows present before this version that are gone after
        /// (with multiplicity).
        removed: Table,
    },
}

fn put_params(buf: &mut Vec<u8>, params: &Params) {
    put_u32(buf, params.len() as u32);
    for (k, v) in params {
        put_str(buf, k);
        put_value(buf, v);
    }
}

/// Reads a `u32` collection count, validated against the bytes actually
/// remaining (every element of every collection on this wire costs at
/// least one byte) — the pre-allocation bomb check.
fn checked_count(r: &mut Reader<'_>) -> Result<usize, WireError> {
    let n = r.u32()? as usize;
    if n > r.remaining() {
        return Err(WireError::Protocol(
            "collection count exceeds the bytes present".to_string(),
        ));
    }
    Ok(n)
}

fn read_params(r: &mut Reader<'_>) -> Result<Params, WireError> {
    let n = checked_count(r)?;
    let mut params = Params::new();
    for _ in 0..n {
        let k = r.str()?;
        let v = r.value()?;
        params.insert(k.to_string(), v);
    }
    Ok(params)
}

fn put_table(buf: &mut Vec<u8>, committed: Option<u64>, table: &Table) {
    match committed {
        None => buf.push(0),
        Some(v) => {
            buf.push(1);
            put_u64(buf, v);
        }
    }
    put_bare_table(buf, table);
}

fn put_bare_table(buf: &mut Vec<u8>, table: &Table) {
    let names = table.schema().names();
    put_u32(buf, names.len() as u32);
    for n in names {
        put_str(buf, n);
    }
    put_u32(buf, table.len() as u32);
    for row in table.rows() {
        buf.push(1); // row marker: ≥ 1 byte per row, even with 0 columns
        for v in row.values() {
            put_value(buf, v);
        }
    }
}

fn read_table(r: &mut Reader<'_>) -> Result<(Option<u64>, Table), WireError> {
    let committed = match r.u8()? {
        0 => None,
        1 => Some(r.u64()?),
        _ => return Err(WireError::Protocol("invalid committed flag".to_string())),
    };
    Ok((committed, read_bare_table(r)?))
}

fn read_bare_table(r: &mut Reader<'_>) -> Result<Table, WireError> {
    let n_cols = checked_count(r)?;
    let mut names = Vec::with_capacity(n_cols);
    for _ in 0..n_cols {
        let n = r.str()?.to_string();
        if names.contains(&n) {
            // Schema::new asserts distinct names; a hostile peer must
            // get an error, not a panic.
            return Err(WireError::Protocol(format!("duplicate column name {n:?}")));
        }
        names.push(n);
    }
    let schema = Schema::new(names);
    let n_rows = checked_count(r)?;
    let mut table = Table::empty(schema);
    for _ in 0..n_rows {
        if r.u8()? != 1 {
            return Err(WireError::Protocol("invalid row marker".to_string()));
        }
        let mut values = Vec::with_capacity(n_cols);
        for _ in 0..n_cols {
            values.push(r.value()?);
        }
        table.push(Record::new(values));
    }
    Ok(table)
}

impl Request {
    /// Encodes this request as one frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Request::Query { text, params } => {
                buf.push(1);
                put_str(&mut buf, text);
                put_params(&mut buf, params);
            }
            Request::Prepare { text } => {
                buf.push(2);
                put_str(&mut buf, text);
            }
            Request::Execute { id, params } => {
                buf.push(3);
                put_u32(&mut buf, *id);
                put_params(&mut buf, params);
            }
            Request::Deallocate { id } => {
                buf.push(4);
                put_u32(&mut buf, *id);
            }
            Request::BeginRead => buf.push(5),
            Request::CommitRead => buf.push(6),
            Request::Ping => buf.push(7),
            Request::Stats => buf.push(8),
            Request::Goodbye => buf.push(9),
            Request::Metrics => buf.push(10),
            Request::CreateView { name, query } => {
                buf.push(11);
                put_str(&mut buf, name);
                put_str(&mut buf, query);
            }
            Request::DropView { name } => {
                buf.push(12);
                put_str(&mut buf, name);
            }
            Request::ReadView { name } => {
                buf.push(13);
                put_str(&mut buf, name);
            }
            Request::Subscribe { name } => {
                buf.push(14);
                put_str(&mut buf, name);
            }
        }
        buf
    }

    /// Decodes a frame payload. Total: hostile bytes produce
    /// [`WireError`], never a panic or unbounded allocation.
    pub fn decode(payload: &[u8]) -> Result<Request, WireError> {
        let mut r = Reader::new(payload, "request");
        let req = match r.u8()? {
            1 => Request::Query {
                text: r.str()?.to_string(),
                params: read_params(&mut r)?,
            },
            2 => Request::Prepare {
                text: r.str()?.to_string(),
            },
            3 => Request::Execute {
                id: r.u32()?,
                params: read_params(&mut r)?,
            },
            4 => Request::Deallocate { id: r.u32()? },
            5 => Request::BeginRead,
            6 => Request::CommitRead,
            7 => Request::Ping,
            8 => Request::Stats,
            9 => Request::Goodbye,
            10 => Request::Metrics,
            11 => Request::CreateView {
                name: r.str()?.to_string(),
                query: r.str()?.to_string(),
            },
            12 => Request::DropView {
                name: r.str()?.to_string(),
            },
            13 => Request::ReadView {
                name: r.str()?.to_string(),
            },
            14 => Request::Subscribe {
                name: r.str()?.to_string(),
            },
            t => return Err(WireError::Protocol(format!("unknown request tag {t}"))),
        };
        if !r.is_empty() {
            return Err(WireError::Protocol(format!(
                "{} trailing bytes after request",
                r.remaining()
            )));
        }
        Ok(req)
    }
}

impl Response {
    /// Encodes this response as one frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Response::Rows { committed, table } => {
                buf.push(1);
                put_table(&mut buf, *committed, table);
            }
            Response::Error { code, message } => {
                buf.push(2);
                buf.push(*code as u8);
                put_str(&mut buf, message);
            }
            Response::Prepared { id } => {
                buf.push(3);
                put_u32(&mut buf, *id);
            }
            Response::Deallocated => buf.push(4),
            Response::BeganRead { version } => {
                buf.push(5);
                put_u64(&mut buf, *version);
            }
            Response::ReadCommitted => buf.push(6),
            Response::Pong => buf.push(7),
            Response::Stats(s) => {
                buf.push(8);
                put_u64(&mut buf, s.version);
                put_u32(&mut buf, s.connections);
                put_u32(&mut buf, s.pinned);
                put_u64(&mut buf, s.requests);
                put_u64(&mut buf, s.plan_hits);
                put_u64(&mut buf, s.plan_misses);
                put_u64(&mut buf, s.plan_invalidations);
                put_u64(&mut buf, s.plan_evictions);
            }
            Response::Bye => buf.push(9),
            Response::Metrics {
                uptime_ms,
                version,
                wal_generation,
                text,
            } => {
                buf.push(10);
                put_u64(&mut buf, *uptime_ms);
                put_u64(&mut buf, *version);
                put_u64(&mut buf, *wal_generation);
                put_str(&mut buf, text);
            }
            Response::ViewCreated { version } => {
                buf.push(11);
                put_u64(&mut buf, *version);
            }
            Response::ViewDropped => buf.push(12),
            Response::ViewRows { version, table } => {
                buf.push(13);
                put_u64(&mut buf, *version);
                put_bare_table(&mut buf, table);
            }
            Response::Subscribed => buf.push(14),
            Response::ViewChange {
                name,
                version,
                added,
                removed,
            } => {
                buf.push(15);
                put_str(&mut buf, name);
                put_u64(&mut buf, *version);
                put_bare_table(&mut buf, added);
                put_bare_table(&mut buf, removed);
            }
        }
        buf
    }

    /// Decodes a frame payload. Total, like [`Request::decode`].
    pub fn decode(payload: &[u8]) -> Result<Response, WireError> {
        let mut r = Reader::new(payload, "response");
        let resp = match r.u8()? {
            1 => {
                let (committed, table) = read_table(&mut r)?;
                Response::Rows { committed, table }
            }
            2 => {
                let code_byte = r.u8()?;
                let code = ErrorCode::from_u8(code_byte).ok_or_else(|| {
                    WireError::Protocol(format!("unknown error code {code_byte}"))
                })?;
                Response::Error {
                    code,
                    message: r.str()?.to_string(),
                }
            }
            3 => Response::Prepared { id: r.u32()? },
            4 => Response::Deallocated,
            5 => Response::BeganRead { version: r.u64()? },
            6 => Response::ReadCommitted,
            7 => Response::Pong,
            8 => Response::Stats(ServerStats {
                version: r.u64()?,
                connections: r.u32()?,
                pinned: r.u32()?,
                requests: r.u64()?,
                plan_hits: r.u64()?,
                plan_misses: r.u64()?,
                plan_invalidations: r.u64()?,
                plan_evictions: r.u64()?,
            }),
            9 => Response::Bye,
            10 => Response::Metrics {
                uptime_ms: r.u64()?,
                version: r.u64()?,
                wal_generation: r.u64()?,
                text: r.str()?.to_string(),
            },
            11 => Response::ViewCreated { version: r.u64()? },
            12 => Response::ViewDropped,
            13 => Response::ViewRows {
                version: r.u64()?,
                table: read_bare_table(&mut r)?,
            },
            14 => Response::Subscribed,
            15 => Response::ViewChange {
                name: r.str()?.to_string(),
                version: r.u64()?,
                added: read_bare_table(&mut r)?,
                removed: read_bare_table(&mut r)?,
            },
            t => return Err(WireError::Protocol(format!("unknown response tag {t}"))),
        };
        if !r.is_empty() {
            return Err(WireError::Protocol(format!(
                "{} trailing bytes after response",
                r.remaining()
            )));
        }
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cypher_core::table_of;
    use cypher_graph::Value;

    #[test]
    fn request_roundtrip() {
        let mut params = Params::new();
        params.insert("v".to_string(), Value::int(42));
        params.insert("s".to_string(), Value::str("héllo"));
        let reqs = [
            Request::Query {
                text: "MATCH (n) RETURN n".to_string(),
                params: params.clone(),
            },
            Request::Prepare {
                text: "RETURN $v".to_string(),
            },
            Request::Execute { id: 7, params },
            Request::Deallocate { id: 7 },
            Request::BeginRead,
            Request::CommitRead,
            Request::Ping,
            Request::Stats,
            Request::Goodbye,
            Request::Metrics,
            Request::CreateView {
                name: "hot".to_string(),
                query: "MATCH (n) RETURN count(*) AS c".to_string(),
            },
            Request::DropView {
                name: "hot".to_string(),
            },
            Request::ReadView {
                name: "hot".to_string(),
            },
            Request::Subscribe {
                name: "hot".to_string(),
            },
        ];
        for req in &reqs {
            let bytes = req.encode();
            let back = Request::decode(&bytes).unwrap();
            assert_eq!(bytes, back.encode(), "stable re-encode for {req:?}");
        }
    }

    #[test]
    fn response_roundtrip() {
        let table = table_of(
            &["a", "b"],
            vec![
                vec![Value::int(1), Value::str("x")],
                vec![Value::Null, Value::float(f64::NAN)],
            ],
        );
        let resps = [
            Response::Rows {
                committed: Some(3),
                table,
            },
            Response::Error {
                code: ErrorCode::Parse,
                message: "unexpected token".to_string(),
            },
            Response::Prepared { id: 1 },
            Response::Deallocated,
            Response::BeganRead { version: 9 },
            Response::ReadCommitted,
            Response::Pong,
            Response::Stats(ServerStats {
                version: 5,
                connections: 2,
                pinned: 1,
                requests: 100,
                plan_hits: 50,
                plan_misses: 10,
                plan_invalidations: 1,
                plan_evictions: 0,
            }),
            Response::Bye,
            Response::Metrics {
                uptime_ms: 12_345,
                version: 7,
                wal_generation: 2,
                text: "# TYPE cypher_queries_read_total counter\n\
                       cypher_queries_read_total 3\n"
                    .to_string(),
            },
            Response::ViewCreated { version: 4 },
            Response::ViewDropped,
            Response::ViewRows {
                version: 4,
                table: table_of(&["c"], vec![vec![Value::int(2)]]),
            },
            Response::Subscribed,
            Response::ViewChange {
                name: "hot".to_string(),
                version: 5,
                added: table_of(&["c"], vec![vec![Value::int(3)]]),
                removed: table_of(&["c"], vec![vec![Value::int(2)]]),
            },
        ];
        for resp in &resps {
            let bytes = resp.encode();
            let back = Response::decode(&bytes).unwrap();
            assert_eq!(bytes, back.encode(), "stable re-encode for {resp:?}");
        }
    }

    #[test]
    fn zero_column_row_bomb_bounded() {
        // Claim a huge row count on a zero-column table: the count check
        // and the per-row marker byte cap allocation at the bytes
        // actually present.
        let mut buf = vec![1u8, 0]; // Rows, committed = None
        put_u32(&mut buf, 0); // 0 columns
        put_u32(&mut buf, 1_000_000); // 1M rows claimed...
        buf.push(1); // ...1 marker byte present
        assert!(Response::decode(&buf).is_err());
    }

    #[test]
    fn view_change_row_bomb_bounded() {
        // Same pre-allocation guarantee for the pushed-frame tables: a
        // hostile row count in the `removed` table is caught against the
        // bytes actually remaining.
        let mut buf = vec![15u8];
        put_str(&mut buf, "hot");
        put_u64(&mut buf, 1);
        put_u32(&mut buf, 0); // added: 0 columns
        put_u32(&mut buf, 0); // added: 0 rows
        put_u32(&mut buf, 0); // removed: 0 columns
        put_u32(&mut buf, 1_000_000); // removed: 1M rows claimed, 0 present
        assert!(matches!(
            Response::decode(&buf),
            Err(WireError::Protocol(_))
        ));
    }

    #[test]
    fn duplicate_columns_error_not_panic() {
        let mut buf = vec![1u8, 0];
        put_u32(&mut buf, 2);
        put_str(&mut buf, "a");
        put_str(&mut buf, "a");
        put_u32(&mut buf, 0);
        assert!(matches!(
            Response::decode(&buf),
            Err(WireError::Protocol(_))
        ));
    }
}
