//! # cypher-wire
//!
//! The hand-rolled binary wire protocol spoken between `cypher-server`
//! and `cypher-client`: a length-framed, CRC-32-checked request/response
//! exchange whose payloads reuse the [`cypher_storage`] codec for
//! [`Value`](cypher_graph::Value) trees, so everything a query can
//! return — including `NaN` payloads, nested lists/maps and temporal
//! values — round-trips bit-exactly over TCP.
//!
//! ## Layering
//!
//! ```text
//! handshake  := 8 magic bytes each way ("CYWIRE01"; last byte = version)
//! frame      := len:u32 LE · payload[len] · crc:u32 LE   (CRC-32/IEEE of payload)
//! payload    := one encoded Request (client→server) or Response (server→client)
//! ```
//!
//! ## Totality and bounded allocation
//!
//! Decoding is **total**: every read is bounds-checked, collection
//! counts are validated against the bytes actually present *before any
//! allocation*, strings are UTF-8-verified and value nesting is
//! depth-limited (all inherited from the storage codec), and the frame
//! layer rejects any advertised length above the negotiated cap before
//! allocating a single byte — a hostile 4 GiB length prefix costs the
//! server an 8-byte read and an error, not 4 GiB. Hostile input can
//! produce [`WireError`], never a panic or an allocation that is not
//! bounded by a small constant multiple of the frame cap.

#![warn(missing_docs)]

mod frame;
mod message;

pub use frame::{
    client_handshake, read_exact_frame, server_handshake, write_frame, WireError,
    DEFAULT_MAX_FRAME_BYTES, HANDSHAKE_MAGIC,
};
pub use message::{ErrorCode, Request, Response, ServerStats};
