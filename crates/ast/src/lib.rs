//! # cypher-ast
//!
//! The abstract syntax of Cypher, following the mathematical notation of
//! *Cypher: An Evolving Query Language for Property Graphs* (SIGMOD 2018):
//!
//! * **patterns** (Figure 3): node patterns `χ = (a, L, P)`, relationship
//!   patterns `ρ = (d, a, T, P, I)` and path patterns `χ₁ ρ₁ χ₂ ⋯ ρₙ₋₁ χₙ`,
//!   optionally named (`π/a`);
//! * **expressions, clauses and queries** (Figure 5), extended with the
//!   surface constructs described in Sections 2–3 and 6 of the paper
//!   (`ORDER BY` / `SKIP` / `LIMIT` / `DISTINCT`, updating clauses, `CASE`,
//!   list comprehensions, quantifiers, parameters, and the Cypher 10
//!   multiple-graph clauses).
//!
//! Names are plain strings at this level; the evaluators intern them against
//! a graph's token table when a query is bound.

#![warn(missing_docs)]

pub mod display;
pub mod expr;
pub mod pattern;
pub mod query;
pub mod visit;

pub use expr::{ArithOp, CmpOp, Expr, Literal, Quantifier};
pub use pattern::{Dir, NodePattern, PathPattern, RangeSpec, RelPattern};
pub use query::{Clause, Query, RemoveItem, Return, ReturnItem, SetItem, SingleQuery, SortItem};
