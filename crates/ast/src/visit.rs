//! Small analysis helpers over the AST, used by the evaluators and the
//! planner (e.g. to decide which pattern variables are already bound by the
//! driving table — the `free(π) − dom(u)` computation of Equation (1)).

use crate::expr::Expr;
use crate::pattern::PathPattern;

/// Collects every variable referenced by an expression, excluding variables
/// bound locally by list comprehensions and quantifiers.
pub fn expr_vars(e: &Expr, out: &mut Vec<String>) {
    match e {
        Expr::Var(a) => {
            if !out.contains(a) {
                out.push(a.clone());
            }
        }
        Expr::ListComprehension {
            var,
            list,
            filter,
            body,
        } => {
            expr_vars(list, out);
            let mut inner = Vec::new();
            if let Some(x) = filter {
                expr_vars(x, &mut inner);
            }
            if let Some(x) = body {
                expr_vars(x, &mut inner);
            }
            for v in inner {
                if v != *var && !out.contains(&v) {
                    out.push(v);
                }
            }
        }
        Expr::Quantified {
            var, list, pred, ..
        } => {
            expr_vars(list, out);
            let mut inner = Vec::new();
            expr_vars(pred, &mut inner);
            for v in inner {
                if v != *var && !out.contains(&v) {
                    out.push(v);
                }
            }
        }
        Expr::PatternComprehension {
            pattern,
            filter,
            body,
        } => {
            // Pattern variables are local to the comprehension; outer
            // references inside filter/body that collide are treated as
            // local for this conservative analysis.
            let locals = pattern_vars(pattern);
            let mut inner = Vec::new();
            if let Some(x) = filter {
                expr_vars(x, &mut inner);
            }
            expr_vars(body, &mut inner);
            for v in inner {
                if !locals.contains(&v) && !out.contains(&v) {
                    out.push(v);
                }
            }
        }
        Expr::PatternPredicate(p) => {
            // Pattern predicates reference outer variables by name.
            for v in pattern_vars(p) {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
            for np in p.node_patterns() {
                for (_, pe) in &np.props {
                    expr_vars(pe, out);
                }
            }
            for rp in p.rel_patterns() {
                for (_, pe) in &rp.props {
                    expr_vars(pe, out);
                }
            }
        }
        _ => {
            e.for_each_child(&mut |c| expr_vars(c, out));
        }
    }
}

/// All variables of a path pattern (identical to
/// [`PathPattern::free_vars`], re-exported here for symmetry).
pub fn pattern_vars(p: &PathPattern) -> Vec<String> {
    p.free_vars()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    #[test]
    fn collects_vars_once() {
        let e = Expr::And(
            Box::new(Expr::eq(Expr::var("x"), Expr::var("y"))),
            Box::new(Expr::eq(Expr::var("x"), Expr::int(1))),
        );
        let mut vars = Vec::new();
        expr_vars(&e, &mut vars);
        assert_eq!(vars, vec!["x", "y"]);
    }

    #[test]
    fn comprehension_var_is_local() {
        // [x IN xs WHERE x > y | x] references xs and y but binds x.
        let e = Expr::ListComprehension {
            var: "x".into(),
            list: Box::new(Expr::var("xs")),
            filter: Some(Box::new(Expr::Cmp(
                crate::expr::CmpOp::Gt,
                Box::new(Expr::var("x")),
                Box::new(Expr::var("y")),
            ))),
            body: Some(Box::new(Expr::var("x"))),
        };
        let mut vars = Vec::new();
        expr_vars(&e, &mut vars);
        assert_eq!(vars, vec!["xs", "y"]);
    }

    #[test]
    fn quantifier_var_is_local() {
        let e = Expr::Quantified {
            q: crate::expr::Quantifier::All,
            var: "x".into(),
            list: Box::new(Expr::var("xs")),
            pred: Box::new(Expr::eq(Expr::var("x"), Expr::var("z"))),
        };
        let mut vars = Vec::new();
        expr_vars(&e, &mut vars);
        assert_eq!(vars, vec!["xs", "z"]);
    }
}
