//! Expression abstract syntax (paper Figure 5, "expressions"), extended
//! with the surface constructs of Sections 2–3: arithmetic, `CASE`, list
//! comprehensions, quantifiers, pattern predicates (existential subqueries)
//! and parameters.

use crate::pattern::PathPattern;

/// A literal value occurring in query text.
#[derive(Clone, PartialEq, Debug)]
pub enum Literal {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer literal.
    Integer(i64),
    /// A float literal.
    Float(f64),
    /// A string literal.
    String(String),
}

/// Comparison operators (`inequalities` row of Figure 5).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Arithmetic operators (part of the base function set `F`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ArithOp {
    /// `+` (also string and list concatenation)
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `^`
    Pow,
}

/// Quantifier kinds over lists: `ALL`, `ANY`, `NONE`, `SINGLE`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Quantifier {
    /// Every element satisfies the predicate.
    All,
    /// At least one element satisfies it.
    Any,
    /// No element satisfies it.
    None,
    /// Exactly one element satisfies it.
    Single,
}

/// A Cypher expression.
#[derive(Clone, PartialEq, Debug)]
pub enum Expr {
    /// A literal `v ∈ V`.
    Lit(Literal),
    /// A name `a ∈ A`.
    Var(String),
    /// A query parameter `$name` (paper §2, "Pragmatic").
    Param(String),
    /// Property access `expr.k`.
    Prop(Box<Expr>, String),
    /// Map literal `{k₁: e₁, …}`.
    Map(Vec<(String, Expr)>),
    /// List literal `[e₁, …]`.
    List(Vec<Expr>),
    /// `e₁ IN e₂`.
    In(Box<Expr>, Box<Expr>),
    /// Subscript `e₁[e₂]`.
    Index(Box<Expr>, Box<Expr>),
    /// Slice `e[from..to]` with optional bounds.
    Slice(Box<Expr>, Option<Box<Expr>>, Option<Box<Expr>>),
    /// `e₁ STARTS WITH e₂`.
    StartsWith(Box<Expr>, Box<Expr>),
    /// `e₁ ENDS WITH e₂`.
    EndsWith(Box<Expr>, Box<Expr>),
    /// `e₁ CONTAINS e₂`.
    Contains(Box<Expr>, Box<Expr>),
    /// `e₁ OR e₂` (3-valued).
    Or(Box<Expr>, Box<Expr>),
    /// `e₁ AND e₂` (3-valued).
    And(Box<Expr>, Box<Expr>),
    /// `e₁ XOR e₂` (3-valued).
    Xor(Box<Expr>, Box<Expr>),
    /// `NOT e` (3-valued).
    Not(Box<Expr>),
    /// `e IS NULL`.
    IsNull(Box<Expr>),
    /// `e IS NOT NULL`.
    IsNotNull(Box<Expr>),
    /// A comparison.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// An arithmetic operation.
    Arith(ArithOp, Box<Expr>, Box<Expr>),
    /// Unary minus.
    Neg(Box<Expr>),
    /// A function application `f(e₁, …)`; `distinct` marks
    /// `f(DISTINCT e)` for aggregating functions.
    FnCall {
        /// The function name (lower-cased by the parser).
        name: String,
        /// Argument expressions.
        args: Vec<Expr>,
        /// `DISTINCT` flag for aggregation.
        distinct: bool,
    },
    /// `count(*)`.
    CountStar,
    /// A label predicate `e:L₁:L₂` in expression position (used in the
    /// paper's fraud query: `pInfo:SSN OR pInfo:PhoneNumber`).
    HasLabels(Box<Expr>, Vec<String>),
    /// `CASE` (both the simple and the searched form).
    Case {
        /// The scrutinee of a simple `CASE e WHEN …`; `None` for the
        /// searched form.
        input: Option<Box<Expr>>,
        /// `WHEN cond THEN value` arms.
        whens: Vec<(Expr, Expr)>,
        /// `ELSE` value (defaults to `null`).
        else_: Option<Box<Expr>>,
    },
    /// List comprehension `[x IN list WHERE pred | body]`.
    ListComprehension {
        /// The bound variable.
        var: String,
        /// The list expression.
        list: Box<Expr>,
        /// Optional filter.
        filter: Option<Box<Expr>>,
        /// Optional mapping body (identity if absent).
        body: Option<Box<Expr>>,
    },
    /// A quantified predicate `all(x IN list WHERE pred)` etc.
    Quantified {
        /// Which quantifier.
        q: Quantifier,
        /// The bound variable.
        var: String,
        /// The list expression.
        list: Box<Expr>,
        /// The predicate.
        pred: Box<Expr>,
    },
    /// An existential pattern predicate: a path pattern used as a boolean
    /// expression in `WHERE`, e.g. `WHERE (a)-[:KNOWS]->(b)` — the paper's
    /// "existential subqueries".
    PatternPredicate(Box<PathPattern>),
    /// A pattern comprehension `[(a)-[:X]->(b) WHERE pred | body]`: the
    /// list of `body` values over all matches of the pattern, in match
    /// order. Variables of the pattern not bound in the enclosing scope
    /// are local to the comprehension.
    PatternComprehension {
        /// The matched pattern.
        pattern: Box<PathPattern>,
        /// Optional filter over each match.
        filter: Option<Box<Expr>>,
        /// The projected value per match.
        body: Box<Expr>,
    },
}

impl Expr {
    /// Integer literal shorthand.
    pub fn int(i: i64) -> Expr {
        Expr::Lit(Literal::Integer(i))
    }

    /// String literal shorthand.
    pub fn str(s: impl Into<String>) -> Expr {
        Expr::Lit(Literal::String(s.into()))
    }

    /// Variable reference shorthand.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// `null` literal shorthand.
    pub fn null() -> Expr {
        Expr::Lit(Literal::Null)
    }

    /// Property access shorthand.
    pub fn prop(base: Expr, key: impl Into<String>) -> Expr {
        Expr::Prop(Box::new(base), key.into())
    }

    /// Equality comparison shorthand.
    pub fn eq(a: Expr, b: Expr) -> Expr {
        Expr::Cmp(CmpOp::Eq, Box::new(a), Box::new(b))
    }

    /// True iff the expression tree contains an aggregating function call
    /// (`count`, `sum`, …) not nested inside another aggregation. Used to
    /// split `WITH`/`RETURN` items into grouping keys and aggregates
    /// (paper §3: "non-aggregating expressions act as implicit grouping
    /// keys").
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::CountStar => true,
            Expr::FnCall { name, args, .. } => {
                is_aggregate_fn(name) || args.iter().any(Expr::contains_aggregate)
            }
            _ => {
                let mut found = false;
                self.for_each_child(&mut |c| {
                    if c.contains_aggregate() {
                        found = true;
                    }
                });
                found
            }
        }
    }

    /// Applies `f` to each direct child expression.
    pub fn for_each_child(&self, f: &mut dyn FnMut(&Expr)) {
        use Expr::*;
        match self {
            Lit(_) | Var(_) | Param(_) | CountStar | PatternPredicate(_) => {}
            PatternComprehension { filter, body, .. } => {
                if let Some(x) = filter {
                    f(x);
                }
                f(body);
            }
            Prop(e, _) | Not(e) | IsNull(e) | IsNotNull(e) | Neg(e) => f(e),
            Map(kvs) => kvs.iter().for_each(|(_, e)| f(e)),
            List(es) => es.iter().for_each(f),
            In(a, b)
            | Index(a, b)
            | StartsWith(a, b)
            | EndsWith(a, b)
            | Contains(a, b)
            | Or(a, b)
            | And(a, b)
            | Xor(a, b)
            | Cmp(_, a, b)
            | Arith(_, a, b) => {
                f(a);
                f(b);
            }
            Slice(e, lo, hi) => {
                f(e);
                if let Some(lo) = lo {
                    f(lo);
                }
                if let Some(hi) = hi {
                    f(hi);
                }
            }
            FnCall { args, .. } => args.iter().for_each(f),
            HasLabels(e, _) => f(e),
            Case {
                input,
                whens,
                else_,
            } => {
                if let Some(i) = input {
                    f(i);
                }
                for (w, t) in whens {
                    f(w);
                    f(t);
                }
                if let Some(e) = else_ {
                    f(e);
                }
            }
            ListComprehension {
                list, filter, body, ..
            } => {
                f(list);
                if let Some(x) = filter {
                    f(x);
                }
                if let Some(x) = body {
                    f(x);
                }
            }
            Quantified { list, pred, .. } => {
                f(list);
                f(pred);
            }
        }
    }
}

/// The aggregating functions of the implementation's base set `F`.
pub fn is_aggregate_fn(name: &str) -> bool {
    matches!(
        name,
        "count"
            | "sum"
            | "avg"
            | "min"
            | "max"
            | "collect"
            | "stdev"
            | "stdevp"
            | "percentilecont"
            | "percentiledisc"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_detection() {
        let agg = Expr::FnCall {
            name: "count".into(),
            args: vec![Expr::var("s")],
            distinct: false,
        };
        assert!(agg.contains_aggregate());
        assert!(Expr::CountStar.contains_aggregate());
        assert!(!Expr::var("x").contains_aggregate());

        // Nested: 1 + count(x)
        let nested = Expr::Arith(ArithOp::Add, Box::new(Expr::int(1)), Box::new(agg));
        assert!(nested.contains_aggregate());

        // Non-aggregate function.
        let f = Expr::FnCall {
            name: "size".into(),
            args: vec![Expr::var("x")],
            distinct: false,
        };
        assert!(!f.contains_aggregate());
    }

    #[test]
    fn shorthands() {
        assert_eq!(Expr::int(3), Expr::Lit(Literal::Integer(3)));
        assert_eq!(
            Expr::prop(Expr::var("r"), "name"),
            Expr::Prop(Box::new(Expr::Var("r".into())), "name".into())
        );
    }

    #[test]
    fn for_each_child_covers_case() {
        let e = Expr::Case {
            input: Some(Box::new(Expr::var("x"))),
            whens: vec![(Expr::int(1), Expr::int(2))],
            else_: Some(Box::new(Expr::int(3))),
        };
        let mut n = 0;
        e.for_each_child(&mut |_| n += 1);
        assert_eq!(n, 4);
    }
}
