//! Pattern abstract syntax (paper Figure 3 and Section 4.2).

use crate::expr::Expr;

/// The direction `d ∈ {→, ←, ↔}` of a relationship pattern.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Dir {
    /// `-[]->` (left-to-right).
    Out,
    /// `<-[]-` (right-to-left).
    In,
    /// `-[]-` (undirected).
    Both,
}

/// The range component `I` of a relationship pattern.
///
/// `I` is `nil` iff the `len` token is absent ([`RangeSpec::None`]);
/// otherwise it is a pair of optional bounds where `nil` bounds default to
/// `1` (lower) and `∞` (upper). The paper's `(m, n)` with `m = n ∈ N` is a
/// *rigid* relationship pattern.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Hash)]
pub enum RangeSpec {
    /// No `*`: exactly one relationship, and the bound value (if the pattern
    /// is named) is the relationship itself, not a list — item (a″) in §4.2.
    #[default]
    None,
    /// `*`, `*d`, `*d1..`, `*..d2` or `*d1..d2`: `(lower, upper)` where a
    /// missing bound is `None`.
    Var(Option<u64>, Option<u64>),
}

impl RangeSpec {
    /// The concrete `[m, n]` range: `None` ⇒ `[1, 1]`; in `Var`, `nil`
    /// bounds become `1` and `u64::MAX` (standing in for `∞`).
    pub fn bounds(self) -> (u64, u64) {
        match self {
            RangeSpec::None => (1, 1),
            RangeSpec::Var(lo, hi) => (lo.unwrap_or(1), hi.unwrap_or(u64::MAX)),
        }
    }

    /// True when the pattern is rigid (`m = n`, including the `I = nil`
    /// case).
    pub fn is_rigid(self) -> bool {
        let (m, n) = self.bounds();
        m == n
    }

    /// True for the `I = nil` case, whose binding is a single relationship
    /// rather than a list.
    pub fn is_single(self) -> bool {
        matches!(self, RangeSpec::None)
    }
}

/// A node pattern `χ = (a, L, P)`: an optional name, a set of labels and a
/// partial map from property keys to expressions.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct NodePattern {
    /// `a ∈ A ∪ {nil}`.
    pub name: Option<String>,
    /// `L ⊂ L`.
    pub labels: Vec<String>,
    /// `P : K ⇀ expressions`.
    pub props: Vec<(String, Expr)>,
}

impl NodePattern {
    /// The anonymous empty pattern `()` = `(nil, ∅, ∅)`.
    pub fn any() -> Self {
        Self::default()
    }

    /// A named pattern `(name)`.
    pub fn named(name: impl Into<String>) -> Self {
        NodePattern {
            name: Some(name.into()),
            ..Self::default()
        }
    }

    /// Adds a label.
    pub fn with_label(mut self, l: impl Into<String>) -> Self {
        self.labels.push(l.into());
        self
    }

    /// Adds a property requirement.
    pub fn with_prop(mut self, k: impl Into<String>, e: Expr) -> Self {
        self.props.push((k.into(), e));
        self
    }
}

/// A relationship pattern `ρ = (d, a, T, P, I)`.
#[derive(Clone, PartialEq, Debug)]
pub struct RelPattern {
    /// The arrow direction.
    pub dir: Dir,
    /// `a ∈ A ∪ {nil}`.
    pub name: Option<String>,
    /// `T ⊂ T` (empty means any type).
    pub types: Vec<String>,
    /// `P : K ⇀ expressions`.
    pub props: Vec<(String, Expr)>,
    /// `I`.
    pub range: RangeSpec,
}

impl RelPattern {
    /// An anonymous single-hop pattern in the given direction.
    pub fn any(dir: Dir) -> Self {
        RelPattern {
            dir,
            name: None,
            types: Vec::new(),
            props: Vec::new(),
            range: RangeSpec::None,
        }
    }

    /// A typed single-hop pattern.
    pub fn typed(dir: Dir, t: impl Into<String>) -> Self {
        RelPattern {
            types: vec![t.into()],
            ..Self::any(dir)
        }
    }

    /// Names the pattern.
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Sets the range (`*`, `*n..m`, …).
    pub fn with_range(mut self, lo: Option<u64>, hi: Option<u64>) -> Self {
        self.range = RangeSpec::Var(lo, hi);
        self
    }

    /// True when rigid (see [`RangeSpec::is_rigid`]).
    pub fn is_rigid(&self) -> bool {
        self.range.is_rigid()
    }
}

/// A path pattern `χ₁ ρ₁ χ₂ ⋯ ρₙ₋₁ χₙ`, optionally named (`π/a`, written
/// `a = pattern` in Cypher syntax).
#[derive(Clone, PartialEq, Debug)]
pub struct PathPattern {
    /// The optional path name `a` in `π/a`.
    pub name: Option<String>,
    /// `χ₁`.
    pub start: NodePattern,
    /// `(ρᵢ, χᵢ₊₁)` steps.
    pub steps: Vec<(RelPattern, NodePattern)>,
}

impl PathPattern {
    /// A single-node path pattern.
    pub fn node(start: NodePattern) -> Self {
        PathPattern {
            name: None,
            start,
            steps: Vec::new(),
        }
    }

    /// Appends a step.
    pub fn step(mut self, rel: RelPattern, node: NodePattern) -> Self {
        self.steps.push((rel, node));
        self
    }

    /// Names the whole path (`a = (…)-[…]->(…)`).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// True when every relationship pattern is rigid.
    pub fn is_rigid(&self) -> bool {
        self.steps.iter().all(|(r, _)| r.is_rigid())
    }

    /// All node patterns, in order.
    pub fn node_patterns(&self) -> impl Iterator<Item = &NodePattern> {
        std::iter::once(&self.start).chain(self.steps.iter().map(|(_, n)| n))
    }

    /// All relationship patterns, in order.
    pub fn rel_patterns(&self) -> impl Iterator<Item = &RelPattern> {
        self.steps.iter().map(|(r, _)| r)
    }

    /// The free variables `free(π)` of Section 4.2: every name appearing in
    /// a node or relationship pattern, plus the path name for `π/a`.
    pub fn free_vars(&self) -> Vec<String> {
        let mut out = Vec::new();
        let mut push = |n: &Option<String>| {
            if let Some(n) = n {
                if !out.contains(n) {
                    out.push(n.clone());
                }
            }
        };
        push(&self.start.name);
        for (r, n) in &self.steps {
            push(&r.name);
            push(&n.name);
        }
        push(&self.name);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_bounds() {
        assert_eq!(RangeSpec::None.bounds(), (1, 1));
        assert_eq!(RangeSpec::Var(None, None).bounds(), (1, u64::MAX));
        assert_eq!(RangeSpec::Var(Some(2), Some(5)).bounds(), (2, 5));
        assert_eq!(RangeSpec::Var(None, Some(3)).bounds(), (1, 3));
        assert!(RangeSpec::None.is_rigid());
        assert!(RangeSpec::Var(Some(2), Some(2)).is_rigid());
        assert!(!RangeSpec::Var(Some(1), Some(2)).is_rigid());
        assert!(RangeSpec::None.is_single());
        assert!(!RangeSpec::Var(Some(1), Some(1)).is_single());
    }

    #[test]
    fn free_vars_in_order_no_dups() {
        // (x:Teacher)-[:KNOWS*1..2]->(z)-[:KNOWS*1..2]->(y:Teacher)
        let p = PathPattern::node(NodePattern::named("x").with_label("Teacher"))
            .step(
                RelPattern::typed(Dir::Out, "KNOWS").with_range(Some(1), Some(2)),
                NodePattern::named("z"),
            )
            .step(
                RelPattern::typed(Dir::Out, "KNOWS").with_range(Some(1), Some(2)),
                NodePattern::named("y").with_label("Teacher"),
            );
        assert_eq!(p.free_vars(), vec!["x", "z", "y"]);
        assert!(!p.is_rigid());

        let named = p.clone().with_name("p");
        assert_eq!(named.free_vars(), vec!["x", "z", "y", "p"]);
    }

    #[test]
    fn rigid_detection() {
        let p = PathPattern::node(NodePattern::any()).step(
            RelPattern::typed(Dir::Out, "KNOWS").with_range(Some(2), Some(2)),
            NodePattern::any(),
        );
        assert!(p.is_rigid());
    }
}
