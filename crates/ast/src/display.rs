//! The unparser: renders the abstract syntax back to valid Cypher text.
//!
//! This regenerates the concrete syntax of Figures 3 and 5 and is the basis
//! of the grammar round-trip experiments (E6/E12 in DESIGN.md):
//! `parse(render(ast)) == ast`. Expressions are rendered fully
//! parenthesized so the round-trip is independent of precedence.

use crate::expr::{ArithOp, CmpOp, Expr, Literal, Quantifier};
use crate::pattern::{Dir, NodePattern, PathPattern, RangeSpec, RelPattern};
use crate::query::{Clause, Query, RemoveItem, Return, ReturnItem, SetItem, SortItem};
use std::fmt;

fn escape_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '\'' => out.push_str("\\'"),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Null => write!(f, "null"),
            Literal::Bool(b) => write!(f, "{b}"),
            // Negative numeric literals are parenthesized so they survive
            // postfix contexts (`(-1).a` rather than `-1.a`, which would
            // re-parse as a negated property access).
            Literal::Integer(i) if *i < 0 => write!(f, "({i})"),
            Literal::Integer(i) => write!(f, "{i}"),
            Literal::Float(x) if x.is_sign_negative() => write!(f, "({x:?})"),
            Literal::Float(x) => write!(f, "{x:?}"),
            Literal::String(s) => write!(f, "'{}'", escape_string(s)),
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Neq => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

impl fmt::Display for ArithOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
            ArithOp::Mod => "%",
            ArithOp::Pow => "^",
        };
        write!(f, "{s}")
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Expr::*;
        match self {
            Lit(l) => write!(f, "{l}"),
            Var(a) => write!(f, "{a}"),
            Param(p) => write!(f, "${p}"),
            Prop(e, k) => write!(f, "{e}.{k}"),
            Map(kvs) => {
                write!(f, "{{")?;
                for (i, (k, v)) in kvs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k}: {v}")?;
                }
                write!(f, "}}")
            }
            List(es) => {
                write!(f, "[")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "]")
            }
            In(a, b) => write!(f, "({a} IN {b})"),
            Index(a, b) => write!(f, "{a}[{b}]"),
            Slice(e, lo, hi) => {
                write!(f, "{e}[")?;
                if let Some(lo) = lo {
                    write!(f, "{lo}")?;
                }
                write!(f, "..")?;
                if let Some(hi) = hi {
                    write!(f, "{hi}")?;
                }
                write!(f, "]")
            }
            StartsWith(a, b) => write!(f, "({a} STARTS WITH {b})"),
            EndsWith(a, b) => write!(f, "({a} ENDS WITH {b})"),
            Contains(a, b) => write!(f, "({a} CONTAINS {b})"),
            Or(a, b) => write!(f, "({a} OR {b})"),
            And(a, b) => write!(f, "({a} AND {b})"),
            Xor(a, b) => write!(f, "({a} XOR {b})"),
            Not(e) => write!(f, "(NOT {e})"),
            IsNull(e) => write!(f, "({e} IS NULL)"),
            IsNotNull(e) => write!(f, "({e} IS NOT NULL)"),
            Cmp(op, a, b) => write!(f, "({a} {op} {b})"),
            Arith(op, a, b) => write!(f, "({a} {op} {b})"),
            Neg(e) => write!(f, "(-{e})"),
            FnCall {
                name,
                args,
                distinct,
            } => {
                write!(f, "{name}(")?;
                if *distinct {
                    write!(f, "DISTINCT ")?;
                }
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            CountStar => write!(f, "count(*)"),
            HasLabels(e, ls) => {
                write!(f, "({e}")?;
                for l in ls {
                    write!(f, ":{l}")?;
                }
                write!(f, ")")
            }
            Case {
                input,
                whens,
                else_,
            } => {
                write!(f, "CASE")?;
                if let Some(i) = input {
                    write!(f, " {i}")?;
                }
                for (w, t) in whens {
                    write!(f, " WHEN {w} THEN {t}")?;
                }
                if let Some(e) = else_ {
                    write!(f, " ELSE {e}")?;
                }
                write!(f, " END")
            }
            ListComprehension {
                var,
                list,
                filter,
                body,
            } => {
                write!(f, "[{var} IN {list}")?;
                if let Some(p) = filter {
                    write!(f, " WHERE {p}")?;
                }
                if let Some(b) = body {
                    write!(f, " | {b}")?;
                }
                write!(f, "]")
            }
            Quantified { q, var, list, pred } => {
                let name = match q {
                    Quantifier::All => "all",
                    Quantifier::Any => "any",
                    Quantifier::None => "none",
                    Quantifier::Single => "single",
                };
                write!(f, "{name}({var} IN {list} WHERE {pred})")
            }
            PatternPredicate(p) => write!(f, "{p}"),
            PatternComprehension {
                pattern,
                filter,
                body,
            } => {
                write!(f, "[{pattern}")?;
                if let Some(p) = filter {
                    write!(f, " WHERE {p}")?;
                }
                write!(f, " | {body}]")
            }
        }
    }
}

impl fmt::Display for NodePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        if let Some(n) = &self.name {
            write!(f, "{n}")?;
        }
        for l in &self.labels {
            write!(f, ":{l}")?;
        }
        if !self.props.is_empty() {
            if self.name.is_some() || !self.labels.is_empty() {
                write!(f, " ")?;
            }
            write!(f, "{{")?;
            for (i, (k, v)) in self.props.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{k}: {v}")?;
            }
            write!(f, "}}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for RelPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (pre, post) = match self.dir {
            Dir::Out => ("-", "->"),
            Dir::In => ("<-", "-"),
            Dir::Both => ("-", "-"),
        };
        write!(f, "{pre}")?;
        let has_body = self.name.is_some()
            || !self.types.is_empty()
            || !self.props.is_empty()
            || self.range != RangeSpec::None;
        if has_body {
            write!(f, "[")?;
            if let Some(n) = &self.name {
                write!(f, "{n}")?;
            }
            for (i, t) in self.types.iter().enumerate() {
                write!(f, "{}{t}", if i == 0 { ":" } else { "|" })?;
            }
            if let RangeSpec::Var(lo, hi) = self.range {
                write!(f, "*")?;
                match (lo, hi) {
                    (None, None) => {}
                    (Some(a), Some(b)) if a == b => write!(f, "{a}")?,
                    (Some(a), Some(b)) => write!(f, "{a}..{b}")?,
                    (Some(a), None) => write!(f, "{a}..")?,
                    (None, Some(b)) => write!(f, "..{b}")?,
                }
            }
            if !self.props.is_empty() {
                write!(f, " {{")?;
                for (i, (k, v)) in self.props.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k}: {v}")?;
                }
                write!(f, "}}")?;
            }
            write!(f, "]")?;
        }
        write!(f, "{post}")
    }
}

impl fmt::Display for PathPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(n) = &self.name {
            write!(f, "{n} = ")?;
        }
        write!(f, "{}", self.start)?;
        for (r, n) in &self.steps {
            write!(f, "{r}{n}")?;
        }
        Ok(())
    }
}

impl fmt::Display for SortItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.expr)?;
        if !self.ascending {
            write!(f, " DESC")?;
        }
        Ok(())
    }
}

impl fmt::Display for ReturnItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.expr)?;
        if let Some(a) = &self.alias {
            write!(f, " AS {a}")?;
        }
        Ok(())
    }
}

impl Return {
    fn fmt_body(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        let mut first = true;
        if self.star {
            write!(f, "*")?;
            first = false;
        }
        for item in &self.items {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{item}")?;
            first = false;
        }
        if !self.order_by.is_empty() {
            write!(f, " ORDER BY ")?;
            for (i, s) in self.order_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{s}")?;
            }
        }
        if let Some(s) = &self.skip {
            write!(f, " SKIP {s}")?;
        }
        if let Some(l) = &self.limit {
            write!(f, " LIMIT {l}")?;
        }
        Ok(())
    }
}

impl fmt::Display for SetItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SetItem::Prop(e, k, v) => write!(f, "{e}.{k} = {v}"),
            SetItem::Replace(a, m) => write!(f, "{a} = {m}"),
            SetItem::Merge(a, m) => write!(f, "{a} += {m}"),
            SetItem::Labels(a, ls) => {
                write!(f, "{a}")?;
                for l in ls {
                    write!(f, ":{l}")?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for RemoveItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RemoveItem::Prop(e, k) => write!(f, "{e}.{k}"),
            RemoveItem::Labels(a, ls) => {
                write!(f, "{a}")?;
                for l in ls {
                    write!(f, ":{l}")?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Clause::Match {
                optional,
                patterns,
                where_,
            } => {
                if *optional {
                    write!(f, "OPTIONAL ")?;
                }
                write!(f, "MATCH ")?;
                for (i, p) in patterns.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{p}")?;
                }
                if let Some(w) = where_ {
                    write!(f, " WHERE {w}")?;
                }
                Ok(())
            }
            Clause::With { ret, where_ } => {
                write!(f, "WITH ")?;
                ret.fmt_body(f)?;
                if let Some(w) = where_ {
                    write!(f, " WHERE {w}")?;
                }
                Ok(())
            }
            Clause::Unwind { expr, alias } => write!(f, "UNWIND {expr} AS {alias}"),
            Clause::Create { patterns } => {
                write!(f, "CREATE ")?;
                for (i, p) in patterns.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{p}")?;
                }
                Ok(())
            }
            Clause::Merge {
                pattern,
                on_create,
                on_match,
            } => {
                write!(f, "MERGE {pattern}")?;
                if !on_create.is_empty() {
                    write!(f, " ON CREATE SET ")?;
                    for (i, s) in on_create.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{s}")?;
                    }
                }
                if !on_match.is_empty() {
                    write!(f, " ON MATCH SET ")?;
                    for (i, s) in on_match.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{s}")?;
                    }
                }
                Ok(())
            }
            Clause::Delete { detach, exprs } => {
                if *detach {
                    write!(f, "DETACH ")?;
                }
                write!(f, "DELETE ")?;
                for (i, e) in exprs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                Ok(())
            }
            Clause::Set { items } => {
                write!(f, "SET ")?;
                for (i, s) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{s}")?;
                }
                Ok(())
            }
            Clause::Remove { items } => {
                write!(f, "REMOVE ")?;
                for (i, s) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{s}")?;
                }
                Ok(())
            }
            Clause::FromGraph { name, at } => {
                write!(f, "FROM GRAPH {name}")?;
                if let Some(a) = at {
                    write!(f, " AT '{}'", escape_string(a))?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Query::Single(q) => {
                let mut first = true;
                for c in &q.clauses {
                    if !first {
                        write!(f, " ")?;
                    }
                    write!(f, "{c}")?;
                    first = false;
                }
                if let Some(r) = &q.ret {
                    if !first {
                        write!(f, " ")?;
                    }
                    write!(f, "RETURN ")?;
                    r.fmt_body(f)?;
                } else if let Some((name, pats)) = &q.ret_graph {
                    if !first {
                        write!(f, " ")?;
                    }
                    write!(f, "RETURN GRAPH {name} OF ")?;
                    for (i, p) in pats.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{p}")?;
                    }
                }
                Ok(())
            }
            Query::Union { all, left, right } => {
                write!(f, "{left} UNION ")?;
                if *all {
                    write!(f, "ALL ")?;
                }
                write!(f, "{right}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{NodePattern, RelPattern};

    #[test]
    fn node_pattern_forms() {
        assert_eq!(NodePattern::any().to_string(), "()");
        assert_eq!(NodePattern::named("x").to_string(), "(x)");
        assert_eq!(
            NodePattern::named("x")
                .with_label("Person")
                .with_label("Male")
                .to_string(),
            "(x:Person:Male)"
        );
        assert_eq!(
            NodePattern::named("x")
                .with_prop("name", Expr::str("Nils"))
                .to_string(),
            "(x {name: 'Nils'})"
        );
    }

    #[test]
    fn rel_pattern_forms() {
        assert_eq!(RelPattern::any(Dir::Out).to_string(), "-->");
        assert_eq!(RelPattern::any(Dir::In).to_string(), "<--");
        assert_eq!(RelPattern::any(Dir::Both).to_string(), "--");
        assert_eq!(
            RelPattern::typed(Dir::Out, "KNOWS").to_string(),
            "-[:KNOWS]->"
        );
        assert_eq!(
            RelPattern::typed(Dir::Both, "KNOWS")
                .with_range(Some(1), Some(1))
                .to_string(),
            "-[:KNOWS*1]-"
        );
        assert_eq!(
            RelPattern::typed(Dir::Out, "KNOWS")
                .with_range(Some(1), Some(2))
                .to_string(),
            "-[:KNOWS*1..2]->"
        );
        assert_eq!(
            RelPattern::any(Dir::Out).with_range(None, None).to_string(),
            "-[*]->"
        );
        let mut r = RelPattern::typed(Dir::Out, "A");
        r.types.push("B".into());
        assert_eq!(r.to_string(), "-[:A|B]->");
    }

    #[test]
    fn path_pattern_ascii_art() {
        let p = PathPattern::node(NodePattern::named("a"))
            .step(
                RelPattern::typed(Dir::Out, "SUPERVISES").named("r"),
                NodePattern::named("s").with_label("Student"),
            )
            .with_name("p");
        assert_eq!(p.to_string(), "p = (a)-[r:SUPERVISES]->(s:Student)");
    }

    #[test]
    fn expression_rendering() {
        let e = Expr::And(
            Box::new(Expr::eq(
                Expr::prop(Expr::var("n"), "name"),
                Expr::str("it's"),
            )),
            Box::new(Expr::IsNotNull(Box::new(Expr::var("x")))),
        );
        assert_eq!(e.to_string(), "((n.name = 'it\\'s') AND (x IS NOT NULL))");
    }

    #[test]
    fn float_literal_reparsable() {
        assert_eq!(Expr::Lit(Literal::Float(1.0)).to_string(), "1.0");
        assert_eq!(Expr::Lit(Literal::Float(2.5)).to_string(), "2.5");
    }

    #[test]
    fn clause_rendering() {
        let c = Clause::Match {
            optional: true,
            patterns: vec![PathPattern::node(NodePattern::named("r")).step(
                RelPattern::typed(Dir::Out, "SUPERVISES"),
                NodePattern::named("s").with_label("Student"),
            )],
            where_: None,
        };
        assert_eq!(
            c.to_string(),
            "OPTIONAL MATCH (r)-[:SUPERVISES]->(s:Student)"
        );
    }
}
