//! Clause and query abstract syntax (paper Figure 5, "queries" and
//! "clauses"), extended with the update clauses of Section 2 and the
//! Cypher 10 multiple-graph clauses of Section 6.

use crate::expr::Expr;
use crate::pattern::PathPattern;

/// One item of a return list: an expression with an optional alias.
#[derive(Clone, PartialEq, Debug)]
pub struct ReturnItem {
    /// The projected expression.
    pub expr: Expr,
    /// `AS a` if present.
    pub alias: Option<String>,
}

impl ReturnItem {
    /// An unaliased item.
    pub fn plain(expr: Expr) -> Self {
        ReturnItem { expr, alias: None }
    }

    /// An aliased item.
    pub fn aliased(expr: Expr, alias: impl Into<String>) -> Self {
        ReturnItem {
            expr,
            alias: Some(alias.into()),
        }
    }
}

/// An `ORDER BY` sort key.
#[derive(Clone, PartialEq, Debug)]
pub struct SortItem {
    /// The sort expression.
    pub expr: Expr,
    /// `true` for ascending (the default).
    pub ascending: bool,
}

/// The body shared by `RETURN` and `WITH`: a return list (`∗` and/or
/// items), `DISTINCT`, and the trailing sub-clauses.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Return {
    /// `DISTINCT` modifier.
    pub distinct: bool,
    /// `∗` — project all current fields.
    pub star: bool,
    /// Explicit items.
    pub items: Vec<ReturnItem>,
    /// `ORDER BY` keys.
    pub order_by: Vec<SortItem>,
    /// `SKIP n`.
    pub skip: Option<Expr>,
    /// `LIMIT n`.
    pub limit: Option<Expr>,
}

impl Return {
    /// `RETURN *`.
    pub fn star() -> Self {
        Return {
            star: true,
            ..Self::default()
        }
    }

    /// A plain item list.
    pub fn items(items: Vec<ReturnItem>) -> Self {
        Return {
            items,
            ..Self::default()
        }
    }
}

/// A `SET` item (paper Section 2, "Data modification").
#[derive(Clone, PartialEq, Debug)]
pub enum SetItem {
    /// `SET e.k = value`.
    Prop(Expr, String, Expr),
    /// `SET a = map` (replace all properties).
    Replace(String, Expr),
    /// `SET a += map` (merge properties).
    Merge(String, Expr),
    /// `SET a:Label1:Label2`.
    Labels(String, Vec<String>),
}

/// A `REMOVE` item.
#[derive(Clone, PartialEq, Debug)]
pub enum RemoveItem {
    /// `REMOVE e.k`.
    Prop(Expr, String),
    /// `REMOVE a:Label1:Label2`.
    Labels(String, Vec<String>),
}

/// A Cypher clause: a function from tables to tables (paper Section 2:
/// "Each clause in a query is a function that takes a table and outputs a
/// table").
#[derive(Clone, PartialEq, Debug)]
pub enum Clause {
    /// `[OPTIONAL] MATCH pattern_tuple [WHERE expr]`.
    Match {
        /// `OPTIONAL` flag.
        optional: bool,
        /// The tuple of path patterns `π̄ = (π₁, …, πₙ)`.
        patterns: Vec<PathPattern>,
        /// The `WHERE` predicate, if any.
        where_: Option<Expr>,
    },
    /// `WITH ret [WHERE expr]` — projection, aggregation and filtering
    /// between query parts.
    With {
        /// The projection body.
        ret: Return,
        /// Post-projection filter.
        where_: Option<Expr>,
    },
    /// `UNWIND expr AS a`.
    Unwind {
        /// The list expression.
        expr: Expr,
        /// The introduced name.
        alias: String,
    },
    /// `CREATE pattern_tuple`.
    Create {
        /// Patterns to instantiate.
        patterns: Vec<PathPattern>,
    },
    /// `MERGE pattern [ON CREATE SET …] [ON MATCH SET …]`.
    Merge {
        /// The single path pattern to match-or-create.
        pattern: PathPattern,
        /// `ON CREATE SET` items.
        on_create: Vec<SetItem>,
        /// `ON MATCH SET` items.
        on_match: Vec<SetItem>,
    },
    /// `[DETACH] DELETE e₁, …`.
    Delete {
        /// `DETACH` flag.
        detach: bool,
        /// Entities to delete.
        exprs: Vec<Expr>,
    },
    /// `SET item₁, …`.
    Set {
        /// Items.
        items: Vec<SetItem>,
    },
    /// `REMOVE item₁, …`.
    Remove {
        /// Items.
        items: Vec<RemoveItem>,
    },
    /// Cypher 10 (paper §6): `FROM GRAPH name` — switch the source graph
    /// for subsequent reading clauses. We support the name form; the
    /// `AT "url"` locator is accepted by the parser and recorded.
    FromGraph {
        /// The graph name.
        name: String,
        /// Optional `AT "<uri>"` locator text.
        at: Option<String>,
    },
}

/// A query part ending in `RETURN` (possibly combined with `UNION`).
#[derive(Clone, PartialEq, Debug, Default)]
pub struct SingleQuery {
    /// The clause sequence.
    pub clauses: Vec<Clause>,
    /// The final `RETURN`; update-only queries may omit it.
    pub ret: Option<Return>,
    /// Cypher 10 (paper §6, Example 6.1): `RETURN GRAPH name OF
    /// pattern_tuple` — construct and register a new named graph from the
    /// current driving table. Mutually exclusive with `ret`.
    pub ret_graph: Option<(String, Vec<PathPattern>)>,
}

/// A full query: a single query or a `UNION [ALL]` of two queries
/// (Figure 5, "unions").
#[allow(clippy::large_enum_variant)] // queries are built once, not stored in bulk
#[derive(Clone, PartialEq, Debug)]
pub enum Query {
    /// A clause sequence ending in `RETURN`.
    Single(SingleQuery),
    /// `q₁ UNION q₂` (set) or `q₁ UNION ALL q₂` (bag).
    Union {
        /// Bag (`ALL`) vs set semantics.
        all: bool,
        /// Left operand.
        left: Box<Query>,
        /// Right operand.
        right: Box<Query>,
    },
}

impl Query {
    /// Wraps a single query.
    pub fn single(q: SingleQuery) -> Query {
        Query::Single(q)
    }

    /// True iff any clause updates the graph.
    pub fn is_updating(&self) -> bool {
        match self {
            Query::Single(q) => q.clauses.iter().any(|c| {
                matches!(
                    c,
                    Clause::Create { .. }
                        | Clause::Merge { .. }
                        | Clause::Delete { .. }
                        | Clause::Set { .. }
                        | Clause::Remove { .. }
                )
            }),
            Query::Union { left, right, .. } => left.is_updating() || right.is_updating(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::NodePattern;

    #[test]
    fn updating_detection() {
        let read = Query::single(SingleQuery {
            clauses: vec![Clause::Match {
                optional: false,
                patterns: vec![PathPattern::node(NodePattern::named("n"))],
                where_: None,
            }],
            ret: Some(Return::star()),
            ret_graph: None,
        });
        assert!(!read.is_updating());

        let write = Query::single(SingleQuery {
            clauses: vec![Clause::Create {
                patterns: vec![PathPattern::node(NodePattern::named("n"))],
            }],
            ret: None,
            ret_graph: None,
        });
        assert!(write.is_updating());

        let union = Query::Union {
            all: true,
            left: Box::new(read),
            right: Box::new(write),
        };
        assert!(union.is_updating());
    }
}
