//! # cypher-storage
//!
//! The durable storage engine of the workspace: everything between the
//! in-memory [`cypher_graph::PropertyGraph`] and the file system.
//!
//! The design treats the graph's **logical change stream**
//! ([`cypher_graph::Change`], emitted by every store mutator) as the
//! source of truth, in the spirit of maintaining query answers under
//! updates (Berkholz et al., *Answering FO+MOD queries under updates*):
//! both the graph and its label/property/composite indexes are pure
//! functions of the stream, and recovery is replay.
//!
//! Three layers:
//!
//! * [`codec`] — a hand-rolled binary codec for [`cypher_graph::Value`]
//!   trees, change records and snapshot rows (the workspace is offline, so
//!   no serde), plus the CRC-32 the framing layers use;
//! * [`wal`] — an append-only **write-ahead log** of change records with
//!   per-record CRC and length framing, grouped into atomic batches (one
//!   batch per executed query; a batch is replayed only if its commit
//!   record survived — all-or-nothing on replay);
//! * [`snapshot`] — full-graph snapshot files written atomically
//!   (temp-file + rename), CRC-protected, restoring via
//!   [`cypher_graph::PropertyGraph::restore`].
//!
//! [`Store`] ties them together with a generation-numbered
//! `open`/`recover`/`commit`/`checkpoint` lifecycle: `snapshot-<g>.snap`
//! pairs with `wal-<g>.log`, so a crash anywhere — including between
//! snapshot publication and log truncation — always leaves one consistent
//! pair to recover from.

#![warn(missing_docs)]

pub mod codec;
pub mod snapshot;
pub mod store;
pub mod wal;

pub use store::{RecoveryReport, Store};

use cypher_graph::GraphError;
use std::fmt;

/// A committed transaction's id: the sequence number of its WAL batch
/// (0-based, assigned at commit, monotonic across checkpoints and
/// reopens — sequence numbers are persisted in snapshots).
///
/// These ids double as the **version numbers** of the in-memory
/// multi-version store ([`cypher_graph::VersionedGraph`]): the graph
/// state containing batches `0..=i` is published as version `i + 1`
/// (version 0 is the empty/initial state). The `Database` facade seals a
/// batch in the WAL *first* and publishes the version *second*, so any
/// version a reader can ever pin is, by construction, recoverable from
/// disk.
pub type TxnId = u64;

/// Best-effort fsync of a path's parent directory, so a just-created or
/// just-renamed file's directory entry also reaches stable storage.
/// Failures are ignored: not every platform/filesystem supports opening
/// a directory for sync, and the file's own fsync already happened.
pub(crate) fn sync_parent_dir(path: &std::path::Path) {
    if let Some(parent) = path.parent() {
        if let Ok(dir) = std::fs::File::open(parent) {
            let _ = dir.sync_all();
        }
    }
}

/// Everything that can go wrong between the graph and the file system.
#[derive(Debug)]
pub enum StorageError {
    /// An operating-system I/O failure.
    Io(std::io::Error),
    /// On-disk bytes failed validation (CRC mismatch, truncated frame,
    /// malformed payload, impossible replay target). Recovery treats a
    /// corrupt WAL *tail* as a torn write and truncates it; corruption
    /// anywhere else surfaces as this error.
    Corrupt {
        /// Which file/structure was corrupt.
        context: String,
        /// Byte offset of the corruption where known.
        offset: u64,
    },
    /// The graph rejected restored or replayed state as inconsistent.
    Graph(GraphError),
    /// The file was written by an incompatible format version.
    UnsupportedVersion(u32),
    /// Another live process holds the data directory (single-writer
    /// rule: two writers appending to one WAL interleave ids and
    /// destroy the log).
    Locked {
        /// The pid recorded in the directory's `LOCK` file.
        pid: u32,
    },
}

impl StorageError {
    /// Builds a [`StorageError::Corrupt`] with context.
    pub fn corrupt(context: impl Into<String>, offset: u64) -> StorageError {
        StorageError::Corrupt {
            context: context.into(),
            offset,
        }
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "storage I/O error: {e}"),
            StorageError::Corrupt { context, offset } => {
                write!(f, "corrupt storage ({context} at byte {offset})")
            }
            StorageError::Graph(e) => write!(f, "storage replay rejected: {e}"),
            StorageError::UnsupportedVersion(v) => {
                write!(f, "unsupported storage format version {v}")
            }
            StorageError::Locked { pid } => {
                write!(f, "data directory is locked by live process {pid}")
            }
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            StorageError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

impl From<GraphError> for StorageError {
    fn from(e: GraphError) -> Self {
        StorageError::Graph(e)
    }
}
