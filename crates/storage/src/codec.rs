//! Hand-rolled binary codec for graph values, change records and snapshot
//! rows, plus the CRC-32 used by every framing layer.
//!
//! All integers are little-endian and fixed-width; strings and
//! collections carry a `u32` length/count prefix. Floats are encoded as
//! raw IEEE-754 bits, so every value — including `NaN` payloads and
//! `-0.0` — round-trips bit-exactly. Decoding is **total**: every read is
//! bounds-checked, counts are validated against the remaining buffer
//! before any allocation, UTF-8 is verified, and value-tree nesting is
//! depth-limited, so corrupt input produces [`StorageError::Corrupt`] and
//! never a panic, over-allocation or stack overflow.

use crate::StorageError;
use cypher_graph::change::Change;
use cypher_graph::graph::{NodeState, RelState};
use cypher_graph::temporal::{Date, Duration, LocalDateTime, LocalTime, Temporal, ZonedDateTime};
use cypher_graph::{NodeId, Path, RelId, Value};
use std::sync::Arc;

/// Maximum [`Value`] nesting depth the decoder accepts. Honest data never
/// approaches this; a corrupt length field must not be able to recurse
/// the decoder off the stack.
const MAX_VALUE_DEPTH: u32 = 64;

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3, the polynomial used by zip/png)
// ---------------------------------------------------------------------------

/// The CRC-32 lookup table, built once at first use.
fn crc_table() -> &'static [u32; 256] {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        table
    })
}

/// CRC-32 (IEEE) of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let table = crc_table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Appends a `u32` (little-endian).
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64` (little-endian).
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `i64` (little-endian two's complement).
pub fn put_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn put_props(buf: &mut Vec<u8>, props: &[(Arc<str>, Value)]) {
    put_u32(buf, props.len() as u32);
    for (k, v) in props {
        put_str(buf, k);
        put_value(buf, v);
    }
}

/// Appends an encoded [`Value`] tree.
pub fn put_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => buf.push(0),
        Value::Bool(b) => {
            buf.push(1);
            buf.push(*b as u8);
        }
        Value::Integer(i) => {
            buf.push(2);
            put_i64(buf, *i);
        }
        Value::Float(f) => {
            buf.push(3);
            put_u64(buf, f.to_bits());
        }
        Value::String(s) => {
            buf.push(4);
            put_str(buf, s);
        }
        Value::List(items) => {
            buf.push(5);
            put_u32(buf, items.len() as u32);
            for item in items {
                put_value(buf, item);
            }
        }
        Value::Map(m) => {
            buf.push(6);
            put_u32(buf, m.len() as u32);
            for (k, item) in m {
                put_str(buf, k);
                put_value(buf, item);
            }
        }
        Value::Node(n) => {
            buf.push(7);
            put_u64(buf, n.0);
        }
        Value::Rel(r) => {
            buf.push(8);
            put_u64(buf, r.0);
        }
        Value::Path(p) => {
            buf.push(9);
            put_u64(buf, p.start().0);
            let steps = p.steps();
            put_u32(buf, steps.len() as u32);
            for &(r, n) in steps {
                put_u64(buf, r.0);
                put_u64(buf, n.0);
            }
        }
        Value::Temporal(t) => {
            buf.push(10);
            match t {
                Temporal::Date(d) => {
                    buf.push(0);
                    put_i64(buf, d.epoch_days);
                }
                Temporal::LocalTime(t) => {
                    buf.push(1);
                    put_i64(buf, t.nanos);
                }
                Temporal::LocalDateTime(dt) => {
                    buf.push(2);
                    put_i64(buf, dt.date.epoch_days);
                    put_i64(buf, dt.time.nanos);
                }
                Temporal::DateTime(z) => {
                    buf.push(3);
                    put_i64(buf, z.local.date.epoch_days);
                    put_i64(buf, z.local.time.nanos);
                    put_i64(buf, z.offset_seconds as i64);
                }
                Temporal::Duration(d) => {
                    buf.push(4);
                    put_i64(buf, d.months);
                    put_i64(buf, d.days);
                    put_i64(buf, d.seconds);
                    put_i64(buf, d.nanos);
                }
            }
        }
    }
}

/// Appends an encoded [`Change`] record.
pub fn put_change(buf: &mut Vec<u8>, c: &Change) {
    match c {
        Change::AddNode { id, labels, props } => {
            buf.push(0);
            put_u64(buf, id.0);
            put_u32(buf, labels.len() as u32);
            for l in labels {
                put_str(buf, l);
            }
            put_props(buf, props);
        }
        Change::AddRel {
            id,
            src,
            tgt,
            rel_type,
            props,
        } => {
            buf.push(1);
            put_u64(buf, id.0);
            put_u64(buf, src.0);
            put_u64(buf, tgt.0);
            put_str(buf, rel_type);
            put_props(buf, props);
        }
        Change::DeleteNode { id } => {
            buf.push(2);
            put_u64(buf, id.0);
        }
        Change::DeleteRel { id } => {
            buf.push(3);
            put_u64(buf, id.0);
        }
        Change::SetNodeProp { id, key, value } => {
            buf.push(4);
            put_u64(buf, id.0);
            put_str(buf, key);
            put_value(buf, value);
        }
        Change::SetRelProp { id, key, value } => {
            buf.push(5);
            put_u64(buf, id.0);
            put_str(buf, key);
            put_value(buf, value);
        }
        Change::RemoveNodeProp { id, key } => {
            buf.push(6);
            put_u64(buf, id.0);
            put_str(buf, key);
        }
        Change::ReplaceNodeProps { id, props } => {
            buf.push(7);
            put_u64(buf, id.0);
            put_props(buf, props);
        }
        Change::AddLabel { id, label } => {
            buf.push(8);
            put_u64(buf, id.0);
            put_str(buf, label);
        }
        Change::RemoveLabel { id, label } => {
            buf.push(9);
            put_u64(buf, id.0);
            put_str(buf, label);
        }
    }
}

/// Appends an encoded snapshot node row.
pub fn put_node_state(buf: &mut Vec<u8>, ns: &NodeState) {
    put_u64(buf, ns.id.0);
    put_u32(buf, ns.labels.len() as u32);
    for l in &ns.labels {
        put_str(buf, l);
    }
    put_props(buf, &ns.props);
}

/// Appends an encoded snapshot relationship row.
pub fn put_rel_state(buf: &mut Vec<u8>, rs: &RelState) {
    put_u64(buf, rs.id.0);
    put_u64(buf, rs.src.0);
    put_u64(buf, rs.tgt.0);
    put_str(buf, &rs.rel_type);
    put_props(buf, &rs.props);
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// A bounds-checked cursor over encoded bytes.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    /// Label attached to corruption errors (file name / structure).
    context: &'a str,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `buf`; `context` labels corruption errors.
    pub fn new(buf: &'a [u8], context: &'a str) -> Self {
        Reader {
            buf,
            pos: 0,
            context,
        }
    }

    /// Current byte offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn corrupt(&self, what: &str) -> StorageError {
        StorageError::corrupt(format!("{}: {what}", self.context), self.pos as u64)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StorageError> {
        if self.remaining() < n {
            return Err(self.corrupt("unexpected end of input"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, StorageError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, StorageError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, StorageError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, StorageError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a collection count, validating it against the bytes left
    /// (every element occupies at least one byte, so a count larger than
    /// the remainder is corrupt — checked *before* any allocation).
    fn count(&mut self) -> Result<usize, StorageError> {
        let n = self.u32()? as usize;
        if n > self.remaining() {
            return Err(self.corrupt("impossible collection count"));
        }
        Ok(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<Arc<str>, StorageError> {
        let len = self.count()?;
        let bytes = self.take(len)?;
        match std::str::from_utf8(bytes) {
            Ok(s) => Ok(Arc::from(s)),
            Err(_) => Err(self.corrupt("invalid UTF-8")),
        }
    }

    fn props(&mut self) -> Result<Vec<(Arc<str>, Value)>, StorageError> {
        let n = self.count()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let k = self.str()?;
            let v = self.value()?;
            out.push((k, v));
        }
        Ok(out)
    }

    /// Reads an encoded [`Value`] tree.
    pub fn value(&mut self) -> Result<Value, StorageError> {
        self.value_at(0)
    }

    fn value_at(&mut self, depth: u32) -> Result<Value, StorageError> {
        if depth > MAX_VALUE_DEPTH {
            return Err(self.corrupt("value nesting too deep"));
        }
        match self.u8()? {
            0 => Ok(Value::Null),
            1 => match self.u8()? {
                0 => Ok(Value::Bool(false)),
                1 => Ok(Value::Bool(true)),
                _ => Err(self.corrupt("invalid boolean byte")),
            },
            2 => Ok(Value::Integer(self.i64()?)),
            3 => Ok(Value::Float(f64::from_bits(self.u64()?))),
            4 => Ok(Value::String(self.str()?)),
            5 => {
                let n = self.count()?;
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    items.push(self.value_at(depth + 1)?);
                }
                Ok(Value::List(items))
            }
            6 => {
                let n = self.count()?;
                let mut m = std::collections::BTreeMap::new();
                for _ in 0..n {
                    let k = self.str()?;
                    let v = self.value_at(depth + 1)?;
                    m.insert(k, v);
                }
                Ok(Value::Map(m))
            }
            7 => Ok(Value::Node(NodeId(self.u64()?))),
            8 => Ok(Value::Rel(RelId(self.u64()?))),
            9 => {
                let start = NodeId(self.u64()?);
                let n = self.count()?;
                let mut steps = Vec::with_capacity(n);
                for _ in 0..n {
                    let r = RelId(self.u64()?);
                    let node = NodeId(self.u64()?);
                    steps.push((r, node));
                }
                Ok(Value::Path(Path::new(start, steps)))
            }
            10 => {
                let t = match self.u8()? {
                    0 => Temporal::Date(Date {
                        epoch_days: self.i64()?,
                    }),
                    1 => Temporal::LocalTime(LocalTime { nanos: self.i64()? }),
                    2 => Temporal::LocalDateTime(LocalDateTime {
                        date: Date {
                            epoch_days: self.i64()?,
                        },
                        time: LocalTime { nanos: self.i64()? },
                    }),
                    3 => {
                        let date = Date {
                            epoch_days: self.i64()?,
                        };
                        let time = LocalTime { nanos: self.i64()? };
                        let offset = self.i64()?;
                        let offset = i32::try_from(offset)
                            .map_err(|_| self.corrupt("offset out of range"))?;
                        Temporal::DateTime(ZonedDateTime {
                            local: LocalDateTime { date, time },
                            offset_seconds: offset,
                        })
                    }
                    4 => Temporal::Duration(Duration {
                        months: self.i64()?,
                        days: self.i64()?,
                        seconds: self.i64()?,
                        nanos: self.i64()?,
                    }),
                    _ => return Err(self.corrupt("invalid temporal tag")),
                };
                Ok(Value::Temporal(t))
            }
            _ => Err(self.corrupt("invalid value tag")),
        }
    }

    /// Reads an encoded [`Change`] record.
    pub fn change(&mut self) -> Result<Change, StorageError> {
        match self.u8()? {
            0 => {
                let id = NodeId(self.u64()?);
                let n = self.count()?;
                let mut labels = Vec::with_capacity(n);
                for _ in 0..n {
                    labels.push(self.str()?);
                }
                let props = self.props()?;
                Ok(Change::AddNode { id, labels, props })
            }
            1 => {
                let id = RelId(self.u64()?);
                let src = NodeId(self.u64()?);
                let tgt = NodeId(self.u64()?);
                let rel_type = self.str()?;
                let props = self.props()?;
                Ok(Change::AddRel {
                    id,
                    src,
                    tgt,
                    rel_type,
                    props,
                })
            }
            2 => Ok(Change::DeleteNode {
                id: NodeId(self.u64()?),
            }),
            3 => Ok(Change::DeleteRel {
                id: RelId(self.u64()?),
            }),
            4 => Ok(Change::SetNodeProp {
                id: NodeId(self.u64()?),
                key: self.str()?,
                value: self.value()?,
            }),
            5 => Ok(Change::SetRelProp {
                id: RelId(self.u64()?),
                key: self.str()?,
                value: self.value()?,
            }),
            6 => Ok(Change::RemoveNodeProp {
                id: NodeId(self.u64()?),
                key: self.str()?,
            }),
            7 => Ok(Change::ReplaceNodeProps {
                id: NodeId(self.u64()?),
                props: self.props()?,
            }),
            8 => Ok(Change::AddLabel {
                id: NodeId(self.u64()?),
                label: self.str()?,
            }),
            9 => Ok(Change::RemoveLabel {
                id: NodeId(self.u64()?),
                label: self.str()?,
            }),
            _ => Err(self.corrupt("invalid change tag")),
        }
    }

    /// Reads an encoded snapshot node row.
    pub fn node_state(&mut self) -> Result<NodeState, StorageError> {
        let id = NodeId(self.u64()?);
        let n = self.count()?;
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            labels.push(self.str()?);
        }
        let props = self.props()?;
        Ok(NodeState { id, labels, props })
    }

    /// Reads an encoded snapshot relationship row.
    pub fn rel_state(&mut self) -> Result<RelState, StorageError> {
        let id = RelId(self.u64()?);
        let src = NodeId(self.u64()?);
        let tgt = NodeId(self.u64()?);
        let rel_type = self.str()?;
        let props = self.props()?;
        Ok(RelState {
            id,
            src,
            tgt,
            rel_type,
            props,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn scalar_roundtrip() {
        let vals = [
            Value::Null,
            Value::Bool(true),
            Value::int(-42),
            Value::float(-0.0),
            Value::float(f64::NAN),
            Value::str("héllo"),
            Value::Node(NodeId(7)),
            Value::Rel(RelId(9)),
        ];
        for v in &vals {
            let mut buf = Vec::new();
            put_value(&mut buf, v);
            let mut r = Reader::new(&buf, "test");
            let back = r.value().unwrap();
            assert!(r.is_empty());
            assert_eq!(format!("{v:?}"), format!("{back:?}"), "exact round-trip");
        }
    }

    #[test]
    fn truncated_input_is_corrupt_not_panic() {
        let mut buf = Vec::new();
        put_value(&mut buf, &Value::list([Value::int(1), Value::str("abc")]));
        for cut in 0..buf.len() {
            let mut r = Reader::new(&buf[..cut], "trunc");
            assert!(r.value().is_err(), "cut at {cut} must error");
        }
    }

    #[test]
    fn absurd_counts_rejected_before_allocation() {
        // List with a claimed 2^31 elements but no bytes behind it.
        let mut buf = vec![5u8];
        put_u32(&mut buf, u32::MAX);
        let mut r = Reader::new(&buf, "bomb");
        assert!(matches!(r.value(), Err(StorageError::Corrupt { .. })));
    }

    #[test]
    fn deep_nesting_rejected() {
        // 1000 nested single-element lists.
        let mut buf = Vec::new();
        for _ in 0..1000 {
            buf.push(5);
            put_u32(&mut buf, 1);
        }
        buf.push(0); // innermost null
        let mut r = Reader::new(&buf, "deep");
        assert!(matches!(r.value(), Err(StorageError::Corrupt { .. })));
    }
}
