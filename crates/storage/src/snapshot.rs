//! Full-graph snapshot files.
//!
//! ## On-disk format
//!
//! ```text
//! file := magic body crc:u32
//! magic := "CYSNAP01"                         (8 bytes)
//! body  := generation:u64 next_batch_seq:u64
//!          node_slots:u64 rel_slots:u64
//!          node_count:u64 node_state*
//!          rel_count:u64  rel_state*
//! ```
//!
//! `next_batch_seq` is the WAL batch sequence number in force when the
//! snapshot was taken, so batch numbering stays monotonic across
//! checkpoints even when the paired WAL is still empty (or was never
//! created because the process died between snapshot publication and
//! WAL creation).
//!
//! The trailing CRC-32 covers the whole body, so a half-written snapshot
//! can never be mistaken for a valid one. Writes go to a temporary file
//! first, are fsynced, and then renamed into place — publication is
//! atomic on POSIX file systems. Rows are interner-independent (tokens as
//! strings); loading reconstructs the graph through
//! [`PropertyGraph::restore`], which validates consistency and rebuilds
//! all indexes canonically.

use crate::codec::{crc32, put_node_state, put_rel_state, put_u32, put_u64, Reader};
use crate::StorageError;
use cypher_graph::PropertyGraph;
use std::io::Write;
use std::path::Path;

/// The snapshot file magic (8 bytes, versioned).
pub const SNAP_MAGIC: &[u8; 8] = b"CYSNAP01";

/// Serializes `graph` into the snapshot format.
pub fn encode(graph: &PropertyGraph, generation: u64, next_batch_seq: u64) -> Vec<u8> {
    let mut body = Vec::new();
    put_u64(&mut body, generation);
    put_u64(&mut body, next_batch_seq);
    put_u64(&mut body, graph.node_slot_count() as u64);
    put_u64(&mut body, graph.rel_slot_count() as u64);
    let nodes = graph.export_nodes();
    put_u64(&mut body, nodes.len() as u64);
    for ns in &nodes {
        put_node_state(&mut body, ns);
    }
    let rels = graph.export_rels();
    put_u64(&mut body, rels.len() as u64);
    for rs in &rels {
        put_rel_state(&mut body, rs);
    }
    let mut out = Vec::with_capacity(SNAP_MAGIC.len() + body.len() + 4);
    out.extend_from_slice(SNAP_MAGIC);
    out.extend_from_slice(&body);
    put_u32(&mut out, crc32(&body));
    out
}

/// Decodes snapshot bytes into `(generation, next_batch_seq, graph)`.
pub fn decode(bytes: &[u8]) -> Result<(u64, u64, PropertyGraph), StorageError> {
    let min = SNAP_MAGIC.len() + 4;
    if bytes.len() < min {
        return Err(StorageError::corrupt("snapshot: too short", 0));
    }
    if &bytes[..SNAP_MAGIC.len()] != SNAP_MAGIC {
        return Err(StorageError::corrupt("snapshot: bad magic", 0));
    }
    let body = &bytes[SNAP_MAGIC.len()..bytes.len() - 4];
    let stored = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().unwrap());
    if crc32(body) != stored {
        return Err(StorageError::corrupt("snapshot: CRC mismatch", 0));
    }
    let mut r = Reader::new(body, "snapshot body");
    let generation = r.u64()?;
    let next_batch_seq = r.u64()?;
    let node_slots = r.u64()? as usize;
    let rel_slots = r.u64()? as usize;
    let node_count = r.u64()?;
    let mut nodes = Vec::new();
    for _ in 0..node_count {
        nodes.push(r.node_state()?);
    }
    let rel_count = r.u64()?;
    let mut rels = Vec::new();
    for _ in 0..rel_count {
        rels.push(r.rel_state()?);
    }
    if !r.is_empty() {
        return Err(StorageError::corrupt(
            "snapshot: trailing bytes",
            r.position() as u64,
        ));
    }
    let graph = PropertyGraph::restore(node_slots, rel_slots, nodes, rels)?;
    Ok((generation, next_batch_seq, graph))
}

/// Writes a snapshot atomically: temp file, fsync, rename.
pub fn save(
    path: &Path,
    graph: &PropertyGraph,
    generation: u64,
    next_batch_seq: u64,
) -> Result<(), StorageError> {
    let bytes = encode(graph, generation, next_batch_seq);
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    crate::sync_parent_dir(path);
    Ok(())
}

/// Loads and validates a snapshot file.
pub fn load(path: &Path) -> Result<(u64, u64, PropertyGraph), StorageError> {
    let bytes = std::fs::read(path)?;
    decode(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cypher_graph::Value;

    fn sample() -> PropertyGraph {
        let mut g = PropertyGraph::new();
        let a = g.add_node(&["Person"], [("name", Value::str("Ada"))]);
        let b = g.add_node(&["Person", "Admin"], [("age", Value::int(3))]);
        let c = g.add_node(&[], []);
        g.add_rel(a, b, "KNOWS", [("since", Value::int(1985))])
            .unwrap();
        let r = g.add_rel(b, c, "KNOWS", []).unwrap();
        // Leave tombstones so slot counts matter.
        g.delete_rel(r).unwrap();
        g.detach_delete_node(c).unwrap();
        g
    }

    #[test]
    fn roundtrip_preserves_canonical_state() {
        let g = sample();
        let bytes = encode(&g, 7, 42);
        let (gen, seq, back) = decode(&bytes).unwrap();
        assert_eq!(gen, 7);
        assert_eq!(seq, 42);
        assert_eq!(back.canonical_dump(), g.canonical_dump());
        // Tombstoned slots survive: fresh ids continue past them.
        assert_eq!(back.node_slot_count(), g.node_slot_count());
        assert_eq!(back.rel_slot_count(), g.rel_slot_count());
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let g = sample();
        let bytes = encode(&g, 1, 0);
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(
                decode(&bad).is_err(),
                "flip at byte {i} slipped past validation"
            );
        }
    }

    #[test]
    fn truncations_are_detected() {
        let g = sample();
        let bytes = encode(&g, 1, 0);
        for cut in 0..bytes.len() {
            assert!(decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn save_load_via_file() {
        let dir = std::env::temp_dir().join(format!("cypher-snap-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snapshot-0000000001.snap");
        let g = sample();
        save(&path, &g, 1, 5).unwrap();
        let (gen, seq, back) = load(&path).unwrap();
        assert_eq!(gen, 1);
        assert_eq!(seq, 5);
        assert_eq!(back.canonical_dump(), g.canonical_dump());
        assert!(
            !path.with_extension("tmp").exists(),
            "tmp file renamed away"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
