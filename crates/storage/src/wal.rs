//! The append-only write-ahead log.
//!
//! ## On-disk format
//!
//! ```text
//! file   := magic record*
//! magic  := "CYWAL002"                      (8 bytes)
//! record := len:u32 crc:u32 payload         (len = payload bytes, crc = CRC-32(payload))
//! payload := 0x01 change                    (one encoded Change)
//!          | 0x02 seq:u64 count:u32         (commit: batch seq + change count)
//!          | 0x03 first_seq:u64 count:u32   (group seal: `count` batches from `first_seq`)
//! ```
//!
//! Changes stream in mutation order; a **commit record** stages the
//! preceding changes as one batch, and a **group record** seals every
//! batch staged since the previous group as one durable unit (the
//! `Database` facade's group-commit queue writes one group per WAL
//! write+fsync — a group of one for sequential writers). Replay applies
//! batches only when their covering group record is intact: a crash
//! anywhere inside a group — between records, inside one, or before the
//! group record lands — leaves a torn tail, which replay discards by
//! truncating the file back to the last sealed group boundary. A group
//! is therefore all-or-nothing: recovery never yields a torn group, and
//! never a partially-applied member batch. Torn tails are expected (that
//! is what a crash looks like); corruption *before* the last sealed
//! group is not, and surfaces as [`StorageError::Corrupt`] instead of
//! silently dropping data.
//!
//! Logs written by the previous release (magic `CYWAL001` — same
//! framing, no group records) replay with each commit sealing its own
//! batch; the store upgrades such directories immediately after replay
//! (see [`WAL_MAGIC_V1`]). A `CYWAL0xx` magic of any *other* version is
//! reported as [`StorageError::UnsupportedVersion`], never as
//! corruption.

use crate::codec::{crc32, put_change, put_u32, put_u64, Reader};
use crate::StorageError;
use cypher_graph::change::Change;
use cypher_graph::{NodeId, PropertyGraph, RelId};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;

/// The WAL file magic (8 bytes, versioned).
pub const WAL_MAGIC: &[u8; 8] = b"CYWAL002";

/// The previous format's magic. Version 1 had no group records: each
/// commit record sealed its own batch — exactly a group of one under
/// today's semantics — so [`replay`] still reads these logs.
/// `Store::open` then upgrades the directory (checkpoint + fresh
/// current-format log) so the writer never appends group records into a
/// v1 file.
pub const WAL_MAGIC_V1: &[u8; 8] = b"CYWAL001";

/// Checks a WAL file's magic. `Ok(version)` for formats replay
/// understands; a well-formed `CYWAL0xx` magic of any other version is
/// the dedicated [`StorageError::UnsupportedVersion`] (a log written by
/// a different release is not corruption); anything else is
/// [`StorageError::Corrupt`]. The caller guarantees `buf` holds at
/// least the 8 magic bytes.
fn check_magic(buf: &[u8]) -> Result<u32, StorageError> {
    let magic = &buf[..WAL_MAGIC.len()];
    if magic == WAL_MAGIC {
        return Ok(2);
    }
    if magic == WAL_MAGIC_V1 {
        return Ok(1);
    }
    if let Some(v) = magic
        .strip_prefix(b"CYWAL")
        .and_then(|digits| std::str::from_utf8(digits).ok())
        .and_then(|digits| digits.parse::<u32>().ok())
    {
        return Err(StorageError::UnsupportedVersion(v));
    }
    Err(StorageError::corrupt("wal: bad magic", 0))
}

/// Payload kind byte: one change record.
pub const KIND_CHANGE: u8 = 0x01;
/// Payload kind byte: a batch commit (stages the preceding changes).
pub const KIND_COMMIT: u8 = 0x02;
/// Payload kind byte: a group seal (makes the staged batches durable).
pub const KIND_GROUP: u8 = 0x03;

/// Frames a payload as one WAL record: length, CRC-32, payload.
pub fn frame_record(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 8);
    put_u32(&mut out, payload.len() as u32);
    put_u32(&mut out, crc32(payload));
    out.extend_from_slice(payload);
    out
}

/// Reads the record frame starting at `pos`, returning `(payload,
/// end_offset)`. Any inconsistency — header past EOF, length past EOF,
/// CRC mismatch — is reported as [`StorageError::Corrupt`] at `pos`.
pub fn read_frame(buf: &[u8], pos: usize) -> Result<(&[u8], usize), StorageError> {
    let bad = |what: &str| StorageError::corrupt(format!("wal record: {what}"), pos as u64);
    if buf.len() - pos < 8 {
        return Err(bad("truncated header"));
    }
    let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().unwrap());
    let body_start = pos + 8;
    if len == 0 || len > buf.len() - body_start {
        return Err(bad("length past end of file"));
    }
    let payload = &buf[body_start..body_start + len];
    if crc32(payload) != crc {
        return Err(bad("CRC mismatch"));
    }
    Ok((payload, body_start + len))
}

/// Is a frame failure at `pos` consistent with a **torn write** (which
/// can only damage a suffix of the file), as opposed to corruption in
/// the middle of data that was once durably written?
///
/// Torn shapes: a header cut off by EOF; a zero-filled tail (a
/// partially written page); a claimed extent running past EOF **with no
/// CRC-valid frame anywhere after it** (a rotted length field also
/// claims an impossible extent, but then the record's real successors
/// still frame correctly — resync finds them and the failure is
/// corruption); a CRC mismatch on a record whose extent ends exactly at
/// EOF. Anything else means bytes before intact committed data have
/// rotted, and replay must refuse rather than silently truncate the
/// batches after it.
fn frame_failure_is_torn_tail(buf: &[u8], pos: usize) -> bool {
    if buf.len() - pos < 8 {
        return true;
    }
    let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
    if len == 0 {
        // A half-flushed page leaves zeros; genuine corruption leaves a
        // zero length with live data after it.
        return buf[pos..].iter().all(|&b| b == 0);
    }
    let body_start = pos + 8;
    if len > buf.len() - body_start {
        return !has_valid_frame_after(buf, pos + 1);
    }
    body_start + len == buf.len()
}

/// Scans forward byte-by-byte for any offset at which a CRC-valid frame
/// begins. A genuine tear is at most one partial batch, so this scan is
/// tiny in the honest case; a hit after a failed frame proves the file
/// continues past the failure — i.e. mid-file corruption, not a tear.
/// (A 2⁻³² per-offset false positive turns a real tear into a loud
/// refusal — the safe direction.)
fn has_valid_frame_after(buf: &[u8], from: usize) -> bool {
    (from..buf.len().saturating_sub(8)).any(|off| read_frame(buf, off).is_ok())
}

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

/// Appends change batches to a WAL file.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    bytes: u64,
    next_seq: u64,
    /// Set when an append or sync failed: the file may end in a partial
    /// frame, and appending more records *after* that garbage would turn
    /// a recoverable torn tail into unrecoverable mid-file corruption.
    /// A damaged writer refuses all further appends.
    damaged: bool,
    /// Test double: number of upcoming `sync` calls forced to fail.
    fail_syncs: u32,
}

impl WalWriter {
    /// Creates a fresh WAL at `path` (truncating anything there) and
    /// writes the magic. `first_seq` seeds the batch sequence so that
    /// batch numbers stay monotonic across checkpoints.
    pub fn create(path: &Path, first_seq: u64) -> Result<WalWriter, StorageError> {
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        file.write_all(WAL_MAGIC)?;
        file.sync_all()?;
        crate::sync_parent_dir(path);
        Ok(WalWriter {
            file,
            bytes: WAL_MAGIC.len() as u64,
            next_seq: first_seq,
            damaged: false,
            fail_syncs: 0,
        })
    }

    /// Opens an existing WAL for appending after replay validated (and
    /// possibly truncated) it to `valid_len` bytes.
    pub fn open_append(
        path: &Path,
        valid_len: u64,
        next_seq: u64,
    ) -> Result<WalWriter, StorageError> {
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(WalWriter {
            file,
            bytes: valid_len,
            next_seq,
            damaged: false,
            fail_syncs: 0,
        })
    }

    /// Appends one sealed commit group — every member batch as change
    /// records plus a commit record, then one group record covering them
    /// all — as a single contiguous write handed to the OS. Returns the
    /// sequence number of the group's first batch; members receive
    /// consecutive seqs in slice order.
    ///
    /// Durability scope: a sealed group survives **process** death (the
    /// bytes live in the kernel page cache after `write(2)` returns); it
    /// is not yet fsynced, so an OS crash or power loss may still tear
    /// it — which replay then handles as a torn tail covering the whole
    /// group. Call [`WalWriter::sync`] (or checkpoint) to force stable
    /// storage.
    pub fn append_group(&mut self, batches: &[&[Change]]) -> Result<u64, StorageError> {
        if self.damaged {
            return Err(StorageError::corrupt(
                "wal writer disabled by an earlier append/sync failure",
                self.bytes,
            ));
        }
        assert!(!batches.is_empty(), "a commit group has at least one batch");
        let first_seq = self.next_seq;
        let mut out = Vec::new();
        let mut payload = Vec::new();
        for (i, changes) in batches.iter().enumerate() {
            for c in *changes {
                payload.clear();
                payload.push(KIND_CHANGE);
                put_change(&mut payload, c);
                out.extend_from_slice(&frame_record(&payload));
            }
            payload.clear();
            payload.push(KIND_COMMIT);
            put_u64(&mut payload, first_seq + i as u64);
            put_u32(&mut payload, changes.len() as u32);
            out.extend_from_slice(&frame_record(&payload));
        }
        payload.clear();
        payload.push(KIND_GROUP);
        put_u64(&mut payload, first_seq);
        put_u32(&mut payload, batches.len() as u32);
        out.extend_from_slice(&frame_record(&payload));
        if let Err(e) = self.file.write_all(&out).and_then(|()| self.file.flush()) {
            // The file may now end in a partial frame. Refuse further
            // appends: recovery truncates a torn *tail* cleanly, but
            // valid frames written after garbage would read as mid-file
            // corruption and make the whole log refuse to open.
            self.damaged = true;
            return Err(e.into());
        }
        self.bytes += out.len() as u64;
        self.next_seq = first_seq + batches.len() as u64;
        Ok(first_seq)
    }

    /// Appends one atomic batch as a group of one. Returns its seq.
    pub fn append_batch(&mut self, changes: &[Change]) -> Result<u64, StorageError> {
        self.append_group(&[changes])
    }

    /// Bytes written so far (the compaction trigger reads this).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// The sequence number the next batch will receive (equivalently, the
    /// number of batches committed so far).
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Forces written data to stable storage. After a failed fsync the
    /// kernel's page-cache state is unknowable, so the writer is
    /// disabled (the classic fsync-error rule: never retry blindly).
    pub fn sync(&mut self) -> Result<(), StorageError> {
        if self.fail_syncs > 0 {
            self.fail_syncs -= 1;
            self.damaged = true;
            return Err(std::io::Error::other("injected fsync failure").into());
        }
        if let Err(e) = self.file.sync_all() {
            self.damaged = true;
            return Err(e.into());
        }
        Ok(())
    }

    /// A duplicate handle onto the log file, for fsyncing off-thread:
    /// `sync_all` on the dup reaches the same inode, so the pipelined
    /// fsync scheduler can flush group N while the writer appends N+1.
    pub fn sync_handle(&self) -> Result<File, StorageError> {
        Ok(self.file.try_clone()?)
    }

    /// Cuts the file back to `len` bytes — the group-commit pipeline's
    /// cleanup after a failed seal, restoring disk to the last durable
    /// group so it never holds more than memory acknowledged. The writer
    /// stays damaged if it already was; truncation does not re-arm it.
    ///
    /// A rollback must only ever *shrink* the log: `set_len` past EOF
    /// zero-extends, and a zero-filled tail beyond the durable boundary
    /// parses as garbage on replay. A target past the current length
    /// (e.g. a second failed group whose rollback point was already cut
    /// by the first failure's truncation) is therefore refused.
    pub fn truncate_to(&mut self, len: u64) -> Result<(), StorageError> {
        if len > self.bytes {
            return Err(StorageError::corrupt(
                format!(
                    "wal rollback to {len} bytes would extend the {}-byte log",
                    self.bytes
                ),
                self.bytes,
            ));
        }
        self.file.set_len(len)?;
        self.bytes = len;
        Ok(())
    }

    /// Test double: forces the next `n` calls to [`WalWriter::sync`] to
    /// fail (and damage the writer) without touching the file.
    #[doc(hidden)]
    pub fn inject_sync_failures(&mut self, n: u32) {
        self.fail_syncs = n;
    }
}

// ---------------------------------------------------------------------------
// Replay
// ---------------------------------------------------------------------------

/// What replay found and did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplaySummary {
    /// Committed batches applied to the graph.
    pub batches_applied: u64,
    /// Sealed commit groups those batches arrived in.
    pub groups_applied: u64,
    /// Change records inside those batches.
    pub changes_applied: usize,
    /// Bytes cut off the end of the file (torn or unsealed tail).
    pub truncated_bytes: u64,
    /// Decoded-but-unsealed change records the truncation discarded
    /// (loose changes plus staged batches no group record covered).
    pub discarded_changes: usize,
    /// File length after truncation — where the writer resumes.
    pub valid_len: u64,
    /// The sequence number the next batch should use.
    pub next_seq: u64,
    /// On-disk format version the log was written in (see
    /// [`WAL_MAGIC_V1`]; the store upgrades version-1 directories right
    /// after replay).
    pub format_version: u32,
}

/// Replays a WAL into `graph`, truncating any torn or unsealed tail.
///
/// Total by construction: corrupt *sealed* data (a group whose records
/// are intact but whose application the graph rejects, e.g. a dangling
/// id) is a hard [`StorageError`]; everything after the last intact
/// group record is treated as a crash artifact and truncated away —
/// commit groups are all-or-nothing, so a crash mid-group discards every
/// member batch, never a prefix of one.
pub fn replay(path: &Path, graph: &mut PropertyGraph) -> Result<ReplaySummary, StorageError> {
    replay_with_threads(path, graph, 1)
}

/// [`replay`] with an index-maintenance thread budget: large replays
/// defer index upkeep and fan it out across shards at the end (see
/// `PropertyGraph::finish_bulk_index_maintenance`), which is
/// state-identical to incremental maintenance because deferred ops are
/// applied per disjoint posting unit in emission order.
pub fn replay_with_threads(
    path: &Path,
    graph: &mut PropertyGraph,
    threads: usize,
) -> Result<ReplaySummary, StorageError> {
    let buf = std::fs::read(path)?;
    let mut summary = ReplaySummary::default();
    if buf.len() < WAL_MAGIC.len() {
        // A crash while writing the very header: nothing was ever
        // committed. Rewrite the file as a fresh, empty log.
        let writer = WalWriter::create(path, 0)?;
        summary.truncated_bytes = buf.len() as u64;
        summary.valid_len = writer.bytes();
        summary.format_version = 2;
        return Ok(summary);
    }
    let version = check_magic(&buf)?;
    summary.format_version = version;

    let bulk = threads > 1;
    if bulk {
        graph.begin_bulk_index_maintenance();
    }
    let mut pos = WAL_MAGIC.len();
    let mut last_sealed_end = pos;
    let mut pending: Vec<Change> = Vec::new();
    let mut staged: Vec<(u64, Vec<Change>)> = Vec::new();
    loop {
        if pos == buf.len() {
            break;
        }
        let (payload, end) = match read_frame(&buf, pos) {
            Ok(ok) => ok,
            // A frame failure that touches EOF is what a crash looks
            // like: truncate. One with intact data after it means bytes
            // that were once durably written have rotted — surface it
            // instead of silently cutting off every later group.
            Err(_) if frame_failure_is_torn_tail(&buf, pos) => break,
            Err(e) => return Err(e),
        };
        enum Decoded {
            Change(Change),
            Commit { seq: u64, count: usize },
            Group { first_seq: u64, count: usize },
        }
        let mut r = Reader::new(payload, "wal payload");
        let decoded: Result<Decoded, StorageError> = (|| match r.u8()? {
            KIND_CHANGE => Ok(Decoded::Change(r.change()?)),
            KIND_COMMIT => {
                let seq = r.u64()?;
                let count = r.u32()? as usize;
                Ok(Decoded::Commit { seq, count })
            }
            // Group records exist only in version 2; in a v1 log a 0x03
            // kind byte is garbage and falls through to "unknown kind".
            KIND_GROUP if version == 2 => {
                let first_seq = r.u64()?;
                let count = r.u32()? as usize;
                Ok(Decoded::Group { first_seq, count })
            }
            _ => Err(StorageError::corrupt(
                "wal: unknown record kind",
                pos as u64,
            )),
        })();
        let mut seal = false;
        match decoded {
            Ok(Decoded::Change(c)) => pending.push(c),
            Ok(Decoded::Commit { seq, count }) => {
                if count != pending.len() {
                    let e = StorageError::corrupt(
                        format!(
                            "wal commit {seq}: claims {count} changes, found {}",
                            pending.len()
                        ),
                        pos as u64,
                    );
                    // A mismatched final commit is indistinguishable from
                    // a torn write (its change records were the casualty);
                    // anywhere else it is genuine corruption.
                    if end == buf.len() {
                        break;
                    }
                    return Err(e);
                }
                staged.push((seq, std::mem::take(&mut pending)));
                // Version 1 had no group records: every commit seals its
                // own batch, a group of one.
                seal = version == 1;
            }
            Ok(Decoded::Group { first_seq, count }) => {
                // The group record must cover exactly the batches staged
                // since the previous group: right count, right first seq,
                // consecutive seqs, no loose changes after the last
                // commit. A mismatched *final* record is a torn seal;
                // anywhere else the sealed history has rotted.
                let coherent = count > 0
                    && pending.is_empty()
                    && staged.len() == count
                    && staged
                        .iter()
                        .enumerate()
                        .all(|(i, (seq, _))| *seq == first_seq + i as u64);
                if !coherent {
                    let e = StorageError::corrupt(
                        format!(
                            "wal group at {first_seq}: claims {count} staged batches, found {}",
                            staged.len()
                        ),
                        pos as u64,
                    );
                    if end == buf.len() {
                        break;
                    }
                    return Err(e);
                }
                seal = true;
            }
            Err(e) => {
                // Decode errors never mutate the graph: a final record
                // that frames but does not decode is treated as torn.
                if end == buf.len() {
                    break;
                }
                return Err(e);
            }
        }
        if seal {
            // Application failures are *always* hard errors — changes
            // mutate the graph as they apply, so a partially applied
            // group must never be reported as a clean recovery.
            for (seq, changes) in staged.drain(..) {
                for c in changes {
                    apply_change(graph, &c)?;
                    summary.changes_applied += 1;
                }
                summary.batches_applied += 1;
                summary.next_seq = seq + 1;
            }
            summary.groups_applied += 1;
            last_sealed_end = end;
        }
        pos = end;
    }
    if bulk {
        graph.finish_bulk_index_maintenance(threads);
    }

    summary.discarded_changes = pending.len() + staged.iter().map(|(_, c)| c.len()).sum::<usize>();
    summary.truncated_bytes = (buf.len() - last_sealed_end) as u64;
    summary.valid_len = last_sealed_end as u64;
    if summary.truncated_bytes > 0 {
        let f = OpenOptions::new().write(true).open(path)?;
        f.set_len(summary.valid_len)?;
        f.sync_all()?;
    }
    Ok(summary)
}

/// Applies one change record through the graph's public mutators,
/// re-interning every token string. Total: dangling ids, duplicate ids
/// and impossible deletions come back as structured errors, never panics.
pub fn apply_change(g: &mut PropertyGraph, c: &Change) -> Result<(), StorageError> {
    match c {
        Change::AddNode { id, labels, props } => {
            let expected = NodeId(g.node_slot_count() as u64);
            if *id != expected {
                return Err(StorageError::corrupt(
                    format!("AddNode out of sequence: got {id}, expected {expected}"),
                    0,
                ));
            }
            let labels: Vec<_> = labels.iter().map(|l| g.intern(l)).collect();
            let props: Vec<_> = props
                .iter()
                .map(|(k, v)| (g.intern(k), v.clone()))
                .collect();
            g.add_node_syms(labels, props);
            Ok(())
        }
        Change::AddRel {
            id,
            src,
            tgt,
            rel_type,
            props,
        } => {
            let expected = RelId(g.rel_slot_count() as u64);
            if *id != expected {
                return Err(StorageError::corrupt(
                    format!("AddRel out of sequence: got {id}, expected {expected}"),
                    0,
                ));
            }
            let t = g.intern(rel_type);
            let props: Vec<_> = props
                .iter()
                .map(|(k, v)| (g.intern(k), v.clone()))
                .collect();
            g.add_rel_syms(*src, *tgt, t, props)?;
            Ok(())
        }
        Change::DeleteNode { id } => Ok(g.delete_node(*id)?),
        Change::DeleteRel { id } => Ok(g.delete_rel(*id)?),
        Change::SetNodeProp { id, key, value } => {
            let k = g.intern(key);
            Ok(g.set_node_prop(*id, k, value.clone())?)
        }
        Change::SetRelProp { id, key, value } => {
            let k = g.intern(key);
            Ok(g.set_rel_prop(*id, k, value.clone())?)
        }
        Change::RemoveNodeProp { id, key } => {
            let k = g.intern(key);
            Ok(g.remove_node_prop(*id, k)?)
        }
        Change::ReplaceNodeProps { id, props } => {
            let props: Vec<_> = props
                .iter()
                .map(|(k, v)| (g.intern(k), v.clone()))
                .collect();
            Ok(g.replace_node_props(*id, props)?)
        }
        Change::AddLabel { id, label } => {
            let l = g.intern(label);
            Ok(g.add_label(*id, l)?)
        }
        Change::RemoveLabel { id, label } => {
            let l = g.intern(label);
            Ok(g.remove_label(*id, l)?)
        }
    }
}

// ---------------------------------------------------------------------------
// Scanning (tools & the kill-point sweep harness)
// ---------------------------------------------------------------------------

/// One parsed record of a WAL file, as reported by [`scan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecordInfo {
    /// Byte offset of the record's frame header.
    pub start: u64,
    /// Byte offset one past the record's last byte.
    pub end: u64,
    /// The payload kind ([`KIND_CHANGE`], [`KIND_COMMIT`] or
    /// [`KIND_GROUP`]).
    pub kind: u8,
    /// Number of commit records at or before this record (batches
    /// *staged*, whether or not a group record has sealed them yet).
    pub commits_through: u64,
    /// Number of batches covered by group records at or before this
    /// record — what replay would recover from a file cut at `end`.
    pub durable_through: u64,
}

/// Parses a WAL file's record structure without applying anything —
/// the kill-point sweep uses the offsets as truncation targets.
pub fn scan(path: &Path) -> Result<Vec<WalRecordInfo>, StorageError> {
    let buf = std::fs::read(path)?;
    if buf.len() < WAL_MAGIC.len() {
        return Err(StorageError::corrupt("wal: bad magic", 0));
    }
    let version = check_magic(&buf)?;
    let mut out = Vec::new();
    let mut pos = WAL_MAGIC.len();
    let mut commits = 0u64;
    let mut durable = 0u64;
    while pos < buf.len() {
        let (payload, end) = read_frame(&buf, pos)?;
        let kind = *payload.first().unwrap_or(&0);
        if kind == KIND_COMMIT {
            commits += 1;
            if version == 1 {
                // v1 has no group records: a commit is its own seal.
                durable = commits;
            }
        }
        if kind == KIND_GROUP {
            // A well-formed log seals every staged batch with its next
            // group record, so "durable through here" is simply every
            // commit seen so far.
            durable = commits;
        }
        out.push(WalRecordInfo {
            start: pos as u64,
            end: end as u64,
            kind,
            commits_through: commits,
            durable_through: durable,
        });
        pos = end;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cypher_graph::Value;
    use std::sync::Arc;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("cypher-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn sample_batch() -> Vec<Change> {
        vec![
            Change::AddNode {
                id: NodeId(0),
                labels: vec![Arc::from("A")],
                props: vec![(Arc::from("v"), Value::int(1))],
            },
            Change::AddNode {
                id: NodeId(1),
                labels: vec![],
                props: vec![],
            },
            Change::AddRel {
                id: RelId(0),
                src: NodeId(0),
                tgt: NodeId(1),
                rel_type: Arc::from("X"),
                props: vec![],
            },
        ]
    }

    #[test]
    fn write_then_replay_roundtrip() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("wal.log");
        let mut w = WalWriter::create(&path, 0).unwrap();
        w.append_batch(&sample_batch()).unwrap();
        w.append_batch(&[Change::SetNodeProp {
            id: NodeId(1),
            key: Arc::from("v"),
            value: Value::int(9),
        }])
        .unwrap();
        let mut g = PropertyGraph::new();
        let s = replay(&path, &mut g).unwrap();
        assert_eq!(s.batches_applied, 2);
        assert_eq!(s.groups_applied, 2);
        assert_eq!(s.changes_applied, 4);
        assert_eq!(s.truncated_bytes, 0);
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.rel_count(), 1);
        assert_eq!(g.node_prop_by_name(NodeId(1), "v"), Some(&Value::int(9)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn uncommitted_tail_is_discarded_and_truncated() {
        let dir = tmpdir("tail");
        let path = dir.join("wal.log");
        let mut w = WalWriter::create(&path, 0).unwrap();
        w.append_batch(&sample_batch()).unwrap();
        let committed_len = w.bytes();
        // Hand-write a change record with no commit after it.
        let mut payload = vec![KIND_CHANGE];
        put_change(&mut payload, &Change::DeleteRel { id: RelId(0) });
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&frame_record(&payload)).unwrap();
        drop(f);

        let mut g = PropertyGraph::new();
        let s = replay(&path, &mut g).unwrap();
        assert_eq!(s.batches_applied, 1);
        assert_eq!(s.discarded_changes, 1);
        assert!(s.truncated_bytes > 0);
        assert_eq!(s.valid_len, committed_len);
        assert_eq!(g.rel_count(), 1, "uncommitted delete not applied");
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            committed_len,
            "file truncated back to the last commit"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mid_record_tear_recovers_prefix() {
        let dir = tmpdir("tear");
        let path = dir.join("wal.log");
        let mut w = WalWriter::create(&path, 0).unwrap();
        w.append_batch(&sample_batch()).unwrap();
        let good = w.bytes();
        w.append_batch(&[Change::DeleteRel { id: RelId(0) }])
            .unwrap();
        // Tear the file in the middle of the second batch.
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(good + 3).unwrap();
        drop(f);
        let mut g = PropertyGraph::new();
        let s = replay(&path, &mut g).unwrap();
        assert_eq!(s.batches_applied, 1);
        assert_eq!(s.valid_len, good);
        assert_eq!(g.rel_count(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn committed_corruption_is_a_hard_error() {
        let dir = tmpdir("hard");
        let path = dir.join("wal.log");
        let mut w = WalWriter::create(&path, 0).unwrap();
        // A batch whose application must fail: deleting a rel that never
        // existed. The frame itself is intact, and more data follows, so
        // this is corruption, not a torn tail.
        w.append_batch(&[Change::DeleteRel { id: RelId(7) }])
            .unwrap();
        w.append_batch(&sample_batch()).unwrap();
        let mut g = PropertyGraph::new();
        assert!(matches!(
            replay(&path, &mut g),
            Err(StorageError::Graph(_) | StorageError::Corrupt { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scan_reports_boundaries() {
        let dir = tmpdir("scan");
        let path = dir.join("wal.log");
        let mut w = WalWriter::create(&path, 0).unwrap();
        w.append_batch(&sample_batch()).unwrap();
        w.append_batch(&sample_batch()[1..2]).unwrap();
        let records = scan(&path).unwrap();
        // 3 changes + commit + group, then 1 change + commit + group.
        assert_eq!(records.len(), 8);
        assert_eq!(records[3].kind, KIND_COMMIT);
        assert_eq!(records[3].commits_through, 1);
        assert_eq!(records[3].durable_through, 0, "staged but not yet sealed");
        assert_eq!(records[4].kind, KIND_GROUP);
        assert_eq!(records[4].durable_through, 1);
        assert_eq!(records[6].kind, KIND_COMMIT);
        assert_eq!(records[6].commits_through, 2);
        assert_eq!(records[7].kind, KIND_GROUP);
        assert_eq!(records[7].durable_through, 2);
        assert_eq!(records[0].start, WAL_MAGIC.len() as u64);
        assert_eq!(records[7].end, w.bytes());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn multi_batch_group_replays_every_member_with_consecutive_seqs() {
        let dir = tmpdir("group");
        let path = dir.join("wal.log");
        let mut w = WalWriter::create(&path, 0).unwrap();
        let update = [Change::SetNodeProp {
            id: NodeId(1),
            key: Arc::from("v"),
            value: Value::int(9),
        }];
        let first = w.append_group(&[&sample_batch(), &update]).unwrap();
        assert_eq!(first, 0);
        assert_eq!(w.next_seq(), 2);
        let mut g = PropertyGraph::new();
        let s = replay(&path, &mut g).unwrap();
        assert_eq!(s.batches_applied, 2);
        assert_eq!(s.groups_applied, 1);
        assert_eq!(s.next_seq, 2);
        assert_eq!(g.node_prop_by_name(NodeId(1), "v"), Some(&Value::int(9)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn staged_batches_without_a_group_record_are_discarded_whole() {
        // A crash after the member records land but before the group
        // record does must roll back *every* member batch — the group is
        // all-or-nothing, even though each member's commit record is
        // intact on disk.
        let dir = tmpdir("unsealed");
        let path = dir.join("wal.log");
        let mut w = WalWriter::create(&path, 0).unwrap();
        w.append_batch(&sample_batch()).unwrap();
        let sealed_len = w.bytes();
        w.append_group(&[
            &[Change::SetNodeProp {
                id: NodeId(0),
                key: Arc::from("v"),
                value: Value::int(2),
            }],
            &[Change::DeleteRel { id: RelId(0) }],
        ])
        .unwrap();
        // Cut the second group's seal record off (keep its commits).
        let records = scan(&path).unwrap();
        let last_group_start = records
            .iter()
            .rev()
            .find(|r| r.kind == KIND_GROUP)
            .unwrap()
            .start;
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(last_group_start).unwrap();
        drop(f);

        let mut g = PropertyGraph::new();
        let s = replay(&path, &mut g).unwrap();
        assert_eq!(s.batches_applied, 1, "only the sealed group recovered");
        assert_eq!(s.groups_applied, 1);
        assert_eq!(s.discarded_changes, 2, "both staged member batches dropped");
        assert_eq!(s.valid_len, sealed_len);
        assert_eq!(s.next_seq, 1);
        assert_eq!(g.rel_count(), 1, "unsealed delete not applied");
        assert_eq!(g.node_prop_by_name(NodeId(0), "v"), Some(&Value::int(1)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncate_never_extends_the_file() {
        let dir = tmpdir("noextend");
        let path = dir.join("wal.log");
        let mut w = WalWriter::create(&path, 0).unwrap();
        let first = w.bytes();
        w.append_batch(&sample_batch()).unwrap();
        let sealed = w.bytes();
        // A rollback target past EOF (a stale wal_len_before from a
        // group whose bytes a prior rollback already cut) must refuse:
        // set_len would zero-extend the log past the durable boundary.
        assert!(w.truncate_to(sealed + 64).is_err());
        assert_eq!(w.bytes(), sealed, "refused rollback leaves state alone");
        assert_eq!(std::fs::metadata(&path).unwrap().len(), sealed);
        // Shrinking (the legitimate direction) still works.
        w.truncate_to(first).unwrap();
        assert_eq!(w.bytes(), first);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), first);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Hand-writes a version-1 log: magic `CYWAL001`, then for each
    /// batch its change records followed by a commit record — no group
    /// records (they did not exist in v1).
    fn write_v1_log(path: &Path, batches: &[Vec<Change>]) {
        let mut buf = Vec::new();
        buf.extend_from_slice(WAL_MAGIC_V1);
        let mut payload = Vec::new();
        for (seq, changes) in batches.iter().enumerate() {
            for c in changes {
                payload.clear();
                payload.push(KIND_CHANGE);
                put_change(&mut payload, c);
                buf.extend_from_slice(&frame_record(&payload));
            }
            payload.clear();
            payload.push(KIND_COMMIT);
            put_u64(&mut payload, seq as u64);
            put_u32(&mut payload, changes.len() as u32);
            buf.extend_from_slice(&frame_record(&payload));
        }
        std::fs::write(path, &buf).unwrap();
    }

    #[test]
    fn v1_log_replays_commits_as_groups_of_one() {
        let dir = tmpdir("v1");
        let path = dir.join("wal.log");
        let update = vec![Change::SetNodeProp {
            id: NodeId(1),
            key: Arc::from("v"),
            value: Value::int(9),
        }];
        write_v1_log(&path, &[sample_batch(), update]);
        // An uncommitted trailing change is still a discardable tail.
        let mut payload = vec![KIND_CHANGE];
        put_change(&mut payload, &Change::DeleteRel { id: RelId(0) });
        let committed_len = std::fs::metadata(&path).unwrap().len();
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&frame_record(&payload)).unwrap();
        drop(f);

        let mut g = PropertyGraph::new();
        let s = replay(&path, &mut g).unwrap();
        assert_eq!(s.format_version, 1);
        assert_eq!(s.batches_applied, 2);
        assert_eq!(s.groups_applied, 2, "each v1 commit is a group of one");
        assert_eq!(s.next_seq, 2);
        assert_eq!(s.discarded_changes, 1);
        assert_eq!(s.valid_len, committed_len);
        assert_eq!(g.rel_count(), 1, "uncommitted delete not applied");
        assert_eq!(g.node_prop_by_name(NodeId(1), "v"), Some(&Value::int(9)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn future_wal_version_is_a_dedicated_error_not_corruption() {
        let dir = tmpdir("future");
        let path = dir.join("wal.log");
        std::fs::write(&path, b"CYWAL007").unwrap();
        let mut g = PropertyGraph::new();
        assert!(matches!(
            replay(&path, &mut g),
            Err(StorageError::UnsupportedVersion(7))
        ));
        assert!(matches!(
            scan(&path),
            Err(StorageError::UnsupportedVersion(7))
        ));
        // A magic that is not a CYWAL version at all stays "corrupt".
        std::fs::write(&path, b"NOTAWAL!").unwrap();
        assert!(matches!(
            replay(&path, &mut g),
            Err(StorageError::Corrupt { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_sync_failure_damages_the_writer() {
        let dir = tmpdir("failsync");
        let path = dir.join("wal.log");
        let mut w = WalWriter::create(&path, 0).unwrap();
        w.append_batch(&sample_batch()).unwrap();
        w.inject_sync_failures(1);
        assert!(w.sync().is_err(), "injected failure surfaces");
        assert!(
            w.append_batch(&sample_batch()[1..2]).is_err(),
            "writer is disabled after a failed fsync"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
