//! The `open`/`recover`/`commit`/`checkpoint` lifecycle tying WAL and
//! snapshots together.
//!
//! ## Directory layout
//!
//! ```text
//! <dir>/snapshot-<generation>.snap    full graph at some point in time
//! <dir>/wal-<generation>.log          batches committed since that snapshot
//! ```
//!
//! Generations pair a snapshot with the WAL that continues it. Recovery
//! loads the **latest valid** snapshot (generation 0 means "the empty
//! graph", which has no snapshot file) and replays its paired WAL,
//! truncating any torn tail. A checkpoint publishes snapshot `g+1`
//! atomically, starts the empty `wal-(g+1).log`, then deletes the old
//! generation's files — a crash at any point leaves at least one
//! consistent `(snapshot, wal)` pair on disk.

use crate::{snapshot, wal, StorageError, TxnId};
use cypher_graph::change::Change;
use cypher_graph::PropertyGraph;
use std::path::{Path, PathBuf};

/// What recovery found when a store was opened.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Generation of the snapshot that was loaded (0 = started empty).
    pub snapshot_generation: u64,
    /// Committed WAL batches replayed on top of the snapshot.
    pub batches_replayed: u64,
    /// Sealed commit groups those batches arrived in.
    pub groups_replayed: u64,
    /// Individual change records inside those batches.
    pub changes_replayed: usize,
    /// Bytes of torn/uncommitted WAL tail that were truncated.
    pub truncated_bytes: u64,
    /// Decoded-but-uncommitted changes the truncation discarded.
    pub discarded_changes: usize,
}

/// Receipt for one sealed commit group (see [`Store::commit_group`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupReceipt {
    /// Batch seq of the group's first member; members are consecutive.
    pub first_seq: TxnId,
    /// Number of member batches in the group.
    pub batches: u32,
    /// WAL length before the group was appended — the rollback target
    /// if the group's fsync fails.
    pub wal_len_before: u64,
}

/// A durable store rooted at one data directory.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    generation: u64,
    wal: wal::WalWriter,
    report: RecoveryReport,
    /// Held for the store's lifetime; releases the `LOCK` file on drop.
    _lock: DirLock,
    /// Set when a failed checkpoint left the on-disk generation state
    /// ambiguous (a newer snapshot published, but its WAL missing and
    /// the old snapshot not restorable as authoritative). A poisoned
    /// store refuses further commits/checkpoints: committing to the old
    /// WAL would be silently swept by the next recovery.
    poisoned: bool,
}

/// The single-writer guard: an exclusive **kernel advisory lock**
/// (`flock`-style, via [`std::fs::File::try_lock`]) on the `LOCK` file,
/// whose content is the holder's pid for diagnostics. Two writers
/// appending to one WAL would interleave entity ids and destroy the log,
/// so [`Store::open`] refuses while another open descriptor holds the
/// lock.
///
/// Mutual exclusion lives entirely in the kernel lock, which makes the
/// classic pid-file hazards structurally impossible:
///
/// * **stale locks cannot exist** — the kernel releases the lock the
///   instant the holding process dies, however it dies, so takeover of a
///   dead holder is automatic and race-free (the earlier protocol
///   checked the recorded pid against `/proc` and then rewrote the file
///   non-atomically: two processes could both judge the holder dead and
///   both claim the lock — and even an atomic rename-away-then-recreate
///   claim can be raced by a contender that read the stale pid just
///   before the winner's new lock appeared, stealing a *live* lock);
/// * **partial content cannot mislead** — the pid in the file is only
///   ever read to decorate the `Locked` error; an unreadable pid
///   degrades the message, never the exclusion.
///
/// The file itself is deliberately never unlinked (locks attach to the
/// inode; unlink-on-release would let one contender lock a doomed inode
/// while another creates — and locks — a fresh file at the same path).
#[derive(Debug)]
struct DirLock {
    /// Holding this descriptor open *is* holding the lock; dropping it
    /// releases the kernel lock.
    _file: std::fs::File,
}

impl DirLock {
    fn acquire(dir: &Path) -> Result<DirLock, StorageError> {
        let path = dir.join("LOCK");
        let mut file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        match file.try_lock() {
            Ok(()) => {}
            Err(std::fs::TryLockError::WouldBlock) => {
                let pid = std::fs::read_to_string(&path)
                    .ok()
                    .and_then(|c| c.trim().parse::<u32>().ok())
                    .unwrap_or(0);
                return Err(StorageError::Locked { pid });
            }
            Err(std::fs::TryLockError::Error(e)) => return Err(e.into()),
        }
        // Lock held: record our pid through the locked descriptor. Best
        // effort and purely diagnostic — a concurrent contender reading
        // mid-rewrite sees a garbled pid in its error message, nothing
        // more.
        use std::io::Write;
        let _ = file.set_len(0);
        let _ = writeln!(file, "{}", std::process::id());
        let _ = file.sync_all();
        Ok(DirLock { _file: file })
    }
}

fn snap_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("snapshot-{generation:010}.snap"))
}

fn wal_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("wal-{generation:010}.log"))
}

/// Parses `<stem>-<generation>.<ext>` file names back to generations.
fn parse_generation(name: &str, stem: &str, ext: &str) -> Option<u64> {
    name.strip_prefix(stem)?
        .strip_prefix('-')?
        .strip_suffix(ext)?
        .strip_suffix('.')?
        .parse()
        .ok()
}

impl Store {
    /// Opens (creating if necessary) the store at `dir` and recovers the
    /// graph it holds: latest valid snapshot plus replayed WAL tail.
    pub fn open(dir: impl AsRef<Path>) -> Result<(Store, PropertyGraph), StorageError> {
        Store::open_with_threads(dir, 1)
    }

    /// [`Store::open`] with an index-maintenance thread budget for
    /// replay: large WAL tails fan index upkeep out across shards (see
    /// [`wal::replay_with_threads`]).
    pub fn open_with_threads(
        dir: impl AsRef<Path>,
        threads: usize,
    ) -> Result<(Store, PropertyGraph), StorageError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        // Single-writer rule; released on drop (including every error
        // path below, via the guard), taken over when its owner is dead.
        let lock = DirLock::acquire(&dir)?;
        let mut report = RecoveryReport::default();

        // The newest snapshot is authoritative and must load. Falling
        // back to an older generation — or worse, the empty graph —
        // would silently present committed data as missing (older WALs
        // were swept at checkpoint time), and the next checkpoint would
        // then overwrite the only copy of the real state. A snapshot
        // that exists but fails validation is therefore a hard error;
        // half-written snapshots never look like this (they are `.tmp`
        // files that were never renamed into place).
        let newest: Option<u64> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok())
            .filter_map(|e| parse_generation(&e.file_name().to_string_lossy(), "snapshot", "snap"))
            .max();
        let mut graph = PropertyGraph::new();
        let mut generation = 0u64;
        let mut base_seq = 0u64;
        if let Some(g) = newest {
            let (stored_gen, seq, loaded) = snapshot::load(&snap_path(&dir, g))?;
            if stored_gen != g {
                return Err(StorageError::corrupt(
                    format!("snapshot file named generation {g} but contains {stored_gen}"),
                    0,
                ));
            }
            graph = loaded;
            generation = g;
            base_seq = seq;
        }
        report.snapshot_generation = generation;

        // Replay the paired WAL (creating it when absent — the legal
        // crash window between snapshot publication and WAL creation).
        let path = wal_path(&dir, generation);
        let mut upgrade = false;
        let wal = if path.exists() {
            let summary = wal::replay_with_threads(&path, &mut graph, threads)?;
            report.batches_replayed = summary.batches_applied;
            report.groups_replayed = summary.groups_applied;
            report.changes_replayed = summary.changes_applied;
            report.truncated_bytes = summary.truncated_bytes;
            report.discarded_changes = summary.discarded_changes;
            upgrade = summary.format_version < 2;
            wal::WalWriter::open_append(&path, summary.valid_len, summary.next_seq.max(base_seq))?
        } else {
            wal::WalWriter::create(&path, base_seq)?
        };

        let mut store = Store {
            dir,
            generation,
            wal,
            report,
            _lock: lock,
            poisoned: false,
        };
        store.sweep_stale_files();
        if upgrade {
            // The log on disk is the previous format: replay just read
            // it, but appending current-format group records into it
            // would mix semantics. Absorb the recovered state into a
            // snapshot and start a fresh current-format log — the
            // ordinary checkpoint, crash-consistent at every step. On
            // failure the old pair stays authoritative and `open`
            // surfaces the error (nothing was appended).
            store.checkpoint(&graph)?;
        }
        Ok((store, graph))
    }

    /// Appends one commit group — each member batch plus one covering
    /// group record — to the WAL in a single contiguous write,
    /// **sealing** every member transaction on disk at once. Members
    /// receive consecutive batch seqs from `first_seq` in slice order;
    /// the receipt records the pre-append WAL length so a failed
    /// fsync can roll the whole group back with
    /// [`Store::truncate_wal`].
    pub fn commit_group(&mut self, batches: &[&[Change]]) -> Result<GroupReceipt, StorageError> {
        if self.poisoned {
            return Err(StorageError::corrupt(
                "store disabled by an earlier failed checkpoint",
                0,
            ));
        }
        let wal_len_before = self.wal.bytes();
        let first_seq = self.wal.append_group(batches)?;
        Ok(GroupReceipt {
            first_seq,
            batches: batches.len() as u32,
            wal_len_before,
        })
    }

    /// Appends one atomic batch of changes as a group of one. Returns
    /// the batch sequence number — the transaction's id, which versioned
    /// callers publish as the new graph version (see [`TxnId`]).
    pub fn commit(&mut self, changes: &[Change]) -> Result<TxnId, StorageError> {
        self.commit_group(&[changes]).map(|r| r.first_seq)
    }

    /// A duplicate handle onto the live WAL file for off-thread fsync —
    /// the pipelined scheduler flushes group N through this handle while
    /// the leader appends group N+1 through the store.
    pub fn sync_handle(&self) -> Result<std::fs::File, StorageError> {
        self.wal.sync_handle()
    }

    /// Rolls the WAL back to `len` bytes (a [`GroupReceipt`]'s
    /// `wal_len_before`) after a failed group seal, so disk never holds
    /// a group that memory refused to acknowledge.
    pub fn truncate_wal(&mut self, len: u64) -> Result<(), StorageError> {
        self.wal.truncate_to(len)
    }

    /// Test double: forces the next `n` WAL fsyncs to fail.
    #[doc(hidden)]
    pub fn inject_sync_failures(&mut self, n: u32) {
        self.wal.inject_sync_failures(n);
    }

    /// Bytes in the current WAL — the compaction trigger's input.
    pub fn wal_bytes(&self) -> u64 {
        self.wal.bytes()
    }

    /// Total batches committed across the store's lifetime (monotonic
    /// across checkpoints). Equivalently: the next [`TxnId`] to be
    /// assigned, and the version id of the recovered graph.
    pub fn batches_committed(&self) -> TxnId {
        self.wal.next_seq()
    }

    /// The current snapshot generation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// What recovery found when this store was opened.
    pub fn report(&self) -> &RecoveryReport {
        &self.report
    }

    /// The data directory this store is rooted at.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Writes a new snapshot of `graph` and starts a fresh WAL (the
    /// snapshot + truncate of log compaction). `graph` must be exactly
    /// the state produced by every batch committed so far.
    pub fn checkpoint(&mut self, graph: &PropertyGraph) -> Result<(), StorageError> {
        if self.poisoned {
            return Err(StorageError::corrupt(
                "store disabled by an earlier failed checkpoint",
                0,
            ));
        }
        let next = self.generation + 1;
        // A failure here leaves at most a `.tmp` file — the store is
        // untouched and stays usable.
        snapshot::save(
            &snap_path(&self.dir, next),
            graph,
            next,
            self.wal.next_seq(),
        )?;
        // From here on, recovery prefers generation `next`; the old pair
        // stays consistent until the new WAL exists, after which the old
        // files are dead weight and are swept.
        match wal::WalWriter::create(&wal_path(&self.dir, next), self.wal.next_seq()) {
            Ok(w) => {
                self.wal = w;
                self.generation = next;
                self.sweep_stale_files();
                Ok(())
            }
            Err(e) => {
                // Snapshot `next` is already published, so recovery would
                // prefer it and sweep the *old* WAL — any batch committed
                // there after this point would be silently destroyed.
                // Unpublish the snapshot to restore the old pair's
                // authority; if even that fails, the on-disk state is
                // ambiguous and the store must stop accepting writes.
                if std::fs::remove_file(snap_path(&self.dir, next)).is_err() {
                    self.poisoned = true;
                }
                Err(e)
            }
        }
    }

    /// Forces WAL bytes to stable storage.
    pub fn sync(&mut self) -> Result<(), StorageError> {
        self.wal.sync()
    }

    /// Best-effort removal of files from older generations and leftover
    /// temporaries. Never fails the caller: stale files are garbage, not
    /// state.
    fn sweep_stale_files(&mut self) {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return;
        };
        for e in entries.filter_map(|e| e.ok()) {
            let name = e.file_name().to_string_lossy().into_owned();
            let stale = parse_generation(&name, "snapshot", "snap")
                .map(|g| g < self.generation)
                .or_else(|| parse_generation(&name, "wal", "log").map(|g| g < self.generation))
                .unwrap_or_else(|| name.ends_with(".tmp"));
            if stale {
                let _ = std::fs::remove_file(e.path());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cypher_graph::{NodeId, Value};
    use std::sync::Arc;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("cypher-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn add_node_batch(i: u64) -> Vec<Change> {
        vec![Change::AddNode {
            id: NodeId(i),
            labels: vec![Arc::from("N")],
            props: vec![(Arc::from("i"), Value::int(i as i64))],
        }]
    }

    #[test]
    fn open_commit_reopen() {
        let dir = tmpdir("basic");
        {
            let (mut store, graph) = Store::open(&dir).unwrap();
            assert_eq!(graph.node_count(), 0);
            for i in 0..5 {
                store.commit(&add_node_batch(i)).unwrap();
            }
            assert_eq!(store.batches_committed(), 5);
        }
        let (store, graph) = Store::open(&dir).unwrap();
        assert_eq!(graph.node_count(), 5);
        assert_eq!(store.report().batches_replayed, 5);
        assert_eq!(store.generation(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_compacts_and_survives_reopen() {
        let dir = tmpdir("checkpoint");
        let mut oracle = PropertyGraph::new();
        {
            let (mut store, mut graph) = Store::open(&dir).unwrap();
            for i in 0..4 {
                let batch = add_node_batch(i);
                for c in &batch {
                    wal::apply_change(&mut graph, c).unwrap();
                    wal::apply_change(&mut oracle, c).unwrap();
                }
                store.commit(&batch).unwrap();
            }
            store.checkpoint(&graph).unwrap();
            assert_eq!(store.generation(), 1);
            assert!(snap_path(&dir, 1).exists());
            assert!(!wal_path(&dir, 0).exists(), "old wal swept");
            // More batches on top of the snapshot.
            let batch = add_node_batch(4);
            for c in &batch {
                wal::apply_change(&mut graph, c).unwrap();
                wal::apply_change(&mut oracle, c).unwrap();
            }
            store.commit(&batch).unwrap();
            assert_eq!(
                store.batches_committed(),
                5,
                "seq monotonic across checkpoint"
            );
        }
        let (store, graph) = Store::open(&dir).unwrap();
        assert_eq!(store.report().snapshot_generation, 1);
        assert_eq!(store.report().batches_replayed, 1);
        assert_eq!(graph.canonical_dump(), oracle.canonical_dump());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_newest_snapshot_refuses_to_open() {
        // Falling back to an older generation (or the empty graph) would
        // present committed data as missing and let the next checkpoint
        // destroy the evidence — a corrupt snapshot must be loud.
        let dir = tmpdir("refuse");
        std::fs::create_dir_all(&dir).unwrap();
        let mut g = PropertyGraph::new();
        g.add_node(&["A"], []);
        snapshot::save(&snap_path(&dir, 1), &g, 1, 0).unwrap();
        std::fs::write(snap_path(&dir, 2), b"CYSNAP01 garbage").unwrap();
        assert!(matches!(
            Store::open(&dir),
            Err(StorageError::Corrupt { .. })
        ));
        // A leftover `.tmp` (crash during save) is not a snapshot and
        // must not block opening.
        std::fs::remove_file(snap_path(&dir, 2)).unwrap();
        std::fs::write(dir.join("snapshot-0000000002.tmp"), b"partial").unwrap();
        let (store, graph) = Store::open(&dir).unwrap();
        assert_eq!(store.report().snapshot_generation, 1);
        assert_eq!(graph.node_count(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn batch_seq_is_monotonic_across_checkpoint_and_reopen() {
        let dir = tmpdir("seq");
        {
            let (mut store, mut graph) = Store::open(&dir).unwrap();
            for i in 0..3 {
                let batch = add_node_batch(i);
                for c in &batch {
                    wal::apply_change(&mut graph, c).unwrap();
                }
                store.commit(&batch).unwrap();
            }
            store.checkpoint(&graph).unwrap();
            assert_eq!(store.batches_committed(), 3);
        }
        // Reopen with an *empty* post-checkpoint WAL: the sequence must
        // come from the snapshot, not reset to zero.
        let (mut store, _) = Store::open(&dir).unwrap();
        assert_eq!(store.batches_committed(), 3);
        let seq = store.commit(&add_node_batch(3)).unwrap();
        assert_eq!(seq, 3);
        // And the legal crash window: snapshot published, WAL missing.
        // (Shadowing does not drop the previous store — release its
        // directory lock explicitly before reopening.)
        drop(store);
        std::fs::remove_file(wal_path(&dir, 1)).unwrap();
        let (store, _) = Store::open(&dir).unwrap();
        assert_eq!(store.batches_committed(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_checkpoint_unpublishes_the_snapshot_and_keeps_the_store_usable() {
        let dir = tmpdir("ckfail");
        let (mut store, mut graph) = Store::open(&dir).unwrap();
        for i in 0..2 {
            let batch = add_node_batch(i);
            for c in &batch {
                wal::apply_change(&mut graph, c).unwrap();
            }
            store.commit(&batch).unwrap();
        }
        // Squat on the next generation's WAL name with a directory so
        // WalWriter::create fails after the snapshot is published.
        std::fs::create_dir_all(wal_path(&dir, 1)).unwrap();
        assert!(store.checkpoint(&graph).is_err());
        assert!(
            !snap_path(&dir, 1).exists(),
            "published snapshot must be unpublished on failure"
        );
        assert_eq!(store.generation(), 0, "generation unchanged");
        // The old pair is still authoritative: commits keep working and
        // a reopen recovers everything.
        store.commit(&add_node_batch(2)).unwrap();
        drop(store);
        std::fs::remove_dir_all(wal_path(&dir, 1)).unwrap();
        let (store, recovered) = Store::open(&dir).unwrap();
        assert_eq!(store.report().batches_replayed, 3);
        assert_eq!(recovered.node_count(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn second_open_of_a_live_store_is_refused_but_stale_locks_are_taken_over() {
        let dir = tmpdir("lock");
        let (store, _) = Store::open(&dir).unwrap();
        // Same directory, same (live) process: must refuse.
        assert!(matches!(
            Store::open(&dir),
            Err(StorageError::Locked { .. })
        ));
        drop(store); // releases the lock
        let (store, _) = Store::open(&dir).unwrap();
        drop(store);
        // A lock left by a dead process is stale: fabricate one with an
        // (almost certainly) unused pid.
        std::fs::write(dir.join("LOCK"), "4194000\n").unwrap();
        assert!(Store::open(&dir).is_ok(), "stale lock must be taken over");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_stale_lock_takeover_has_exactly_one_winner() {
        // Two claimants race for the same dead holder's lock. The kernel
        // lock guarantees exactly one wins; the loser must see `Locked`,
        // never a second acquisition. (The pre-kernel-lock protocol —
        // check pid then rewrite the file — failed exactly this test.)
        for round in 0..20 {
            let dir = tmpdir(&format!("lockrace-{round}"));
            std::fs::create_dir_all(&dir).unwrap();
            std::fs::write(dir.join("LOCK"), "4194000\n").unwrap(); // dead pid
            let barrier = std::sync::Barrier::new(2);
            let outcomes: Vec<Result<DirLock, StorageError>> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..2)
                    .map(|_| {
                        let barrier = &barrier;
                        let dir = dir.clone();
                        s.spawn(move || {
                            barrier.wait();
                            DirLock::acquire(&dir)
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            let wins = outcomes.iter().filter(|r| r.is_ok()).count();
            assert_eq!(wins, 1, "round {round}: exactly one claimant must win");
            assert!(
                outcomes
                    .iter()
                    .any(|r| matches!(r, Err(StorageError::Locked { .. }))),
                "round {round}: the loser must be told the directory is locked"
            );
            drop(outcomes); // releases the winner's lock
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn failed_group_fsync_rolls_back_to_the_prior_durable_group() {
        // The fsync fault double: a group whose seal fails to reach
        // stable storage is truncated away whole, so a reopen recovers
        // exactly the prior groups — disk never runs ahead of what the
        // database acknowledged.
        let dir = tmpdir("groupfsync");
        {
            let (mut store, _) = Store::open(&dir).unwrap();
            let receipt = store
                .commit_group(&[&add_node_batch(0), &add_node_batch(1)])
                .unwrap();
            assert_eq!(receipt.first_seq, 0);
            assert_eq!(receipt.batches, 2);
            store.sync().unwrap();
            let doomed = store
                .commit_group(&[&add_node_batch(2), &add_node_batch(3)])
                .unwrap();
            assert_eq!(doomed.first_seq, 2);
            store.inject_sync_failures(1);
            assert!(store.sync().is_err(), "injected fsync failure surfaces");
            store.truncate_wal(doomed.wal_len_before).unwrap();
            assert_eq!(store.wal_bytes(), doomed.wal_len_before);
            assert!(
                store.commit(&add_node_batch(2)).is_err(),
                "writer stays damaged after a failed fsync"
            );
        }
        let (store, graph) = Store::open(&dir).unwrap();
        assert_eq!(store.report().batches_replayed, 2);
        assert_eq!(store.report().groups_replayed, 1);
        assert_eq!(graph.node_count(), 2, "only the durable group survives");
        assert_eq!(store.batches_committed(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_rollback_after_a_first_rollback_cannot_extend_the_wal() {
        // The pipelined double-failure shape: group B's flush fails and
        // rolls back to B's wal_len_before (cutting C's bytes too, since
        // C sealed behind it); a stale rollback to C's — now larger than
        // the file — must refuse rather than zero-extend the log past
        // the durable boundary. Reopen recovers exactly group A.
        let dir = tmpdir("staleroll");
        {
            let (mut store, _) = Store::open(&dir).unwrap();
            store.commit_group(&[&add_node_batch(0)]).unwrap();
            store.sync().unwrap();
            let b = store.commit_group(&[&add_node_batch(1)]).unwrap();
            let c = store.commit_group(&[&add_node_batch(2)]).unwrap();
            assert!(c.wal_len_before > b.wal_len_before);
            store.truncate_wal(b.wal_len_before).unwrap();
            assert!(
                store.truncate_wal(c.wal_len_before).is_err(),
                "a rollback target past EOF must be refused"
            );
            assert_eq!(store.wal_bytes(), b.wal_len_before);
        }
        let (store, graph) = Store::open(&dir).unwrap();
        assert_eq!(store.report().batches_replayed, 1);
        assert_eq!(graph.node_count(), 1, "exactly the durable prefix");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Hand-writes `wal-0000000000.log` in the version-1 format (magic
    /// `CYWAL001`, commit records, no group records) holding `n`
    /// single-change batches.
    fn write_v1_wal(dir: &Path, n: u64) {
        use crate::codec::{put_change, put_u32, put_u64};
        std::fs::create_dir_all(dir).unwrap();
        let mut buf = Vec::new();
        buf.extend_from_slice(wal::WAL_MAGIC_V1);
        let mut payload = Vec::new();
        for i in 0..n {
            for c in &add_node_batch(i) {
                payload.clear();
                payload.push(wal::KIND_CHANGE);
                put_change(&mut payload, c);
                buf.extend_from_slice(&wal::frame_record(&payload));
            }
            payload.clear();
            payload.push(wal::KIND_COMMIT);
            put_u64(&mut payload, i);
            put_u32(&mut payload, 1);
            buf.extend_from_slice(&wal::frame_record(&payload));
        }
        std::fs::write(wal_path(dir, 0), &buf).unwrap();
    }

    #[test]
    fn v1_directory_is_replayed_and_upgraded_on_open() {
        let dir = tmpdir("v1dir");
        write_v1_wal(&dir, 3);
        {
            let (mut store, graph) = Store::open(&dir).unwrap();
            assert_eq!(graph.node_count(), 3, "v1 batches replayed");
            assert_eq!(store.report().batches_replayed, 3);
            assert_eq!(
                store.generation(),
                1,
                "open upgrades the v1 directory via a checkpoint"
            );
            let bytes = std::fs::read(wal_path(&dir, 1)).unwrap();
            assert_eq!(
                &bytes[..wal::WAL_MAGIC.len()],
                wal::WAL_MAGIC,
                "the live log is current-format after the upgrade"
            );
            // Batch seqs continue where the v1 log left off.
            let seq = store.commit(&add_node_batch(3)).unwrap();
            assert_eq!(seq, 3);
        }
        let (store, graph) = Store::open(&dir).unwrap();
        assert_eq!(graph.node_count(), 4);
        assert_eq!(store.batches_committed(), 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotted_length_field_mid_file_is_a_hard_error() {
        // A flipped high bit in a length field claims an extent past
        // EOF — shaped like a tear, except CRC-valid committed frames
        // still follow. Resync must find them and refuse.
        let dir = tmpdir("lenrot");
        let wal_file;
        {
            let (mut store, _) = Store::open(&dir).unwrap();
            for i in 0..4 {
                store.commit(&add_node_batch(i)).unwrap();
            }
            wal_file = wal_path(&dir, 0);
        }
        let mut bytes = std::fs::read(&wal_file).unwrap();
        // First record's frame starts right after the 8-byte magic; its
        // length field is bytes 8..12.
        bytes[11] ^= 0x80;
        std::fs::write(&wal_file, &bytes).unwrap();
        assert!(
            matches!(Store::open(&dir), Err(StorageError::Corrupt { .. })),
            "length rot with intact committed data after it must refuse"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mid_file_wal_corruption_is_a_hard_error_not_silent_truncation() {
        let dir = tmpdir("midfile");
        let wal_file;
        {
            let (mut store, _) = Store::open(&dir).unwrap();
            for i in 0..4 {
                store.commit(&add_node_batch(i)).unwrap();
            }
            wal_file = wal_path(&dir, 0);
        }
        let mut bytes = std::fs::read(&wal_file).unwrap();
        // Flip a byte inside the *first* record's payload (the frame
        // header is 8 bytes after the 8-byte magic), leaving valid
        // committed records after it: a CRC mismatch mid-file.
        bytes[18] ^= 0x20;
        std::fs::write(&wal_file, &bytes).unwrap();
        assert!(
            matches!(Store::open(&dir), Err(StorageError::Corrupt { .. })),
            "rotted committed data must not be silently truncated"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
