//! Property-based coverage for the binary codec: arbitrary [`Value`]
//! trees — nested lists and maps, every temporal type, NaN and negative
//! zero, node/rel/path references — must encode→decode to the **exact**
//! same value (representation-exact, not merely Cypher-equivalent: an
//! integer must come back an integer, never a float), and any single-byte
//! corruption of a framed record must be detected by the CRC rather than
//! mis-decoded.

use cypher_graph::temporal::{Date, Duration, LocalDateTime, LocalTime, Temporal, ZonedDateTime};
use cypher_graph::{NodeId, Path, RelId, Value};
use cypher_storage::codec::{put_value, Reader};
use cypher_storage::wal::{frame_record, read_frame};
use cypher_storage::StorageError;
use proptest::prelude::*;

fn arb_temporal() -> impl Strategy<Value = Temporal> {
    prop_oneof![
        (-100_000i64..100_000).prop_map(|d| Temporal::Date(Date { epoch_days: d })),
        (0i64..86_400_000_000_000).prop_map(|n| Temporal::LocalTime(LocalTime { nanos: n })),
        ((-100_000i64..100_000), (0i64..86_400_000_000_000)).prop_map(|(d, n)| {
            Temporal::LocalDateTime(LocalDateTime {
                date: Date { epoch_days: d },
                time: LocalTime { nanos: n },
            })
        }),
        (
            (-100_000i64..100_000),
            (0i64..86_400_000_000_000),
            (-64_800i64..64_800)
        )
            .prop_map(|(d, n, off)| {
                Temporal::DateTime(ZonedDateTime {
                    local: LocalDateTime {
                        date: Date { epoch_days: d },
                        time: LocalTime { nanos: n },
                    },
                    offset_seconds: off as i32,
                })
            }),
        (
            (-1000i64..1000),
            (-1000i64..1000),
            (-1_000_000i64..1_000_000),
            (-999_999_999i64..999_999_999)
        )
            .prop_map(|(m, d, s, n)| Temporal::Duration(Duration {
                months: m,
                days: d,
                seconds: s,
                nanos: n,
            })),
    ]
}

fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Integer),
        any::<i64>().prop_map(|i| Value::Float(f64::from_bits(i as u64))),
        Just(Value::Float(f64::NAN)),
        Just(Value::Float(-0.0)),
        Just(Value::Float(f64::INFINITY)),
        "[a-zµ☃]{0,6}".prop_map(Value::str),
        (0u64..100).prop_map(|i| Value::Node(NodeId(i))),
        (0u64..100).prop_map(|i| Value::Rel(RelId(i))),
        (0u64..5, 0u64..5).prop_map(|(n, r)| {
            let mut p = Path::single(NodeId(n));
            p.push(RelId(r), NodeId(n + 1));
            Value::Path(p)
        }),
        arb_temporal().prop_map(Value::Temporal),
    ];
    leaf.prop_recursive(4, 32, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..4).prop_map(Value::List),
            proptest::collection::btree_map("[a-c]{1,2}", inner, 0..3).prop_map(|m| {
                Value::Map(
                    m.into_iter()
                        .map(|(k, v)| (std::sync::Arc::from(k.as_str()), v))
                        .collect(),
                )
            }),
        ]
    })
}

/// Representation-exact equality: the derived `Debug` form distinguishes
/// `Integer(1)` from `Float(1.0)` and preserves NaN/−0.0, which Cypher
/// equivalence (`PartialEq` on `Value`) deliberately conflates.
fn exactly_equal(a: &Value, b: &Value) -> bool {
    format!("{a:?}") == format!("{b:?}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn value_roundtrips_exactly(v in arb_value()) {
        let mut buf = Vec::new();
        put_value(&mut buf, &v);
        let mut r = Reader::new(&buf, "prop");
        let back = r.value().unwrap();
        prop_assert!(r.is_empty(), "decoder consumed everything");
        prop_assert!(exactly_equal(&v, &back), "{v:?} != {back:?}");
    }

    #[test]
    fn every_truncation_errors(v in arb_value()) {
        let mut buf = Vec::new();
        put_value(&mut buf, &v);
        // The decoder walks the exact encoding path of the original
        // value, so any strict prefix must end in a structured error —
        // never a panic, never a silently different value.
        for cut in 0..buf.len() {
            let mut r = Reader::new(&buf[..cut], "trunc");
            prop_assert!(
                matches!(r.value(), Err(StorageError::Corrupt { .. })),
                "truncation at {cut} of {} bytes did not error",
                buf.len()
            );
        }
    }

    #[test]
    fn single_byte_flips_in_framed_records_are_detected(v in arb_value(), flip in any::<u16>()) {
        let mut payload = vec![0x01u8]; // a change-like kind byte
        put_value(&mut payload, &v);
        let framed = frame_record(&payload);
        let idx = (flip as usize) % framed.len();
        for mask in [0x01u8, 0x10, 0x80] {
            let mut bad = framed.clone();
            bad[idx] ^= mask;
            // CRC (or the length sanity check) must catch the flip. The
            // only undetectable case would be a flipped length that still
            // frames AND matches the stored CRC — impossible for a
            // single-byte flip with CRC-32.
            prop_assert!(
                matches!(read_frame(&bad, 0), Err(StorageError::Corrupt { .. })),
                "flip at byte {idx} (mask {mask:#x}) undetected"
            );
        }
    }
}
