//! # cypher-parser
//!
//! Lexer and recursive-descent parser turning Cypher text into the
//! [`cypher_ast`] abstract syntax. The grammar implemented is exactly the
//! core grammar of Figures 3 and 5 of *Cypher: An Evolving Query Language
//! for Property Graphs* (SIGMOD 2018), extended with the surface language
//! the paper describes in prose: updating clauses, `ORDER BY` / `SKIP` /
//! `LIMIT` / `DISTINCT`, `CASE`, comprehensions, quantifiers, parameters
//! and the Cypher 10 multigraph clauses.
//!
//! ```
//! use cypher_parser::parse_query;
//! let q = parse_query("MATCH (r:Researcher) RETURN r.name").unwrap();
//! assert!(!q.is_updating());
//! ```

#![warn(missing_docs)]

pub mod lexer;
pub mod parser;

pub use lexer::{lex, LexError, Spanned, Token};
pub use parser::{parse_expression, parse_pattern, parse_query, ParseError};
