//! Recursive-descent parser for the Cypher grammar of Figures 3 and 5 of
//! the paper, extended with the surface language of Sections 2–3 and 6:
//! updating clauses, `ORDER BY`/`SKIP`/`LIMIT`/`DISTINCT`, `CASE`,
//! list comprehensions, quantifiers, parameters, `UNION [ALL]` and the
//! Cypher 10 multigraph clauses.
//!
//! The parser is hand-written with one-token lookahead plus explicit
//! backtracking for the two genuinely ambiguous spots of the grammar:
//! parenthesized expressions vs. pattern predicates, and list literals vs.
//! list comprehensions.

use crate::lexer::{lex, Spanned, Token};
use cypher_ast::expr::{ArithOp, CmpOp, Expr, Literal, Quantifier};
use cypher_ast::pattern::{Dir, NodePattern, PathPattern, RangeSpec, RelPattern};
use cypher_ast::query::{
    Clause, Query, RemoveItem, Return, ReturnItem, SetItem, SingleQuery, SortItem,
};
use std::fmt;

/// A parse failure with source position.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Human-readable description.
    pub msg: String,
    /// 1-based line (0 when at end of input).
    pub line: u32,
    /// 1-based column (0 when at end of input).
    pub col: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}:{}: {}", self.line, self.col, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete Cypher query.
pub fn parse_query(src: &str) -> Result<Query, ParseError> {
    let mut p = Parser::new(src)?;
    let q = p.query()?;
    p.eat_tok(&Token::Semicolon);
    p.expect_eof()?;
    Ok(q)
}

/// Parses a standalone expression (used by tests and the TCK runner).
pub fn parse_expression(src: &str) -> Result<Expr, ParseError> {
    let mut p = Parser::new(src)?;
    let e = p.expr()?;
    p.expect_eof()?;
    Ok(e)
}

/// Parses a standalone path pattern (Figure 3).
pub fn parse_pattern(src: &str) -> Result<PathPattern, ParseError> {
    let mut p = Parser::new(src)?;
    let pat = p.path_pattern()?;
    p.expect_eof()?;
    Ok(pat)
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn new(src: &str) -> Result<Self, ParseError> {
        let toks = lex(src).map_err(|e| ParseError {
            msg: e.msg,
            line: e.line,
            col: e.col,
        })?;
        Ok(Parser { toks, pos: 0 })
    }

    // -- primitives ---------------------------------------------------------

    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.pos).map(|s| &s.tok)
    }

    fn peek_at(&self, off: usize) -> Option<&Token> {
        self.toks.get(self.pos + off).map(|s| &s.tok)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.toks.get(self.pos).map(|s| s.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, msg: impl Into<String>) -> ParseError {
        let (line, col) = self
            .toks
            .get(self.pos)
            .map(|s| (s.line, s.col))
            .unwrap_or((0, 0));
        ParseError {
            msg: msg.into(),
            line,
            col,
        }
    }

    fn expect_eof(&self) -> Result<(), ParseError> {
        if self.pos < self.toks.len() {
            Err(self.error(format!(
                "unexpected trailing input starting at '{}'",
                self.toks[self.pos].tok
            )))
        } else {
            Ok(())
        }
    }

    fn check_tok(&self, t: &Token) -> bool {
        self.peek() == Some(t)
    }

    fn eat_tok(&mut self, t: &Token) -> bool {
        if self.check_tok(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_tok(&mut self, t: &Token) -> Result<(), ParseError> {
        if self.eat_tok(t) {
            Ok(())
        } else {
            Err(self.error(format!(
                "expected '{t}', found {}",
                self.peek()
                    .map(|x| x.to_string())
                    .unwrap_or("end of input".into())
            )))
        }
    }

    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn at_kw_at(&self, off: usize, kw: &str) -> bool {
        matches!(self.peek_at(off), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.error(format!(
                "expected keyword {kw}, found {}",
                self.peek()
                    .map(|x| x.to_string())
                    .unwrap_or("end of input".into())
            )))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek() {
            Some(Token::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            _ => Err(self.error(format!(
                "expected identifier, found {}",
                self.peek()
                    .map(|x| x.to_string())
                    .unwrap_or("end of input".into())
            ))),
        }
    }

    // -- queries ------------------------------------------------------------

    fn query(&mut self) -> Result<Query, ParseError> {
        let mut q = Query::Single(self.single_query()?);
        while self.at_kw("UNION") {
            self.bump();
            let all = self.eat_kw("ALL");
            let rhs = Query::Single(self.single_query()?);
            q = Query::Union {
                all,
                left: Box::new(q),
                right: Box::new(rhs),
            };
        }
        Ok(q)
    }

    fn single_query(&mut self) -> Result<SingleQuery, ParseError> {
        let mut clauses = Vec::new();
        let mut ret = None;
        let mut ret_graph = None;
        loop {
            if self.at_kw("MATCH") || (self.at_kw("OPTIONAL") && self.at_kw_at(1, "MATCH")) {
                let optional = self.eat_kw("OPTIONAL");
                self.expect_kw("MATCH")?;
                let patterns = self.pattern_list()?;
                let where_ = if self.eat_kw("WHERE") {
                    Some(self.expr()?)
                } else {
                    None
                };
                clauses.push(Clause::Match {
                    optional,
                    patterns,
                    where_,
                });
            } else if self.at_kw("WITH") {
                self.bump();
                let r = self.return_body()?;
                let where_ = if self.eat_kw("WHERE") {
                    Some(self.expr()?)
                } else {
                    None
                };
                clauses.push(Clause::With { ret: r, where_ });
            } else if self.at_kw("UNWIND") {
                self.bump();
                let expr = self.expr()?;
                self.expect_kw("AS")?;
                let alias = self.ident()?;
                clauses.push(Clause::Unwind { expr, alias });
            } else if self.at_kw("CREATE") {
                self.bump();
                let patterns = self.pattern_list()?;
                clauses.push(Clause::Create { patterns });
            } else if self.at_kw("MERGE") {
                self.bump();
                let pattern = self.path_pattern()?;
                let mut on_create = Vec::new();
                let mut on_match = Vec::new();
                while self.at_kw("ON") {
                    self.bump();
                    if self.eat_kw("CREATE") {
                        self.expect_kw("SET")?;
                        on_create.extend(self.set_items()?);
                    } else if self.eat_kw("MATCH") {
                        self.expect_kw("SET")?;
                        on_match.extend(self.set_items()?);
                    } else {
                        return Err(self.error("expected CREATE or MATCH after ON"));
                    }
                }
                clauses.push(Clause::Merge {
                    pattern,
                    on_create,
                    on_match,
                });
            } else if self.at_kw("DETACH") || self.at_kw("DELETE") {
                let detach = self.eat_kw("DETACH");
                self.expect_kw("DELETE")?;
                let mut exprs = vec![self.expr()?];
                while self.eat_tok(&Token::Comma) {
                    exprs.push(self.expr()?);
                }
                clauses.push(Clause::Delete { detach, exprs });
            } else if self.at_kw("SET") {
                self.bump();
                let items = self.set_items()?;
                clauses.push(Clause::Set { items });
            } else if self.at_kw("REMOVE") {
                self.bump();
                let mut items = vec![self.remove_item()?];
                while self.eat_tok(&Token::Comma) {
                    items.push(self.remove_item()?);
                }
                clauses.push(Clause::Remove { items });
            } else if self.at_kw("FROM") {
                self.bump();
                self.expect_kw("GRAPH")?;
                let name = self.ident()?;
                let at = if self.eat_kw("AT") {
                    match self.bump() {
                        Some(Token::Str(s)) => Some(s),
                        _ => return Err(self.error("expected string after AT")),
                    }
                } else {
                    None
                };
                clauses.push(Clause::FromGraph { name, at });
            } else if self.at_kw("RETURN") {
                self.bump();
                if self.at_kw("GRAPH") {
                    self.bump();
                    let name = self.ident()?;
                    self.expect_kw("OF")?;
                    let pats = self.pattern_list()?;
                    ret_graph = Some((name, pats));
                } else {
                    ret = Some(self.return_body()?);
                }
                break;
            } else {
                break;
            }
        }
        if clauses.is_empty() && ret.is_none() && ret_graph.is_none() {
            return Err(self.error("expected a clause"));
        }
        Ok(SingleQuery {
            clauses,
            ret,
            ret_graph,
        })
    }

    fn return_body(&mut self) -> Result<Return, ParseError> {
        let distinct = self.eat_kw("DISTINCT");
        let mut star = false;
        let mut items = Vec::new();
        if self.eat_tok(&Token::Star) {
            star = true;
            while self.eat_tok(&Token::Comma) {
                items.push(self.return_item()?);
            }
        } else {
            items.push(self.return_item()?);
            while self.eat_tok(&Token::Comma) {
                items.push(self.return_item()?);
            }
        }
        let mut order_by = Vec::new();
        if self.at_kw("ORDER") {
            self.bump();
            self.expect_kw("BY")?;
            loop {
                let expr = self.expr()?;
                let ascending = if self.eat_kw("DESC") || self.eat_kw("DESCENDING") {
                    false
                } else {
                    self.eat_kw("ASC");
                    self.eat_kw("ASCENDING");
                    true
                };
                order_by.push(SortItem { expr, ascending });
                if !self.eat_tok(&Token::Comma) {
                    break;
                }
            }
        }
        let skip = if self.eat_kw("SKIP") {
            Some(self.expr()?)
        } else {
            None
        };
        let limit = if self.eat_kw("LIMIT") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Return {
            distinct,
            star,
            items,
            order_by,
            skip,
            limit,
        })
    }

    fn return_item(&mut self) -> Result<ReturnItem, ParseError> {
        let expr = self.expr()?;
        let alias = if self.eat_kw("AS") {
            Some(self.ident()?)
        } else {
            None
        };
        Ok(ReturnItem { expr, alias })
    }

    fn set_items(&mut self) -> Result<Vec<SetItem>, ParseError> {
        let mut items = vec![self.set_item()?];
        while self.eat_tok(&Token::Comma) {
            items.push(self.set_item()?);
        }
        Ok(items)
    }

    fn set_item(&mut self) -> Result<SetItem, ParseError> {
        // `a:Label...` form.
        if matches!(self.peek(), Some(Token::Ident(_))) && self.peek_at(1) == Some(&Token::Colon) {
            let var = self.ident()?;
            let mut labels = Vec::new();
            while self.eat_tok(&Token::Colon) {
                labels.push(self.ident()?);
            }
            return Ok(SetItem::Labels(var, labels));
        }
        let target = self.postfix_expr()?;
        match (&target, self.peek()) {
            (Expr::Prop(base, key), Some(Token::Eq)) => {
                let (base, key) = ((**base).clone(), key.clone());
                self.bump();
                let value = self.expr()?;
                Ok(SetItem::Prop(base, key, value))
            }
            (Expr::Var(a), Some(Token::Eq)) => {
                let a = a.clone();
                self.bump();
                let value = self.expr()?;
                Ok(SetItem::Replace(a, value))
            }
            (Expr::Var(a), Some(Token::PlusEq)) => {
                let a = a.clone();
                self.bump();
                let value = self.expr()?;
                Ok(SetItem::Merge(a, value))
            }
            _ => Err(self.error("invalid SET item")),
        }
    }

    fn remove_item(&mut self) -> Result<RemoveItem, ParseError> {
        if matches!(self.peek(), Some(Token::Ident(_))) && self.peek_at(1) == Some(&Token::Colon) {
            let var = self.ident()?;
            let mut labels = Vec::new();
            while self.eat_tok(&Token::Colon) {
                labels.push(self.ident()?);
            }
            return Ok(RemoveItem::Labels(var, labels));
        }
        let target = self.postfix_expr()?;
        match target {
            Expr::Prop(base, key) => Ok(RemoveItem::Prop(*base, key)),
            _ => Err(self.error("invalid REMOVE item")),
        }
    }

    // -- patterns (Figure 3) -------------------------------------------------

    fn pattern_list(&mut self) -> Result<Vec<PathPattern>, ParseError> {
        let mut pats = vec![self.path_pattern()?];
        while self.eat_tok(&Token::Comma) {
            pats.push(self.path_pattern()?);
        }
        Ok(pats)
    }

    fn path_pattern(&mut self) -> Result<PathPattern, ParseError> {
        // `a = pattern` — one-token lookahead for `Ident =`.
        let name = if matches!(self.peek(), Some(Token::Ident(_)))
            && self.peek_at(1) == Some(&Token::Eq)
        {
            let n = self.ident()?;
            self.bump(); // '='
            Some(n)
        } else {
            None
        };
        let start = self.node_pattern()?;
        let mut steps = Vec::new();
        while matches!(self.peek(), Some(Token::Dash) | Some(Token::Lt)) {
            let rel = self.rel_pattern()?;
            let node = self.node_pattern()?;
            steps.push((rel, node));
        }
        Ok(PathPattern { name, start, steps })
    }

    fn node_pattern(&mut self) -> Result<NodePattern, ParseError> {
        self.expect_tok(&Token::LParen)?;
        let name = if matches!(self.peek(), Some(Token::Ident(_))) {
            Some(self.ident()?)
        } else {
            None
        };
        let mut labels = Vec::new();
        while self.eat_tok(&Token::Colon) {
            labels.push(self.ident()?);
        }
        let props = if self.check_tok(&Token::LBrace) {
            self.prop_map()?
        } else {
            Vec::new()
        };
        self.expect_tok(&Token::RParen)?;
        Ok(NodePattern {
            name,
            labels,
            props,
        })
    }

    fn rel_pattern(&mut self) -> Result<RelPattern, ParseError> {
        // Three shapes: `<-[…]-`, `-[…]->`, `-[…]-` (body optional).
        let leading_lt = self.eat_tok(&Token::Lt);
        self.expect_tok(&Token::Dash)?;
        let mut rel = RelPattern::any(Dir::Both);
        if self.eat_tok(&Token::LBracket) {
            if matches!(self.peek(), Some(Token::Ident(_))) {
                rel.name = Some(self.ident()?);
            }
            if self.eat_tok(&Token::Colon) {
                rel.types.push(self.ident()?);
                while self.eat_tok(&Token::Pipe) {
                    self.eat_tok(&Token::Colon); // both `|T` and `|:T` accepted
                    rel.types.push(self.ident()?);
                }
            }
            if self.eat_tok(&Token::Star) {
                rel.range = self.range_spec()?;
            }
            if self.check_tok(&Token::LBrace) {
                rel.props = self.prop_map()?;
            }
            self.expect_tok(&Token::RBracket)?;
        }
        self.expect_tok(&Token::Dash)?;
        let trailing_gt = self.eat_tok(&Token::Gt);
        rel.dir = match (leading_lt, trailing_gt) {
            (true, false) => Dir::In,
            (false, true) => Dir::Out,
            (false, false) => Dir::Both,
            (true, true) => return Err(self.error("relationship pattern cannot point both ways")),
        };
        Ok(rel)
    }

    fn range_spec(&mut self) -> Result<RangeSpec, ParseError> {
        // After `*`: `∗`, `∗d`, `∗d1..`, `∗..d2`, `∗d1..d2` (Figure 3).
        let lo = if let Some(Token::Int(i)) = self.peek() {
            let v = *i;
            self.bump();
            Some(u64::try_from(v).map_err(|_| self.error("negative range bound"))?)
        } else {
            None
        };
        if self.eat_tok(&Token::DotDot) {
            let hi = if let Some(Token::Int(i)) = self.peek() {
                let v = *i;
                self.bump();
                Some(u64::try_from(v).map_err(|_| self.error("negative range bound"))?)
            } else {
                None
            };
            Ok(RangeSpec::Var(lo, hi))
        } else {
            // `*d` means exactly d; bare `*` means unbounded.
            match lo {
                Some(d) => Ok(RangeSpec::Var(Some(d), Some(d))),
                None => Ok(RangeSpec::Var(None, None)),
            }
        }
    }

    fn prop_map(&mut self) -> Result<Vec<(String, Expr)>, ParseError> {
        self.expect_tok(&Token::LBrace)?;
        let mut props = Vec::new();
        if !self.check_tok(&Token::RBrace) {
            loop {
                let key = self.ident()?;
                self.expect_tok(&Token::Colon)?;
                let value = self.expr()?;
                props.push((key, value));
                if !self.eat_tok(&Token::Comma) {
                    break;
                }
            }
        }
        self.expect_tok(&Token::RBrace)?;
        Ok(props)
    }

    // -- expressions (Figure 5) -----------------------------------------------

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.xor_expr()?;
        while self.at_kw("OR") {
            self.bump();
            let rhs = self.xor_expr()?;
            lhs = Expr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn xor_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.at_kw("XOR") {
            self.bump();
            let rhs = self.and_expr()?;
            lhs = Expr::Xor(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.not_expr()?;
        while self.at_kw("AND") {
            self.bump();
            let rhs = self.not_expr()?;
            lhs = Expr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr, ParseError> {
        if self.at_kw("NOT") {
            self.bump();
            let inner = self.not_expr()?;
            return Ok(Expr::Not(Box::new(inner)));
        }
        self.comparison_expr()
    }

    fn comparison_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.add_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Eq) => Some(CmpOp::Eq),
                Some(Token::Neq) => Some(CmpOp::Neq),
                Some(Token::Lt) => Some(CmpOp::Lt),
                Some(Token::Le) => Some(CmpOp::Le),
                Some(Token::Gt) => Some(CmpOp::Gt),
                Some(Token::Ge) => Some(CmpOp::Ge),
                _ => None,
            };
            if let Some(op) = op {
                self.bump();
                let rhs = self.add_expr()?;
                lhs = Expr::Cmp(op, Box::new(lhs), Box::new(rhs));
                continue;
            }
            if self.at_kw("IN") {
                self.bump();
                let rhs = self.add_expr()?;
                lhs = Expr::In(Box::new(lhs), Box::new(rhs));
                continue;
            }
            if self.at_kw("STARTS") {
                self.bump();
                self.expect_kw("WITH")?;
                let rhs = self.add_expr()?;
                lhs = Expr::StartsWith(Box::new(lhs), Box::new(rhs));
                continue;
            }
            if self.at_kw("ENDS") {
                self.bump();
                self.expect_kw("WITH")?;
                let rhs = self.add_expr()?;
                lhs = Expr::EndsWith(Box::new(lhs), Box::new(rhs));
                continue;
            }
            if self.at_kw("CONTAINS") {
                self.bump();
                let rhs = self.add_expr()?;
                lhs = Expr::Contains(Box::new(lhs), Box::new(rhs));
                continue;
            }
            if self.at_kw("IS") {
                self.bump();
                if self.eat_kw("NOT") {
                    self.expect_kw("NULL")?;
                    lhs = Expr::IsNotNull(Box::new(lhs));
                } else {
                    self.expect_kw("NULL")?;
                    lhs = Expr::IsNull(Box::new(lhs));
                }
                continue;
            }
            return Ok(lhs);
        }
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => ArithOp::Add,
                Some(Token::Dash) => ArithOp::Sub,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::Arith(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.pow_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => ArithOp::Mul,
                Some(Token::Slash) => ArithOp::Div,
                Some(Token::Percent) => ArithOp::Mod,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.pow_expr()?;
            lhs = Expr::Arith(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn pow_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.unary_expr()?;
        if self.eat_tok(&Token::Caret) {
            // Right-associative.
            let rhs = self.pow_expr()?;
            return Ok(Expr::Arith(ArithOp::Pow, Box::new(lhs), Box::new(rhs)));
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat_tok(&Token::Dash) {
            let inner = self.unary_expr()?;
            // Fold negative numeric literals so that `-1` is the literal
            // −1 (keeps render/parse round-trips stable).
            return Ok(match inner {
                Expr::Lit(Literal::Integer(i)) => Expr::Lit(Literal::Integer(-i)),
                Expr::Lit(Literal::Float(f)) => Expr::Lit(Literal::Float(-f)),
                other => Expr::Neg(Box::new(other)),
            });
        }
        if self.eat_tok(&Token::Plus) {
            return self.unary_expr();
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.atom()?;
        loop {
            if self.check_tok(&Token::Dot) {
                self.bump();
                let key = self.ident()?;
                e = Expr::Prop(Box::new(e), key);
                continue;
            }
            if self.check_tok(&Token::LBracket) {
                self.bump();
                // `e[..hi]`, `e[lo..]`, `e[lo..hi]`, `e[idx]`.
                if self.eat_tok(&Token::DotDot) {
                    let hi = if self.check_tok(&Token::RBracket) {
                        None
                    } else {
                        Some(Box::new(self.expr()?))
                    };
                    self.expect_tok(&Token::RBracket)?;
                    e = Expr::Slice(Box::new(e), None, hi);
                    continue;
                }
                let first = self.expr()?;
                if self.eat_tok(&Token::DotDot) {
                    let hi = if self.check_tok(&Token::RBracket) {
                        None
                    } else {
                        Some(Box::new(self.expr()?))
                    };
                    self.expect_tok(&Token::RBracket)?;
                    e = Expr::Slice(Box::new(e), Some(Box::new(first)), hi);
                } else {
                    self.expect_tok(&Token::RBracket)?;
                    e = Expr::Index(Box::new(e), Box::new(first));
                }
                continue;
            }
            // Label predicate in expression position (`pInfo:SSN`), only
            // after a plain variable so map keys and pattern syntax are
            // unaffected.
            if self.check_tok(&Token::Colon) && matches!(e, Expr::Var(_)) {
                let mut labels = Vec::new();
                while self.eat_tok(&Token::Colon) {
                    labels.push(self.ident()?);
                }
                e = Expr::HasLabels(Box::new(e), labels);
                continue;
            }
            return Ok(e);
        }
    }

    fn atom(&mut self) -> Result<Expr, ParseError> {
        match self.peek().cloned() {
            Some(Token::Int(i)) => {
                self.bump();
                Ok(Expr::Lit(Literal::Integer(i)))
            }
            Some(Token::Float(x)) => {
                self.bump();
                Ok(Expr::Lit(Literal::Float(x)))
            }
            Some(Token::Str(s)) => {
                self.bump();
                Ok(Expr::Lit(Literal::String(s)))
            }
            Some(Token::Dollar) => {
                self.bump();
                match self.bump() {
                    Some(Token::Ident(s)) => Ok(Expr::Param(s)),
                    Some(Token::Int(i)) => Ok(Expr::Param(i.to_string())),
                    _ => Err(self.error("expected parameter name after $")),
                }
            }
            Some(Token::LBrace) => {
                let props = self.prop_map()?;
                Ok(Expr::Map(props))
            }
            Some(Token::LBracket) => self.list_or_comprehension(),
            Some(Token::LParen) => self.paren_or_pattern(),
            Some(Token::Ident(id)) => {
                if id.eq_ignore_ascii_case("true") {
                    self.bump();
                    return Ok(Expr::Lit(Literal::Bool(true)));
                }
                if id.eq_ignore_ascii_case("false") {
                    self.bump();
                    return Ok(Expr::Lit(Literal::Bool(false)));
                }
                if id.eq_ignore_ascii_case("null") {
                    self.bump();
                    return Ok(Expr::Lit(Literal::Null));
                }
                if id.eq_ignore_ascii_case("case") {
                    return self.case_expr();
                }
                // Quantifiers: all/any/none/single(var IN list WHERE pred).
                let quant = match id.to_ascii_lowercase().as_str() {
                    "all" => Some(Quantifier::All),
                    "any" => Some(Quantifier::Any),
                    "none" => Some(Quantifier::None),
                    "single" => Some(Quantifier::Single),
                    _ => None,
                };
                if let Some(q) = quant {
                    if self.peek_at(1) == Some(&Token::LParen)
                        && matches!(self.peek_at(2), Some(Token::Ident(_)))
                        && self.at_kw_at(3, "IN")
                    {
                        self.bump(); // name
                        self.bump(); // (
                        let var = self.ident()?;
                        self.expect_kw("IN")?;
                        let list = self.expr()?;
                        self.expect_kw("WHERE")?;
                        let pred = self.expr()?;
                        self.expect_tok(&Token::RParen)?;
                        return Ok(Expr::Quantified {
                            q,
                            var,
                            list: Box::new(list),
                            pred: Box::new(pred),
                        });
                    }
                }
                if self.peek_at(1) == Some(&Token::LParen) {
                    return self.fn_call();
                }
                self.bump();
                Ok(Expr::Var(id))
            }
            other => Err(self.error(format!(
                "expected expression, found {}",
                other
                    .map(|t| t.to_string())
                    .unwrap_or("end of input".into())
            ))),
        }
    }

    fn fn_call(&mut self) -> Result<Expr, ParseError> {
        let name = self.ident()?.to_ascii_lowercase();
        self.expect_tok(&Token::LParen)?;
        if name == "count" && self.eat_tok(&Token::Star) {
            self.expect_tok(&Token::RParen)?;
            return Ok(Expr::CountStar);
        }
        let distinct = self.eat_kw("DISTINCT");
        let mut args = Vec::new();
        if !self.check_tok(&Token::RParen) {
            args.push(self.expr()?);
            while self.eat_tok(&Token::Comma) {
                args.push(self.expr()?);
            }
        }
        self.expect_tok(&Token::RParen)?;
        Ok(Expr::FnCall {
            name,
            args,
            distinct,
        })
    }

    fn case_expr(&mut self) -> Result<Expr, ParseError> {
        self.expect_kw("CASE")?;
        let input = if self.at_kw("WHEN") {
            None
        } else {
            Some(Box::new(self.expr()?))
        };
        let mut whens = Vec::new();
        while self.eat_kw("WHEN") {
            let w = self.expr()?;
            self.expect_kw("THEN")?;
            let t = self.expr()?;
            whens.push((w, t));
        }
        if whens.is_empty() {
            return Err(self.error("CASE requires at least one WHEN"));
        }
        let else_ = if self.eat_kw("ELSE") {
            Some(Box::new(self.expr()?))
        } else {
            None
        };
        self.expect_kw("END")?;
        Ok(Expr::Case {
            input,
            whens,
            else_,
        })
    }

    fn list_or_comprehension(&mut self) -> Result<Expr, ParseError> {
        self.expect_tok(&Token::LBracket)?;
        if self.check_tok(&Token::RBracket) {
            self.bump();
            return Ok(Expr::List(Vec::new()));
        }
        // `[(a)-[:X]->(b) WHERE … | body]` is a pattern comprehension:
        // recognized by a path pattern with at least one step followed by
        // WHERE or `|` (a body is mandatory).
        if self.check_tok(&Token::LParen) {
            let save = self.pos;
            if let Ok(pat) = self.path_pattern() {
                if !pat.steps.is_empty() && (self.at_kw("WHERE") || self.check_tok(&Token::Pipe)) {
                    let filter = if self.eat_kw("WHERE") {
                        Some(Box::new(self.expr()?))
                    } else {
                        None
                    };
                    self.expect_tok(&Token::Pipe)?;
                    let body = Box::new(self.expr()?);
                    self.expect_tok(&Token::RBracket)?;
                    return Ok(Expr::PatternComprehension {
                        pattern: Box::new(pat),
                        filter,
                        body,
                    });
                }
            }
            self.pos = save;
        }
        // `[x IN list …]` is a comprehension.
        if matches!(self.peek(), Some(Token::Ident(_))) && self.at_kw_at(1, "IN") {
            let var = self.ident()?;
            self.expect_kw("IN")?;
            let list = self.expr()?;
            let filter = if self.eat_kw("WHERE") {
                Some(Box::new(self.expr()?))
            } else {
                None
            };
            let body = if self.eat_tok(&Token::Pipe) {
                Some(Box::new(self.expr()?))
            } else {
                None
            };
            self.expect_tok(&Token::RBracket)?;
            return Ok(Expr::ListComprehension {
                var,
                list: Box::new(list),
                filter,
                body,
            });
        }
        let mut items = vec![self.expr()?];
        while self.eat_tok(&Token::Comma) {
            items.push(self.expr()?);
        }
        self.expect_tok(&Token::RBracket)?;
        Ok(Expr::List(items))
    }

    fn paren_or_pattern(&mut self) -> Result<Expr, ParseError> {
        // Ambiguity: `( … )` may open a parenthesized expression or a
        // pattern predicate like `(a)-[:KNOWS]->(b)`. Try the pattern
        // first; accept it only if it has at least one relationship step
        // (a bare `(x)` is the variable `x`).
        let save = self.pos;
        if let Ok(pat) = self.path_pattern() {
            if !pat.steps.is_empty() {
                return Ok(Expr::PatternPredicate(Box::new(pat)));
            }
        }
        self.pos = save;
        self.expect_tok(&Token::LParen)?;
        let e = self.expr()?;
        self.expect_tok(&Token::RParen)?;
        Ok(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_section3_query() {
        let q = parse_query(
            "MATCH (r:Researcher)
             OPTIONAL MATCH (r)-[:SUPERVISES]->(s:Student)
             WITH r, count(s) AS studentsSupervised
             MATCH (r)-[:AUTHORS]->(p1:Publication)
             OPTIONAL MATCH (p1)<-[:CITES*]-(p2:Publication)
             RETURN r.name, studentsSupervised,
                    count(DISTINCT p2) AS citedCount",
        )
        .unwrap();
        let Query::Single(sq) = q else {
            panic!("expected single query")
        };
        assert_eq!(sq.clauses.len(), 5);
        let ret = sq.ret.unwrap();
        assert_eq!(ret.items.len(), 3);
        assert_eq!(ret.items[2].alias.as_deref(), Some("citedCount"));
        match &ret.items[2].expr {
            Expr::FnCall {
                name,
                distinct,
                args,
            } => {
                assert_eq!(name, "count");
                assert!(*distinct);
                assert_eq!(args.len(), 1);
            }
            other => panic!("unexpected expr {other:?}"),
        }
    }

    #[test]
    fn parse_variable_length_patterns() {
        let p = parse_pattern("(x:Teacher)-[:KNOWS*1..2]->(z)-[:KNOWS*1..2]->(y:Teacher)").unwrap();
        assert_eq!(p.steps.len(), 2);
        assert_eq!(p.steps[0].0.range, RangeSpec::Var(Some(1), Some(2)));
        let p2 = parse_pattern("(x)-[*0..]->(x)").unwrap();
        assert_eq!(p2.steps[0].0.range, RangeSpec::Var(Some(0), None));
        let p3 = parse_pattern("(a)-[:KNOWS*2]->(b)").unwrap();
        assert_eq!(p3.steps[0].0.range, RangeSpec::Var(Some(2), Some(2)));
        let p4 = parse_pattern("(a)-[r*]->(b)").unwrap();
        assert_eq!(p4.steps[0].0.range, RangeSpec::Var(None, None));
        assert_eq!(p4.steps[0].0.name.as_deref(), Some("r"));
    }

    #[test]
    fn rel_pattern_equivalences_from_paper() {
        // §4.2: `-[:KNOWS*1 {since: 1985}]-` and `-[:KNOWS*1..1 {since:
        // 1985}]-` denote the same pattern.
        let a = parse_pattern("()-[:KNOWS*1 {since: 1985}]-()").unwrap();
        let b = parse_pattern("()-[:KNOWS*1..1 {since: 1985}]-()").unwrap();
        assert_eq!(a.steps[0].0, b.steps[0].0);
        // While `-[:KNOWS {since: 1985}]-` has I = nil.
        let c = parse_pattern("()-[:KNOWS {since: 1985}]-()").unwrap();
        assert_eq!(c.steps[0].0.range, RangeSpec::None);
        assert_ne!(a.steps[0].0, c.steps[0].0);
    }

    #[test]
    fn directions() {
        let p = parse_pattern("(a)-->(b)<--(c)--(d)").unwrap();
        assert_eq!(p.steps[0].0.dir, Dir::Out);
        assert_eq!(p.steps[1].0.dir, Dir::In);
        assert_eq!(p.steps[2].0.dir, Dir::Both);
    }

    #[test]
    fn named_path() {
        let p = parse_pattern("p = (a)-[:X]->(b)").unwrap();
        assert_eq!(p.name.as_deref(), Some("p"));
    }

    #[test]
    fn multiple_types() {
        let p = parse_pattern("(a)-[:A|B|C]->(b)").unwrap();
        assert_eq!(p.steps[0].0.types, vec!["A", "B", "C"]);
        let p2 = parse_pattern("(a)-[:A|:B]->(b)").unwrap();
        assert_eq!(p2.steps[0].0.types, vec!["A", "B"]);
    }

    #[test]
    fn expression_precedence() {
        let e = parse_expression("1 + 2 * 3").unwrap();
        assert_eq!(
            e,
            Expr::Arith(
                ArithOp::Add,
                Box::new(Expr::int(1)),
                Box::new(Expr::Arith(
                    ArithOp::Mul,
                    Box::new(Expr::int(2)),
                    Box::new(Expr::int(3))
                ))
            )
        );
        // NOT binds tighter than AND; AND tighter than OR.
        let e2 = parse_expression("NOT a AND b OR c").unwrap();
        assert_eq!(
            e2,
            Expr::Or(
                Box::new(Expr::And(
                    Box::new(Expr::Not(Box::new(Expr::var("a")))),
                    Box::new(Expr::var("b"))
                )),
                Box::new(Expr::var("c"))
            )
        );
        // Power is right-associative.
        let e3 = parse_expression("2 ^ 3 ^ 2").unwrap();
        assert_eq!(
            e3,
            Expr::Arith(
                ArithOp::Pow,
                Box::new(Expr::int(2)),
                Box::new(Expr::Arith(
                    ArithOp::Pow,
                    Box::new(Expr::int(3)),
                    Box::new(Expr::int(2))
                ))
            )
        );
    }

    #[test]
    fn string_operators() {
        let e = parse_expression("n.name STARTS WITH 'N' AND n.name CONTAINS 'il'").unwrap();
        match e {
            Expr::And(a, b) => {
                assert!(matches!(*a, Expr::StartsWith(_, _)));
                assert!(matches!(*b, Expr::Contains(_, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn list_operations() {
        assert!(matches!(
            parse_expression("[1, 2, 3]").unwrap(),
            Expr::List(v) if v.len() == 3
        ));
        assert!(matches!(
            parse_expression("x IN [1, 2]").unwrap(),
            Expr::In(_, _)
        ));
        assert!(matches!(
            parse_expression("xs[0]").unwrap(),
            Expr::Index(_, _)
        ));
        assert!(matches!(
            parse_expression("xs[1..3]").unwrap(),
            Expr::Slice(_, Some(_), Some(_))
        ));
        assert!(matches!(
            parse_expression("xs[..3]").unwrap(),
            Expr::Slice(_, None, Some(_))
        ));
        assert!(matches!(
            parse_expression("xs[1..]").unwrap(),
            Expr::Slice(_, Some(_), None)
        ));
    }

    #[test]
    fn list_comprehension() {
        let e = parse_expression("[x IN range(1, 10) WHERE x % 2 = 0 | x * x]").unwrap();
        match e {
            Expr::ListComprehension {
                var, filter, body, ..
            } => {
                assert_eq!(var, "x");
                assert!(filter.is_some());
                assert!(body.is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn quantifiers() {
        let e = parse_expression("all(x IN xs WHERE x > 0)").unwrap();
        assert!(matches!(
            e,
            Expr::Quantified {
                q: Quantifier::All,
                ..
            }
        ));
        // `none` used as a plain function still parses as a call.
        let e2 = parse_expression("none(xs)").unwrap();
        assert!(matches!(e2, Expr::FnCall { .. }));
    }

    #[test]
    fn case_expressions() {
        let e = parse_expression("CASE WHEN x > 0 THEN 'pos' ELSE 'neg' END").unwrap();
        assert!(matches!(e, Expr::Case { input: None, .. }));
        let e2 = parse_expression("CASE x WHEN 1 THEN 'one' WHEN 2 THEN 'two' END").unwrap();
        match e2 {
            Expr::Case {
                input,
                whens,
                else_,
            } => {
                assert!(input.is_some());
                assert_eq!(whens.len(), 2);
                assert!(else_.is_none());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn pattern_predicate_in_where() {
        let q = parse_query("MATCH (a), (b) WHERE (a)-[:KNOWS]->(b) RETURN a").unwrap();
        let Query::Single(sq) = q else { panic!() };
        let Clause::Match { where_, .. } = &sq.clauses[0] else {
            panic!()
        };
        assert!(matches!(where_, Some(Expr::PatternPredicate(_))));
    }

    #[test]
    fn parenthesized_expression_not_pattern() {
        let e = parse_expression("(1 + 2) * 3").unwrap();
        assert!(matches!(e, Expr::Arith(ArithOp::Mul, _, _)));
        let e2 = parse_expression("(x)").unwrap();
        assert_eq!(e2, Expr::var("x"));
    }

    #[test]
    fn label_predicate_expression() {
        // From the paper's fraud query: WHERE pInfo:SSN OR pInfo:PhoneNumber.
        let e = parse_expression("pInfo:SSN OR pInfo:PhoneNumber").unwrap();
        match e {
            Expr::Or(a, _) => match *a {
                Expr::HasLabels(v, ls) => {
                    assert_eq!(*v, Expr::var("pInfo"));
                    assert_eq!(ls, vec!["SSN"]);
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn union_queries() {
        let q = parse_query("RETURN 1 AS x UNION RETURN 2 AS x UNION ALL RETURN 3 AS x").unwrap();
        let Query::Union { all, left, .. } = q else {
            panic!()
        };
        assert!(all);
        assert!(matches!(*left, Query::Union { all: false, .. }));
    }

    #[test]
    fn updating_clauses() {
        let q = parse_query(
            "MATCH (a:Person {name: 'Ada'})
             MERGE (b:Person {name: 'Bo'})
               ON CREATE SET b.created = true
               ON MATCH SET b.matched = true
             CREATE (a)-[:KNOWS {since: 2020}]->(b)
             SET a.age = 36, a:Verified, a += {x: 1}
             REMOVE a.temp, a:Unverified
             DETACH DELETE a",
        )
        .unwrap();
        let Query::Single(sq) = q else { panic!() };
        assert_eq!(sq.clauses.len(), 6);
        assert!(sq.ret.is_none());
        let Clause::Set { items } = &sq.clauses[3] else {
            panic!()
        };
        assert_eq!(items.len(), 3);
        assert!(matches!(items[0], SetItem::Prop(_, _, _)));
        assert!(matches!(items[1], SetItem::Labels(_, _)));
        assert!(matches!(items[2], SetItem::Merge(_, _)));
    }

    #[test]
    fn order_skip_limit() {
        let q = parse_query(
            "MATCH (svc:Service)<-[:DEPENDS_ON*]-(dep:Service)
             RETURN svc, count(DISTINCT dep) AS dependents
             ORDER BY dependents DESC
             LIMIT 1",
        )
        .unwrap();
        let Query::Single(sq) = q else { panic!() };
        let ret = sq.ret.unwrap();
        assert_eq!(ret.order_by.len(), 1);
        assert!(!ret.order_by[0].ascending);
        assert_eq!(ret.limit, Some(Expr::int(1)));
    }

    #[test]
    fn with_where_fraud_query() {
        let q = parse_query(
            "MATCH (accHolder:AccountHolder)-[:HAS]->(pInfo)
             WHERE pInfo:SSN OR pInfo:PhoneNumber OR pInfo:Address
             WITH pInfo,
                  collect(accHolder.uniqueId) AS accountHolders,
                  count(*) AS fraudRingCount
             WHERE fraudRingCount > 1
             RETURN accountHolders,
                    labels(pInfo) AS personalInformation,
                    fraudRingCount",
        )
        .unwrap();
        let Query::Single(sq) = q else { panic!() };
        assert_eq!(sq.clauses.len(), 2);
        let Clause::With { where_, ret } = &sq.clauses[1] else {
            panic!()
        };
        assert!(where_.is_some());
        assert_eq!(ret.items.len(), 3);
    }

    #[test]
    fn from_graph_clause() {
        let q = parse_query(
            "FROM GRAPH soc_net AT 'hdfs://x/soc_network'
             MATCH (a)-[:FRIEND]-(b)
             RETURN a, b",
        )
        .unwrap();
        let Query::Single(sq) = q else { panic!() };
        let Clause::FromGraph { name, at } = &sq.clauses[0] else {
            panic!()
        };
        assert_eq!(name, "soc_net");
        assert_eq!(at.as_deref(), Some("hdfs://x/soc_network"));
    }

    #[test]
    fn return_graph_of() {
        let q = parse_query(
            "MATCH (a)-[:FRIEND]-()-[:FRIEND]-(b)
             WITH DISTINCT a, b
             RETURN GRAPH friends OF (a)-[:SHARE_FRIEND]->(b)",
        )
        .unwrap();
        let Query::Single(sq) = q else { panic!() };
        let (name, pats) = sq.ret_graph.unwrap();
        assert_eq!(name, "friends");
        assert_eq!(pats.len(), 1);
    }

    #[test]
    fn unwind_and_params() {
        let q = parse_query("UNWIND $events AS e RETURN e.id").unwrap();
        let Query::Single(sq) = q else { panic!() };
        let Clause::Unwind { expr, alias } = &sq.clauses[0] else {
            panic!()
        };
        assert_eq!(expr, &Expr::Param("events".into()));
        assert_eq!(alias, "e");
    }

    #[test]
    fn return_star_and_distinct() {
        let q = parse_query("MATCH (n) RETURN *").unwrap();
        let Query::Single(sq) = q else { panic!() };
        assert!(sq.ret.unwrap().star);
        let q2 = parse_query("MATCH (n) RETURN DISTINCT n, n.x").unwrap();
        let Query::Single(sq2) = q2 else { panic!() };
        let r = sq2.ret.unwrap();
        assert!(r.distinct);
        assert_eq!(r.items.len(), 2);
    }

    #[test]
    fn error_positions() {
        let err = parse_query("MATCH (n RETURN n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.col > 1);
        assert!(parse_query("").is_err());
        assert!(parse_query("FROB (n)").is_err());
        assert!(parse_query("MATCH (a)<-[:X]->(b) RETURN a").is_err());
    }

    #[test]
    fn keywords_case_insensitive() {
        assert!(parse_query("match (n) return n").is_ok());
        assert!(parse_query("MaTcH (n) rEtUrN n").is_ok());
    }
}
