//! The lexer: Cypher text → token stream with source positions.
//!
//! Keywords are not distinguished at this level — Cypher keywords are
//! case-insensitive and non-reserved in many positions, so the parser
//! matches identifier tokens against keywords contextually.

use std::fmt;

/// A lexical token.
#[derive(Clone, PartialEq, Debug)]
pub enum Token {
    /// An identifier or keyword (including backtick-quoted identifiers,
    /// with the quotes removed).
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A float literal.
    Float(f64),
    /// A string literal (quotes removed, escapes resolved).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `;`
    Semicolon,
    /// `.`
    Dot,
    /// `..`
    DotDot,
    /// `|`
    Pipe,
    /// `-`
    Dash,
    /// `+`
    Plus,
    /// `+=`
    PlusEq,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `^`
    Caret,
    /// `=`
    Eq,
    /// `<>`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `$`
    Dollar,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(i) => write!(f, "{i}"),
            Token::Float(x) => write!(f, "{x}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::LBracket => write!(f, "["),
            Token::RBracket => write!(f, "]"),
            Token::LBrace => write!(f, "{{"),
            Token::RBrace => write!(f, "}}"),
            Token::Comma => write!(f, ","),
            Token::Colon => write!(f, ":"),
            Token::Semicolon => write!(f, ";"),
            Token::Dot => write!(f, "."),
            Token::DotDot => write!(f, ".."),
            Token::Pipe => write!(f, "|"),
            Token::Dash => write!(f, "-"),
            Token::Plus => write!(f, "+"),
            Token::PlusEq => write!(f, "+="),
            Token::Star => write!(f, "*"),
            Token::Slash => write!(f, "/"),
            Token::Percent => write!(f, "%"),
            Token::Caret => write!(f, "^"),
            Token::Eq => write!(f, "="),
            Token::Neq => write!(f, "<>"),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::Dollar => write!(f, "$"),
        }
    }
}

/// A token paired with its position in the source text.
#[derive(Clone, PartialEq, Debug)]
pub struct Spanned {
    /// The token.
    pub tok: Token,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// A lexing failure with position information.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// Human-readable description.
    pub msg: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at {}:{}: {}", self.line, self.col, self.msg)
    }
}

impl std::error::Error for LexError {}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn error(&self, msg: impl Into<String>) -> LexError {
        LexError {
            msg: msg.into(),
            line: self.line,
            col: self.col,
        }
    }

    fn skip_trivia(&mut self) -> Result<(), LexError> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let (l, c) = (self.line, self.col);
                    self.bump();
                    self.bump();
                    loop {
                        match self.peek() {
                            Some(b'*') if self.peek2() == Some(b'/') => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            Some(_) => {
                                self.bump();
                            }
                            None => {
                                return Err(LexError {
                                    msg: "unterminated block comment".into(),
                                    line: l,
                                    col: c,
                                })
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn lex_string(&mut self, quote: u8) -> Result<Token, LexError> {
        self.bump(); // opening quote
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.error("unterminated string literal")),
                Some(c) if c == quote => return Ok(Token::Str(out)),
                Some(b'\\') => match self.bump() {
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'\'') => out.push('\''),
                    Some(b'"') => out.push('"'),
                    Some(c) => out.push(c as char),
                    None => return Err(self.error("unterminated escape")),
                },
                Some(c) => {
                    // Re-assemble UTF-8 multibyte sequences.
                    if c < 0x80 {
                        out.push(c as char);
                    } else {
                        let start = self.pos - 1;
                        let mut end = self.pos;
                        while end < self.src.len() && (self.src[end] & 0xC0) == 0x80 {
                            end += 1;
                            self.bump();
                        }
                        let s = std::str::from_utf8(&self.src[start..end])
                            .map_err(|_| self.error("invalid UTF-8 in string"))?;
                        out.push_str(s);
                    }
                }
            }
        }
    }

    fn lex_number(&mut self) -> Result<Token, LexError> {
        let start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
        }
        let mut is_float = false;
        // A '.' begins a fraction only if followed by a digit (so `1..3`
        // lexes as `1`, `..`, `3`).
        if self.peek() == Some(b'.') && self.peek2().is_some_and(|c| c.is_ascii_digit()) {
            is_float = true;
            self.bump();
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.bump();
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            let save = self.pos;
            self.bump();
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.bump();
            }
            if self.peek().is_some_and(|c| c.is_ascii_digit()) {
                is_float = true;
                while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                    self.bump();
                }
            } else {
                // Not an exponent after all (e.g. `1e` as ident boundary).
                self.pos = save;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Token::Float)
                .map_err(|_| self.error(format!("invalid float literal {text}")))
        } else {
            text.parse::<i64>()
                .map(Token::Int)
                .map_err(|_| self.error(format!("integer literal out of range: {text}")))
        }
    }

    fn lex_ident(&mut self) -> Token {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
        {
            self.bump();
        }
        Token::Ident(
            std::str::from_utf8(&self.src[start..self.pos])
                .unwrap()
                .to_string(),
        )
    }

    fn lex_backtick_ident(&mut self) -> Result<Token, LexError> {
        self.bump(); // opening backtick
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.error("unterminated backtick identifier")),
                Some(b'`') => return Ok(Token::Ident(out)),
                Some(c) => out.push(c as char),
            }
        }
    }

    fn next_token(&mut self) -> Result<Option<Spanned>, LexError> {
        self.skip_trivia()?;
        let (line, col) = (self.line, self.col);
        let Some(c) = self.peek() else {
            return Ok(None);
        };
        let tok = match c {
            b'\'' | b'"' => self.lex_string(c)?,
            b'`' => self.lex_backtick_ident()?,
            b'0'..=b'9' => self.lex_number()?,
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.lex_ident(),
            b'(' => {
                self.bump();
                Token::LParen
            }
            b')' => {
                self.bump();
                Token::RParen
            }
            b'[' => {
                self.bump();
                Token::LBracket
            }
            b']' => {
                self.bump();
                Token::RBracket
            }
            b'{' => {
                self.bump();
                Token::LBrace
            }
            b'}' => {
                self.bump();
                Token::RBrace
            }
            b',' => {
                self.bump();
                Token::Comma
            }
            b':' => {
                self.bump();
                Token::Colon
            }
            b';' => {
                self.bump();
                Token::Semicolon
            }
            b'|' => {
                self.bump();
                Token::Pipe
            }
            b'-' => {
                self.bump();
                Token::Dash
            }
            b'*' => {
                self.bump();
                Token::Star
            }
            b'/' => {
                self.bump();
                Token::Slash
            }
            b'%' => {
                self.bump();
                Token::Percent
            }
            b'^' => {
                self.bump();
                Token::Caret
            }
            b'$' => {
                self.bump();
                Token::Dollar
            }
            b'=' => {
                self.bump();
                Token::Eq
            }
            b'+' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    Token::PlusEq
                } else {
                    Token::Plus
                }
            }
            b'.' => {
                self.bump();
                if self.peek() == Some(b'.') {
                    self.bump();
                    Token::DotDot
                } else {
                    Token::Dot
                }
            }
            b'<' => {
                self.bump();
                match self.peek() {
                    Some(b'=') => {
                        self.bump();
                        Token::Le
                    }
                    Some(b'>') => {
                        self.bump();
                        Token::Neq
                    }
                    _ => Token::Lt,
                }
            }
            b'>' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    Token::Ge
                } else {
                    Token::Gt
                }
            }
            other => {
                return Err(self.error(format!("unexpected character '{}'", other as char)));
            }
        };
        Ok(Some(Spanned { tok, line, col }))
    }
}

/// Lexes a complete source string.
pub fn lex(src: &str) -> Result<Vec<Spanned>, LexError> {
    let mut lx = Lexer::new(src);
    let mut out = Vec::new();
    while let Some(t) = lx.next_token()? {
        out.push(t);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn simple_match() {
        assert_eq!(
            toks("MATCH (r:Researcher)"),
            vec![
                Token::Ident("MATCH".into()),
                Token::LParen,
                Token::Ident("r".into()),
                Token::Colon,
                Token::Ident("Researcher".into()),
                Token::RParen,
            ]
        );
    }

    #[test]
    fn arrows_decompose() {
        assert_eq!(
            toks("-[:CITES*]->"),
            vec![
                Token::Dash,
                Token::LBracket,
                Token::Colon,
                Token::Ident("CITES".into()),
                Token::Star,
                Token::RBracket,
                Token::Dash,
                Token::Gt,
            ]
        );
        assert_eq!(toks("<--"), vec![Token::Lt, Token::Dash, Token::Dash]);
    }

    #[test]
    fn numbers() {
        assert_eq!(toks("42"), vec![Token::Int(42)]);
        assert_eq!(toks("2.5"), vec![Token::Float(2.5)]);
        assert_eq!(toks("1e3"), vec![Token::Float(1000.0)]);
        assert_eq!(toks("2.5e-1"), vec![Token::Float(0.25)]);
        // Slice syntax must not lex as a float.
        assert_eq!(
            toks("1..3"),
            vec![Token::Int(1), Token::DotDot, Token::Int(3)]
        );
    }

    #[test]
    fn strings_and_escapes() {
        assert_eq!(toks(r#"'it\'s'"#), vec![Token::Str("it's".into())]);
        assert_eq!(toks(r#""hi there""#), vec![Token::Str("hi there".into())]);
        assert_eq!(toks(r#"'a\nb'"#), vec![Token::Str("a\nb".into())]);
        assert_eq!(toks("'héllo'"), vec![Token::Str("héllo".into())]);
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            toks("RETURN // trailing\n 1 /* block\ncomment */ + 2"),
            vec![
                Token::Ident("RETURN".into()),
                Token::Int(1),
                Token::Plus,
                Token::Int(2)
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            toks("< <= <> > >= = + +="),
            vec![
                Token::Lt,
                Token::Le,
                Token::Neq,
                Token::Gt,
                Token::Ge,
                Token::Eq,
                Token::Plus,
                Token::PlusEq,
            ]
        );
    }

    #[test]
    fn backtick_identifier() {
        assert_eq!(
            toks("`weird name`"),
            vec![Token::Ident("weird name".into())]
        );
    }

    #[test]
    fn positions_tracked() {
        let spanned = lex("MATCH\n  (n)").unwrap();
        assert_eq!((spanned[0].line, spanned[0].col), (1, 1));
        assert_eq!((spanned[1].line, spanned[1].col), (2, 3));
    }

    #[test]
    fn errors_reported() {
        assert!(lex("'unterminated").is_err());
        assert!(lex("@").is_err());
        assert!(lex("/* open").is_err());
        assert!(lex("99999999999999999999").is_err());
    }

    #[test]
    fn dollar_parameter() {
        assert_eq!(
            toks("$param"),
            vec![Token::Dollar, Token::Ident("param".into())]
        );
    }
}
