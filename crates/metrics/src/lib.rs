//! Lock-free metric primitives and a Prometheus-style text renderer.
//!
//! Three instrument kinds cover everything the engine reports:
//!
//! * [`Counter`] — a monotonically increasing `u64` (requests served,
//!   rows returned, poison events).
//! * [`Gauge`] — an instantaneous `i64` level (open connections, queue
//!   depth, pinned snapshots).
//! * [`Histogram`] — a log₂-bucketed distribution of `u64` samples
//!   (latencies in microseconds, commit-group sizes) answering
//!   p50/p90/p99/max without storing samples.
//!
//! Every instrument is a handful of `AtomicU64`s updated with relaxed
//! ordering: recording never takes a lock, never allocates, and scales
//! with writer concurrency. Snapshots are taken field-by-field while
//! writers proceed; each field is individually monotonic, and a
//! histogram's `count` is *derived from* its bucket reads (not stored
//! separately), so `count == Σ buckets` holds in every snapshot by
//! construction.
//!
//! [`fmt_counter`], [`fmt_gauge`] and [`fmt_histogram`] append the
//! conventional `# TYPE`-annotated exposition lines to a string, so any
//! layer can contribute its instruments to one text page.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter starting at zero.
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous level that can move both ways.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A gauge starting at zero.
    pub const fn new() -> Gauge {
        Gauge(AtomicI64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts one.
    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites the level.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// The current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Bucket `i` of a histogram holds samples whose bit length is `i`:
/// bucket 0 is exactly the value `0`, bucket `i ≥ 1` covers
/// `[2^(i-1), 2^i)`. 65 buckets cover the whole `u64` range.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A lock-free log₂-bucketed distribution of `u64` samples.
///
/// Recording touches three atomics (bucket, sum, max) with relaxed
/// ordering. Quantiles are estimated from bucket boundaries — exact to
/// within a factor of two, which is the resolution that matters for
/// latency monitoring — and `max` is exact.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Histogram {
        // `AtomicU64` is not `Copy`; build the array from a const item.
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            buckets: [ZERO; HISTOGRAM_BUCKETS],
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// The bucket index a value lands in: its bit length.
    fn bucket_of(v: u64) -> usize {
        (u64::BITS - v.leading_zeros()) as usize
    }

    /// The largest value bucket `i` can hold (inclusive).
    fn upper_bound(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// A point-in-time copy. Writers may race the copy; every field is
    /// individually monotonic and `count == Σ buckets` always holds
    /// (the count is computed from the very bucket reads it summarizes).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        let mut count = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            buckets[i] = b.load(Ordering::Relaxed);
            count += buckets[i];
        }
        HistogramSnapshot {
            buckets,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A consistent copy of a [`Histogram`]'s state.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts; see [`HISTOGRAM_BUCKETS`].
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total samples — always the sum of `buckets`.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Largest recorded value (exact).
    pub max: u64,
}

impl HistogramSnapshot {
    /// The value at quantile `q` (`0.0 ..= 1.0`), estimated as the upper
    /// bound of the first bucket whose cumulative count reaches
    /// `ceil(q · count)`. Zero when the histogram is empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // The top occupied bucket is bounded by the exact max.
                return Histogram::upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

/// Appends a `# TYPE`-annotated counter exposition line.
pub fn fmt_counter(out: &mut String, name: &str, help: &str, v: u64) {
    use std::fmt::Write;
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} counter");
    let _ = writeln!(out, "{name} {v}");
}

/// Appends a `# TYPE`-annotated gauge exposition line.
pub fn fmt_gauge(out: &mut String, name: &str, help: &str, v: i64) {
    use std::fmt::Write;
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} gauge");
    let _ = writeln!(out, "{name} {v}");
}

/// Appends histogram exposition lines: cumulative `_bucket{le="…"}`
/// series for each occupied bucket boundary, then `_sum` and `_count`.
pub fn fmt_histogram(out: &mut String, name: &str, help: &str, s: &HistogramSnapshot) {
    use std::fmt::Write;
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} histogram");
    let mut cum = 0u64;
    for (i, &c) in s.buckets.iter().enumerate() {
        if c == 0 {
            continue;
        }
        cum += c;
        let _ = writeln!(
            out,
            "{name}_bucket{{le=\"{}\"}} {cum}",
            Histogram::upper_bound(i)
        );
    }
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", s.count);
    let _ = writeln!(out, "{name}_sum {}", s.sum);
    let _ = writeln!(out, "{name}_count {}", s.count);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);

        let g = Gauge::new();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.add(-5);
        assert_eq!(g.get(), -4);
        g.set(7);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::new();
        for v in [0u64, 1, 1, 2, 3, 4, 100, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 8);
        assert_eq!(s.count, s.buckets.iter().sum::<u64>());
        assert_eq!(s.sum, 1111);
        assert_eq!(s.max, 1000);
        assert_eq!(s.buckets[0], 1); // the value 0
        assert_eq!(s.buckets[1], 2); // the value 1, twice
        assert_eq!(s.buckets[2], 2); // 2 and 3
        assert_eq!(s.buckets[3], 1); // 4
                                     // p50: rank 4 of 8 lands in bucket 2 (values 2..=3).
        assert_eq!(s.p50(), 3);
        // p99: the top sample; bucket bound 1023 clamped to the exact max.
        assert_eq!(s.p99(), 1000);
        // Extremes.
        assert_eq!(s.quantile(0.0), 0);
        assert_eq!(s.quantile(1.0), 1000);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.sum, 0);
        assert_eq!(s.max, 0);
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p99(), 0);
    }

    #[test]
    fn huge_values_land_in_the_top_bucket() {
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX / 2 + 1);
        let s = h.snapshot();
        assert_eq!(s.buckets[64], 2);
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.p99(), u64::MAX);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Histogram::new();
        let c = Counter::new();
        std::thread::scope(|s| {
            for t in 0..8 {
                s.spawn(|| {
                    let _ = t;
                    for v in 0..1000u64 {
                        h.record(v);
                        c.inc();
                    }
                });
            }
        });
        let s = h.snapshot();
        assert_eq!(s.count, 8000);
        assert_eq!(s.count, s.buckets.iter().sum::<u64>());
        assert_eq!(c.get(), 8000);
        assert_eq!(s.max, 999);
    }

    #[test]
    fn snapshot_under_concurrent_writers_keeps_invariants() {
        let h = Histogram::new();
        std::thread::scope(|s| {
            let writer = s.spawn(|| {
                for v in 0..50_000u64 {
                    h.record(v % 4096);
                }
            });
            for _ in 0..200 {
                let snap = h.snapshot();
                // Derived count: always equals the bucket sum, even while
                // a writer races the per-bucket reads.
                assert_eq!(snap.count, snap.buckets.iter().sum::<u64>());
            }
            writer.join().unwrap();
        });
        assert_eq!(h.snapshot().count, 50_000);
    }

    #[test]
    fn exposition_format() {
        let mut out = String::new();
        fmt_counter(&mut out, "x_total", "events", 3);
        assert!(out.contains("# TYPE x_total counter"));
        assert!(out.contains("x_total 3"));

        let mut out = String::new();
        fmt_gauge(&mut out, "depth", "queue depth", -2);
        assert!(out.contains("# TYPE depth gauge"));
        assert!(out.contains("depth -2"));

        let h = Histogram::new();
        h.record(1);
        h.record(5);
        let mut out = String::new();
        fmt_histogram(&mut out, "lat_us", "latency", &h.snapshot());
        assert!(out.contains("# TYPE lat_us histogram"));
        assert!(out.contains("lat_us_bucket{le=\"1\"} 1"));
        assert!(out.contains("lat_us_bucket{le=\"7\"} 2"));
        assert!(out.contains("lat_us_bucket{le=\"+Inf\"} 2"));
        assert!(out.contains("lat_us_sum 6"));
        assert!(out.contains("lat_us_count 2"));
    }
}
