//! An interactive Cypher shell over an in-memory graph.
//!
//! ```sh
//! cargo run --example repl
//! ```
//!
//! Commands: any Cypher statement (reads and updates); `:explain <query>`
//! prints the physical plan; `:schema` prints label/type statistics;
//! `:load figure1|figure4|datacenter|fraud|social` replaces the graph with
//! a generated workload; `:quit` exits.

use cypher::{explain, run, Params, PropertyGraph};
use cypher_workload as workload;
use std::io::{self, BufRead, Write};

fn print_schema(g: &PropertyGraph) {
    println!(
        "nodes: {}  relationships: {}",
        g.node_count(),
        g.rel_count()
    );
    let stats = g.stats();
    let mut labels: Vec<_> = stats
        .label_cardinality
        .iter()
        .map(|(&s, &c)| (g.resolve(s).to_string(), c))
        .collect();
    labels.sort();
    for (l, c) in labels {
        println!("  (:{l})            {c}");
    }
    let mut types: Vec<_> = stats
        .type_cardinality
        .iter()
        .map(|(&s, &c)| (g.resolve(s).to_string(), c))
        .collect();
    types.sort();
    for (t, c) in types {
        println!("  -[:{t}]->         {c}");
    }
}

fn main() {
    let mut g = workload::figure1();
    let params = Params::new();
    println!("cypher-rs shell — Figure 1 graph loaded. :quit to exit.");
    let stdin = io::stdin();
    loop {
        print!("cypher> ");
        io::stdout().flush().ok();
        let Some(Ok(line)) = stdin.lock().lines().next() else {
            break;
        };
        let line = line.trim().to_string();
        if line.is_empty() {
            continue;
        }
        match line.as_str() {
            ":quit" | ":q" | ":exit" => break,
            ":schema" => {
                print_schema(&g);
                continue;
            }
            _ => {}
        }
        if let Some(target) = line.strip_prefix(":load ") {
            g = match target.trim() {
                "figure1" => workload::figure1(),
                "figure4" => workload::figure4(),
                "datacenter" => workload::datacenter(200, 4, 2, 42),
                "fraud" => workload::fraud_rings(100, 4, 4, 7),
                "social" => workload::social_network(200, 6, 5, 11),
                other => {
                    println!("unknown workload: {other}");
                    continue;
                }
            };
            print_schema(&g);
            continue;
        }
        if let Some(q) = line.strip_prefix(":explain ") {
            match explain(&g, q) {
                Ok(plan) => println!("{plan}"),
                Err(e) => println!("error: {e}"),
            }
            continue;
        }
        let t0 = std::time::Instant::now();
        match run(&mut g, &line, &params) {
            Ok(table) => {
                print!("{table}");
                println!(
                    "{} row(s) in {:.1} ms",
                    table.len(),
                    t0.elapsed().as_secs_f64() * 1e3
                );
            }
            Err(e) => println!("error: {e}"),
        }
    }
}
