//! The Section 3 walkthrough, step by step: every intermediate table the
//! paper prints (Figure 2a, Figure 2b, the tables after lines 4 and 5, and
//! the final result) is produced by running the corresponding query
//! prefix. Also demonstrates parameters and the update language by
//! extending the graph afterwards.
//!
//! ```sh
//! cargo run --example academic_graph
//! ```

use cypher::workload::figure1;
use cypher::{run, run_read, Params, Value};

fn main() {
    let mut g = figure1();
    let params = Params::new();

    println!("== Figure 2a: researchers and their (optional) students ==");
    let fig2a = run_read(
        &g,
        "MATCH (r:Researcher)
         OPTIONAL MATCH (r)-[:SUPERVISES]->(s:Student)
         RETURN r, s",
        &params,
    )
    .unwrap();
    println!("{fig2a}");

    println!("== Figure 2b: WITH r, count(s) AS studentsSupervised ==");
    let fig2b = run_read(
        &g,
        "MATCH (r:Researcher)
         OPTIONAL MATCH (r)-[:SUPERVISES]->(s:Student)
         WITH r, count(s) AS studentsSupervised
         RETURN r, studentsSupervised",
        &params,
    )
    .unwrap();
    println!("{fig2b}");

    println!("== After line 4: Thor authored nothing and disappears ==");
    let line4 = run_read(
        &g,
        "MATCH (r:Researcher)
         OPTIONAL MATCH (r)-[:SUPERVISES]->(s:Student)
         WITH r, count(s) AS studentsSupervised
         MATCH (r)-[:AUTHORS]->(p1:Publication)
         RETURN r, studentsSupervised, p1",
        &params,
    )
    .unwrap();
    println!("{line4}");

    println!("== After line 5: CITES* with the duplicate † rows ==");
    let line5 = run_read(
        &g,
        "MATCH (r:Researcher)
         OPTIONAL MATCH (r)-[:SUPERVISES]->(s:Student)
         WITH r, count(s) AS studentsSupervised
         MATCH (r)-[:AUTHORS]->(p1:Publication)
         OPTIONAL MATCH (p1)<-[:CITES*]-(p2:Publication)
         RETURN r, studentsSupervised, p1, p2",
        &params,
    )
    .unwrap();
    println!("{line5}");

    println!("== Final result (lines 6-7) ==");
    let result = run_read(
        &g,
        "MATCH (r:Researcher)
         OPTIONAL MATCH (r)-[:SUPERVISES]->(s:Student)
         WITH r, count(s) AS studentsSupervised
         MATCH (r)-[:AUTHORS]->(p1:Publication)
         OPTIONAL MATCH (p1)<-[:CITES*]-(p2:Publication)
         RETURN r.name, studentsSupervised,
                count(DISTINCT p2) AS citedCount",
        &params,
    )
    .unwrap();
    println!("{result}");

    // Extend the graph: Thor finally publishes, citing Elin's p269.
    println!("== Updating: Thor publishes (MERGE + CREATE) ==");
    let mut p = Params::new();
    p.insert("acmid".into(), Value::int(301));
    run(
        &mut g,
        "MATCH (thor:Researcher {name: 'Thor'})
         MERGE (paper:Publication {acmid: $acmid})
         CREATE (thor)-[:AUTHORS]->(paper)
         WITH paper
         MATCH (cited:Publication {acmid: 269})
         CREATE (paper)-[:CITES]->(cited)",
        &p,
    )
    .unwrap();
    let updated = run_read(
        &g,
        "MATCH (r:Researcher)-[:AUTHORS]->(p1:Publication)
         OPTIONAL MATCH (p1)<-[:CITES*]-(p2:Publication)
         RETURN r.name, count(DISTINCT p2) AS citedCount",
        &params,
    )
    .unwrap();
    println!("{updated}");
    println!(
        "graph now has {} nodes / {} relationships",
        g.node_count(),
        g.rel_count()
    );
}
