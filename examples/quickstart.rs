//! Quickstart: build the paper's Figure 1 graph with Cypher `CREATE`
//! statements, then run the Section 3 running example end to end.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use cypher::{explain, run, run_read, Params, PropertyGraph};

fn main() {
    let mut g = PropertyGraph::new();
    let params = Params::new();

    // Build the Figure 1 graph in Cypher itself.
    run(
        &mut g,
        "CREATE (nils:Researcher {name: 'Nils'}),
                (elin:Researcher {name: 'Elin'}),
                (thor:Researcher {name: 'Thor'}),
                (sten:Student {name: 'Sten'}),
                (linda:Student {name: 'Linda'}),
                (p220:Publication {acmid: 220}),
                (p190:Publication {acmid: 190}),
                (p235:Publication {acmid: 235}),
                (p240:Publication {acmid: 240}),
                (p269:Publication {acmid: 269}),
                (nils)-[:AUTHORS]->(p220),
                (elin)-[:AUTHORS]->(p240),
                (elin)-[:AUTHORS]->(p269),
                (elin)-[:SUPERVISES]->(sten),
                (elin)-[:SUPERVISES]->(linda),
                (thor)-[:SUPERVISES]->(sten),
                (p220)-[:CITES]->(p190),
                (p235)-[:CITES]->(p220),
                (p240)-[:CITES]->(p220),
                (p269)-[:CITES]->(p235),
                (p269)-[:CITES]->(p240)",
        &params,
    )
    .expect("graph construction");
    println!(
        "Built Figure 1: {} nodes, {} relationships\n",
        g.node_count(),
        g.rel_count()
    );

    // The running example of Section 3.
    let query = "MATCH (r:Researcher)
                 OPTIONAL MATCH (r)-[:SUPERVISES]->(s:Student)
                 WITH r, count(s) AS studentsSupervised
                 MATCH (r)-[:AUTHORS]->(p1:Publication)
                 OPTIONAL MATCH (p1)<-[:CITES*]-(p2:Publication)
                 RETURN r.name, studentsSupervised,
                        count(DISTINCT p2) AS citedCount";

    println!("Query:\n{query}\n");
    println!("Physical plan:\n{}", explain(&g, query).unwrap());

    let table = run_read(&g, query, &params).expect("query execution");
    println!("Result (the paper's final table):\n{table}");
}
