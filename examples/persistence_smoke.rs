//! Cross-process persistence smoke test: `write` populates a data
//! directory through the [`cypher::Database`] facade and exits; `read`
//! reopens it (in a different process) and verifies the recovered graph
//! answers queries correctly. CI runs the two modes as separate steps of
//! the same job, so recovery is exercised across a real process boundary,
//! not just a drop-and-reopen inside one address space.
//!
//! ```text
//! cargo run --example persistence_smoke -- write /tmp/smoke-data
//! cargo run --example persistence_smoke -- read  /tmp/smoke-data
//! ```

use cypher::{Database, Params, Value};

const PEOPLE: i64 = 500;

fn main() {
    let mut args = std::env::args().skip(1);
    let mode = args.next().unwrap_or_default();
    let dir = args.next().unwrap_or_else(|| "smoke-data".to_string());
    let params = Params::new();
    match mode.as_str() {
        "write" => {
            let mut db = Database::open(&dir).expect("open datadir");
            for i in 0..PEOPLE {
                db.query(
                    &format!("CREATE (:Person {{id: {i}, cohort: {}}})", i % 10),
                    &params,
                )
                .expect("create");
            }
            db.query(
                "MATCH (a:Person {id: 0}), (b:Person {id: 1}) \
                 CREATE (a)-[:KNOWS {since: 2018}]->(b)",
                &params,
            )
            .expect("relate");
            // Churn that must survive recovery: deletes, label and
            // property updates, and at least one checkpoint.
            db.query("MATCH (n:Person {id: 499}) DETACH DELETE n", &params)
                .expect("delete");
            db.query("MATCH (n:Person {cohort: 3}) SET n:Cohort3", &params)
                .expect("label");
            db.checkpoint().expect("checkpoint");
            db.query("MATCH (n:Person {id: 7}) SET n.vip = true", &params)
                .expect("post-checkpoint update");
            db.close().expect("close");
            println!("persistence smoke: wrote {} people into {dir}", PEOPLE - 1);
        }
        "read" => {
            let mut db = Database::open(&dir).expect("reopen datadir");
            println!("persistence smoke: recovery report: {:?}", db.recovery());
            let count = db
                .query("MATCH (n:Person) RETURN count(*) AS c", &params)
                .expect("count");
            assert_eq!(
                count.cell(0, "c"),
                Some(&Value::int(PEOPLE - 1)),
                "person count survived"
            );
            let knows = db
                .query(
                    "MATCH (a:Person)-[r:KNOWS]->(b:Person) \
                     RETURN a.id AS a, r.since AS s, b.id AS b",
                    &params,
                )
                .expect("traverse");
            assert_eq!(knows.len(), 1);
            assert_eq!(knows.cell(0, "s"), Some(&Value::int(2018)));
            let cohort = db
                .query("MATCH (n:Cohort3) RETURN count(*) AS c", &params)
                .expect("label index");
            assert_eq!(cohort.cell(0, "c"), Some(&Value::int(50)));
            let vip = db
                .query("MATCH (n:Person {vip: true}) RETURN n.id AS id", &params)
                .expect("post-checkpoint batch");
            assert_eq!(vip.cell(0, "id"), Some(&Value::int(7)));
            println!("persistence smoke: all assertions passed after reopen");
        }
        other => {
            eprintln!("usage: persistence_smoke (write|read) [datadir]; got {other:?}");
            std::process::exit(2);
        }
    }
}
