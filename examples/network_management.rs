//! The Section 3 network-management query on a synthetic data center:
//! "the component that is depended upon — both directly and indirectly —
//! by the largest number of entities".
//!
//! ```sh
//! cargo run --example network_management
//! ```

use cypher::{run_read, Params};
use cypher_workload::datacenter;
use std::time::Instant;

fn main() {
    let params = Params::new();
    let g = datacenter(400, 4, 2, 2024);
    println!(
        "Synthetic data center: {} services, {} dependencies\n",
        g.node_count(),
        g.rel_count()
    );

    // The paper's query, verbatim (modulo returning the name).
    let q = "MATCH (svc:Service)<-[:DEPENDS_ON*]-(dep:Service)
             RETURN svc.name AS svc, count(DISTINCT dep) AS dependents
             ORDER BY dependents DESC
             LIMIT 1";
    let t0 = Instant::now();
    let top = run_read(&g, q, &params).expect("query");
    println!(
        "Most depended-upon component ({} ms):\n{top}",
        t0.elapsed().as_millis()
    );

    // Drill down: the top five, direct vs transitive.
    let q5 = "MATCH (svc:Service)<-[:DEPENDS_ON*]-(dep:Service)
              WITH svc, count(DISTINCT dep) AS transitive
              OPTIONAL MATCH (svc)<-[:DEPENDS_ON]-(d:Service)
              RETURN svc.name AS svc, transitive, count(DISTINCT d) AS direct
              ORDER BY transitive DESC
              LIMIT 5";
    let detail = run_read(&g, q5, &params).expect("query");
    println!("Top five components by blast radius:\n{detail}");

    // Impact query: which frontends go down if the top hub fails?
    let hub = top.cell(0, "svc").unwrap().as_str().unwrap().to_string();
    let mut p2 = Params::new();
    p2.insert("hub".into(), cypher::Value::str(&hub));
    let impact = run_read(
        &g,
        "MATCH (svc:Service {name: $hub})<-[:DEPENDS_ON*]-(dep:Service)
         WHERE dep.layer = 3
         RETURN count(DISTINCT dep) AS affectedFrontends",
        &p2,
    )
    .expect("query");
    println!("Frontends transitively depending on {hub}:\n{impact}");
}
