//! Snapshot-isolated concurrent sessions: readers keep answering — at
//! their own pinned versions — while a writer streams bulk updates.
//!
//! ```text
//! cargo run --example concurrent_sessions
//! ```
//!
//! The demo opens one in-memory [`Database`], hands a `Session` to each
//! of three reader threads and one writer thread, and lets them run
//! simultaneously:
//!
//! * the **writer** commits a stream of batches, some of them bulk
//!   (thousands of nodes in one transaction);
//! * each **reader** repeatedly pins a snapshot (`begin_read`), runs a
//!   couple of queries against it, prints the version it observed, and
//!   releases the pin.
//!
//! Every reader line shows an internally consistent `(version, rows)`
//! pair — versions only ever step at batch boundaries, so no count is
//! ever "mid-batch" — and readers visibly keep completing at version N
//! while the writer is already preparing version N+1.

use cypher::{Database, Params};
use std::sync::atomic::{AtomicBool, Ordering};

fn main() {
    let params = Params::new();
    let db = Database::in_memory();

    // Seed: one device so the first snapshot is non-empty.
    let mut seeder = db.session();
    seeder
        .query("CREATE (:Device {name: 'seed', batch: 0})", &params)
        .unwrap();
    println!("seeded: version {}", db.version());

    let writer_done = AtomicBool::new(false);
    let mut writer = db.session();
    let readers: Vec<_> = (0..3).map(|_| db.session()).collect();

    std::thread::scope(|sc| {
        let writer_done = &writer_done;
        let params = &params;

        // One writer: 30 commits, every fifth a bulk batch. Readers are
        // never blocked while these transactions are open.
        sc.spawn(move || {
            for batch in 1..=30u32 {
                let stmt = if batch % 5 == 0 {
                    // A bulk write: one atomic batch of 2000 nodes.
                    format!("UNWIND range(1, 2000) AS i CREATE (:Device {{name: 'bulk', batch: {batch}, i: i}})")
                } else {
                    format!("CREATE (:Device {{name: 'single', batch: {batch}}})")
                };
                writer.query(&stmt, params).unwrap();
            }
            writer_done.store(true, Ordering::SeqCst);
            println!("writer : done, head is version {}", writer.snapshot().version());
        });

        for (id, mut session) in readers.into_iter().enumerate() {
            sc.spawn(move || {
                let mut observed = Vec::new();
                while !writer_done.load(Ordering::SeqCst) {
                    // Pin a snapshot; everything until commit() sees
                    // exactly this version.
                    let version = session.begin_read();
                    let count = session
                        .query("MATCH (d:Device) RETURN count(*) AS c", params)
                        .unwrap();
                    let batches = session
                        .query(
                            "MATCH (d:Device) RETURN count(DISTINCT d.batch) AS b",
                            params,
                        )
                        .unwrap();
                    session.commit();
                    let c = format!("{:?}", count.cell(0, "c").unwrap());
                    let b = format!("{:?}", batches.cell(0, "b").unwrap());
                    if observed.last() != Some(&version) {
                        println!(
                            "reader {id}: pinned version {version:>3} → {c} devices across {b} batches"
                        );
                        observed.push(version);
                    }
                }
                println!(
                    "reader {id}: observed {} distinct versions, monotonically: {}",
                    observed.len(),
                    observed.windows(2).all(|w| w[0] < w[1]),
                );
            });
        }
    });

    // All batches are visible now, atomically.
    let mut check = db.session();
    let total = check
        .query("MATCH (d:Device) RETURN count(*) AS c", &params)
        .unwrap();
    println!(
        "final  : version {} holds {:?} devices",
        db.version(),
        total.cell(0, "c").unwrap()
    );
}
