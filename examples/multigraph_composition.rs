//! Cypher 10 multiple graphs and query composition (paper Section 6,
//! Example 6.1): project a `SHARE_FRIEND` graph from a social network,
//! register it in the catalog, then compose a follow-up query joining it
//! with a citizen register.
//!
//! ```sh
//! cargo run --example multigraph_composition
//! ```

use cypher::{run_on_catalog, Catalog, MultiResult, Params, Value};
use cypher_workload::social_network;

fn main() {
    let mut params = Params::new();
    params.insert("duration".into(), Value::int(5));

    // Source graphs: a social network and a citizen register.
    let soc = social_network(300, 8, 6, 11);
    println!(
        "soc_net: {} nodes / {} relationships",
        soc.node_count(),
        soc.rel_count()
    );
    let mut cat = Catalog::new();
    cat.register("soc_net", soc);

    // Step 1 — Example 6.1, first query: connect people sharing a friend
    // whose friendships began within $duration years.
    let res = run_on_catalog(
        &mut cat,
        "soc_net",
        "FROM GRAPH soc_net AT 'hdfs://cluster/soc_network'
         MATCH (a:Person)-[r1:FRIEND]-()-[r2:FRIEND]-(b:Person)
         WHERE abs(r2.since - r1.since) < $duration
         WITH DISTINCT a, b
         RETURN GRAPH friends OF (a)-[:SHARE_FRIEND]->(b)",
        &params,
    )
    .expect("projection query");
    let MultiResult::Graph(name) = res else {
        unreachable!("RETURN GRAPH yields a graph")
    };
    let friends = cat.get(&name).unwrap();
    println!(
        "constructed graph '{name}': {} nodes / {} SHARE_FRIEND relationships",
        friends.read().node_count(),
        friends.read().rel_count()
    );

    // Step 2 — Example 6.1, follow-up: filter friend-sharing pairs that
    // live in the same city, composing over both graphs.
    let res2 = run_on_catalog(
        &mut cat,
        "friends",
        "MATCH (a)-[:SHARE_FRIEND]->(b)
         WITH a.name AS an, b.name AS bn
         FROM GRAPH soc_net
         MATCH (p:Person {name: an})-[:IN]->(c:City)<-[:IN]-(q:Person {name: bn})
         RETURN c.name AS city, count(*) AS pairs
         ORDER BY pairs DESC, city
         LIMIT 5",
        &params,
    )
    .expect("composition query");
    let MultiResult::Table(t) = res2 else {
        unreachable!("RETURN yields a table")
    };
    println!("\nfriend-sharing pairs living in the same city:\n{t}");
    println!("catalog now holds: {:?}", cat.names().collect::<Vec<_>>());
}
