//! The Section 3 fraud-detection query on a synthetic banking graph:
//! account holders sharing personal information (SSN, phone number,
//! address) form potential fraud rings.
//!
//! ```sh
//! cargo run --example fraud_detection
//! ```

use cypher::{run_read, run_reference, Params};
use cypher_workload::fraud_rings;

fn main() {
    let params = Params::new();
    let g = fraud_rings(200, 5, 4, 7);
    println!(
        "Synthetic account graph: {} nodes, {} HAS relationships\n",
        g.node_count(),
        g.rel_count()
    );

    // The paper's query, verbatim (the paper's `fraudRing > 1` filter
    // references the count alias, spelled fraudRingCount here).
    let q = "MATCH (accHolder:AccountHolder)-[:HAS]->(pInfo)
             WHERE pInfo:SSN OR pInfo:PhoneNumber OR pInfo:Address
             WITH pInfo,
                  collect(accHolder.uniqueId) AS accountHolders,
                  count(*) AS fraudRingCount
             WHERE fraudRingCount > 1
             RETURN accountHolders,
                    labels(pInfo) AS personalInformation,
                    fraudRingCount";
    let rings = run_read(&g, q, &params).expect("query");
    println!("Potential fraud rings (planted: 5):\n{rings}");

    // Cross-check the engine against the paper's formal semantics.
    let reference = run_reference(&g, q, &params).expect("reference");
    assert!(rings.bag_eq(&reference));
    println!(
        "Reference evaluator agrees on all {} ring(s).\n",
        rings.len()
    );

    // Second-degree analysis: holders appearing in more than one ring.
    let repeat = run_read(
        &g,
        "MATCH (h:AccountHolder)-[:HAS]->(p)<-[:HAS]-(other:AccountHolder)
         WITH h, count(DISTINCT other) AS partners
         WHERE partners > 1
         RETURN h.uniqueId AS holder, partners
         ORDER BY partners DESC, holder
         LIMIT 10",
        &params,
    )
    .expect("query");
    println!("Holders connected to multiple suspects:\n{repeat}");
}
